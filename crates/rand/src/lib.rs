//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! This workspace builds in environments with no access to crates.io,
//! so the external generators are replaced by this vendored shim. It
//! implements exactly the surface the workspace uses:
//!
//! * [`RngCore`], [`SeedableRng`], [`Error`] — the core traits,
//!   object-safe like upstream (`&mut dyn RngCore` works).
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`, blanket-implemented for
//!   every `RngCore` (including unsized trait objects).
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator. Its
//!   stream differs from upstream `StdRng` (upstream is ChaCha12 and
//!   makes no cross-version stream promises either); everything in this
//!   workspace only relies on determinism for a fixed seed.
//! * [`seq::SliceRandom`] — `shuffle` (Fisher-Yates, identical
//!   algorithm to upstream) and `choose`.
//!
//! All generators are fully deterministic functions of their seed; no
//! OS entropy is ever read.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations. The shim's generators never
/// fail, so this is only ever constructed by external implementors.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator (object safe).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
    /// Reveals the concrete generator behind a `&mut dyn RngCore`, if
    /// the implementation opts in by returning `Some(self)`.
    ///
    /// Hot loops that receive a trait object can downcast the result
    /// once and dispatch into a monomorphized inner loop, instead of
    /// paying a virtual call per draw (upstream rand has no such hook;
    /// this shim adds it because the workspace's public refinement API
    /// is `&mut dyn RngCore`). The default opts out, which is always
    /// correct — callers must keep a `dyn` fallback path that produces
    /// the same draw stream.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        (**self).as_any_mut()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed
    /// with SplitMix64 (same construction as upstream rand 0.8).
    fn seed_from_u64(mut state: u64) -> Self {
        // Upstream uses splitmix64 to fill the seed 4 bytes at a time
        // from the low half of each output.
        const MUL1: u64 = 0xBF58_476D_1CE4_E5B9;
        const MUL2: u64 = 0x94D0_49BB_1331_11EB;
        const INC: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(INC);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(MUL1);
            z = (z ^ (z >> 27)).wrapping_mul(MUL2);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore>(mut rng: R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.try_fill_bytes(seed.as_mut())?;
        Ok(Self::from_seed(seed))
    }
}

mod sealed {
    /// Marker so downstream code cannot add `StandardSample`/`UniformSampler`
    /// impls that would silently diverge from upstream rand semantics.
    pub trait Sealed {}
    impl Sealed for bool {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for usize {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Types `Rng::gen` can produce (the `Standard` distribution of
/// upstream rand, inlined).
pub trait StandardSample: sealed::Sealed + Sized {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Upstream: one bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits scaled into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1) — upstream's
        // `Standard` for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types `gen_range` supports.
pub trait UniformSampler: sealed::Sealed + Copy + PartialOrd {
    /// Draws a value uniform in `[low, high)`. `low < high` must hold.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampler for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Widening-multiply rejection sampling (Lemire): unbiased
                // and branch-light.
                let zone = u128::from(u64::MAX) + 1;
                let reject_below = zone % span;
                loop {
                    let x = u128::from(rng.next_u64());
                    let m = x * span;
                    if (m % zone) >= reject_below || reject_below == 0 {
                        return (low as i128 + (m / zone) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampler> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_below(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return StandardSample::sample_standard(rng);
                }
                <$t>::sample_below(rng, low, high + 1)
            }
        }
    )*};
}

impl_inclusive_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = StandardSample::sample_standard(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for
    /// floats, uniform for integers, fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// Fills `dest` entirely with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{Error, RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for upstream
    /// `StdRng`.
    ///
    /// Statistically strong (passes BigCrush in its published form) and
    /// fully reproducible from its seed. The stream is NOT the upstream
    /// ChaCha12 stream; upstream explicitly reserves the right to change
    /// streams between versions, and this workspace depends only on
    /// within-build determinism.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let word = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&word[..rem.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }

        fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
            Some(self)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // The all-zero state is a fixpoint of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates, same algorithm and
        /// draw order as upstream rand 0.8).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn std_rng_seed_sensitivity() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=4);
            assert!(y <= 4);
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let n = dyn_rng.gen_range(0..10usize);
        assert!(n < 10);
    }

    #[test]
    fn as_any_mut_recovers_concrete_type_through_indirection() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut reference = rng.clone();
        // Through `&mut dyn RngCore`, and through the `&mut R` blanket
        // impl nested behind it, the original StdRng is recoverable and
        // shares state with the trait object.
        let mut via: &mut dyn RngCore = &mut rng;
        let dyn_rng: &mut dyn RngCore = &mut via;
        let recovered = dyn_rng
            .as_any_mut()
            .and_then(|any| any.downcast_mut::<StdRng>())
            .expect("StdRng opts into as_any_mut");
        assert_eq!(recovered.next_u64(), reference.next_u64());
        assert_eq!(rng.next_u64(), reference.next_u64());
    }

    #[test]
    fn as_any_mut_defaults_to_opt_out() {
        struct Opaque(StdRng);
        impl RngCore for Opaque {
            fn next_u32(&mut self) -> u32 {
                self.0.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.0.fill_bytes(dest)
            }
            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), super::Error> {
                self.0.try_fill_bytes(dest)
            }
        }
        let mut rng = Opaque(StdRng::seed_from_u64(4));
        let dyn_rng: &mut dyn RngCore = &mut rng;
        assert!(dyn_rng.as_any_mut().is_none());
    }

    #[test]
    fn fill_bytes_tail_handled() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn from_rng_chains() {
        let mut base = StdRng::seed_from_u64(10);
        let mut derived = StdRng::from_rng(&mut base).unwrap();
        let mut base2 = StdRng::seed_from_u64(10);
        let mut derived2 = StdRng::from_rng(&mut base2).unwrap();
        assert_eq!(derived.next_u64(), derived2.next_u64());
    }
}
