//! Deterministic parallel fan-out for the experiment harness.
//!
//! [`par_map`] runs `f(0), f(1), …, f(n-1)` on a pool of scoped threads
//! and returns the results **in index order**. Work items are claimed
//! from a shared atomic counter, so the scheduling interleaving is
//! nondeterministic — but because every item is keyed by its index and
//! the caller derives each item's randomness from that index alone
//! (see `bisect_gen::rng::SeedSequence`), the returned vector is
//! bit-identical at any thread count, including 1.
//!
//! The thread count comes from, in order of precedence:
//!
//! 1. a process-wide override set by [`set_thread_override`] (the
//!    `repro --threads N` flag);
//! 2. the `RAYON_NUM_THREADS` or `BISECT_NUM_THREADS` environment
//!    variable (the rayon convention, honored so existing workflows
//!    carry over);
//! 3. [`std::thread::available_parallelism`].
//!
//! There is no global pool: each [`par_map`] call spawns
//! `min(threads, n)` scoped threads and joins them before returning.
//! Threads are cheap relative to the trials they run (a trial is a full
//! KL/SA bisection, milliseconds at minimum), and scoped spawning keeps
//! the crate dependency-free and panic-transparent. Nested calls are
//! allowed; each level caps its own spawn count.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the thread count used by [`par_map`] for the whole
/// process. Passing 0 clears the override. Takes precedence over the
/// environment variables.
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// The thread count [`par_map`] will use: the [`set_thread_override`]
/// value if set, else `RAYON_NUM_THREADS`/`BISECT_NUM_THREADS` if set
/// to a positive integer, else the machine's available parallelism.
pub fn num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    for var in ["RAYON_NUM_THREADS", "BISECT_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `0..n` on up to [`num_threads`] threads; results are
/// returned in index order, bit-identical to the serial run as long as
/// `f(i)` depends only on `i` (and shared immutable state).
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(num_threads(), n, f)
}

/// As [`par_map`] with an explicit thread count (used by the
/// determinism regression tests to pin both sides of the comparison).
///
/// A panic in any `f(i)` is propagated to the caller after the
/// remaining workers drain.
pub fn par_map_with<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => indexed.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = par_map_with(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let serial = par_map_with(1, 37, |i| i.wrapping_mul(0x9E37_79B9) ^ (i << 3));
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(
                par_map_with(threads, 37, |i| i.wrapping_mul(0x9E37_79B9) ^ (i << 3)),
                serial
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_with(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map_with(32, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counts: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        par_map_with(8, 200, |i| counts[i].fetch_add(1, Ordering::SeqCst));
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn override_takes_precedence() {
        set_thread_override(3);
        assert_eq!(num_threads(), 3);
        set_thread_override(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        par_map_with(4, 16, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn nested_calls_work() {
        let out = par_map_with(4, 8, |i| par_map_with(2, 4, move |j| i * 10 + j));
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        assert_eq!(out.len(), 8);
    }
}
