//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds where crates.io is unreachable, so the real
//! proptest is replaced by this shim implementing the subset the test
//! suites use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! [`Just`], [`collection::vec`], [`any`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//! [`prop_assume!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   assertion message; rerunning is deterministic (the RNG stream is a
//!   pure function of the test's name), so failures reproduce exactly.
//! * **Rejection is bounded.** `prop_filter`/`prop_assume` retries are
//!   capped; pathological filters panic instead of spinning.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies. Public so the [`proptest!`] macro can
/// name it; not part of the emulated upstream API.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic stream from a test-function name: the same test
    /// always sees the same inputs, independent of other tests.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.0.try_fill_bytes(dest)
    }
}

/// Why a test case did not complete normally. Public for the macros.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values. Sampling returns `None` when a filter
/// rejects the draw; the runner retries (bounded).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; `whence` names the filter
    /// in diagnostics.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let first = self.inner.sample(rng)?;
        (self.f)(first).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let value = self.inner.sample(rng)?;
        if (self.pred)(&value) {
            Some(value)
        } else {
            None
        }
    }
}

/// The strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.gen()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.gen()
    }
}

/// The canonical strategy for `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            use rand::Rng as _;
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }
}

/// Drives one `proptest!`-generated test: samples with bounded retry,
/// runs the case, and panics with context on failure. Public for the
/// macro, not part of the emulated API.
pub fn run_cases<V>(
    name: &str,
    config: &ProptestConfig,
    sample: impl Fn(&mut TestRng) -> Option<V>,
    case: impl Fn(V) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut completed = 0u32;
    let mut rejected = 0u32;
    // Global reject budget proportional to the workload, like upstream.
    let max_rejects = 100 * config.cases.max(1);
    while completed < config.cases {
        let Some(value) = sample(&mut rng) else {
            rejected += 1;
            assert!(
                rejected <= max_rejects,
                "{name}: too many filter rejections ({rejected}); strategy filters are too strict"
            );
            continue;
        };
        match case(value) {
            Ok(()) => completed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many prop_assume rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{name}: property failed at case {completed} (rerun is deterministic): {message}"
                );
            }
        }
    }
}

/// Defines property tests. Supports the upstream form used in this
/// workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..10, v in proptest::collection::vec(0u32..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    |__proptest_rng| {
                        Some(($($crate::Strategy::sample(&($strat), __proptest_rng)?,)*))
                    },
                    |($($pat,)*)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case unless `cond` holds (counted against the
/// rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..100 {
            let x = (3u32..9).sample(&mut rng).unwrap();
            assert!((3..9).contains(&x));
            let y = (1u64..=3).sample(&mut rng).unwrap();
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn filter_map_flat_map_compose() {
        let strat = (2usize..10)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..(n as u32), 1..5)))
            .prop_map(|(n, v)| (n, v.len()))
            .prop_filter("nonempty", |(_, l)| *l > 0);
        let mut rng = crate::TestRng::from_name("compose");
        for _ in 0..50 {
            if let Some((n, l)) = strat.sample(&mut rng) {
                assert!((2..10).contains(&n));
                assert!((1..5).contains(&l));
            }
        }
    }

    #[test]
    fn vec_exact_size() {
        let strat = crate::collection::vec(0u8..=255, 7usize);
        let mut rng = crate::TestRng::from_name("vec_exact");
        assert_eq!(strat.sample(&mut rng).unwrap().len(), 7);
    }

    #[test]
    fn deterministic_per_name() {
        let s = 0u64..1000;
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        for _ in 0..20 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u64..50, flag in any::<bool>(), v in crate::collection::vec(0u32..10, 1..6)) {
            prop_assert!(x < 50);
            prop_assert_eq!(flag, flag);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assume!(x != 49); // exercises the reject path
        }

        #[test]
        fn macro_tuple_patterns((a, b) in (0u32..5, 5u32..10)) {
            prop_assert!(a < 5 && b >= 5);
        }
    }
}
