//! Experiment profiles: the paper's full parameter grid vs a quick
//! laptop-scale grid with the same shape.

/// How large the experiment grid is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Minimal sizes for unit/integration tests and smoke runs
    /// (seconds even in debug builds).
    Smoke,
    /// Reduced sizes (graphs of ~500-1000 vertices, fewer settings);
    /// the whole suite runs in minutes. Default.
    #[default]
    Quick,
    /// The paper's sizes (2000- and 5000-vertex random graphs, special
    /// graphs up to 5000 vertices). Hours with SA, as in 1989.
    Paper,
    /// Million-vertex feasibility runs (the `huge` experiment:
    /// streaming generation, BFS reordering, parallel multilevel
    /// refinement). The paper-grid experiments keep their `Quick`
    /// sizes at this scale; only [`Profile::huge_vertices`] grows.
    Huge,
    /// The CI-sized version of [`Scale::Huge`]: 10^5-vertex instances
    /// that finish in well under a minute.
    HugeSmoke,
}

impl Scale {
    /// Stable lowercase name, used in reports and parsed by
    /// [`Scale::from_str`].
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::Huge => "huge",
            Scale::HugeSmoke => "huge-smoke",
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Scale, String> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "quick" => Ok(Scale::Quick),
            "paper" => Ok(Scale::Paper),
            "huge" => Ok(Scale::Huge),
            "huge-smoke" => Ok(Scale::HugeSmoke),
            other => Err(format!(
                "unknown profile `{other}` (expected `smoke`, `quick`, `paper`, `huge`, or \
                 `huge-smoke`)"
            )),
        }
    }
}

/// The run protocol of an experiment batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Grid scale.
    pub scale: Scale,
    /// Random starts per algorithm per graph (paper: 2; cut = best of
    /// starts, time = total across starts).
    pub starts: usize,
    /// Random graphs per parameter setting for `Gbreg`/`G2set`
    /// (paper: 3); `Gnp` uses `2×replicates + 1` (paper: 7).
    pub replicates: usize,
    /// Base seed; every graph and every run derives its own stream
    /// deterministically from it.
    pub seed: u64,
}

impl Default for Profile {
    fn default() -> Profile {
        Profile::quick()
    }
}

impl Profile {
    /// The quick profile: paper protocol (2 starts), scaled-down grid,
    /// 1 replicate.
    pub fn quick() -> Profile {
        Profile {
            scale: Scale::Quick,
            starts: 2,
            replicates: 1,
            seed: 1989,
        }
    }

    /// The smoke profile: minimal sizes, 1 start, 1 replicate — used by
    /// the test suites.
    pub fn smoke() -> Profile {
        Profile {
            scale: Scale::Smoke,
            starts: 1,
            replicates: 1,
            seed: 1989,
        }
    }

    /// The paper profile: 2 starts, 3 replicates, full sizes.
    pub fn paper() -> Profile {
        Profile {
            scale: Scale::Paper,
            starts: 2,
            replicates: 3,
            seed: 1989,
        }
    }

    /// The huge profile: one start, one replicate, million-vertex
    /// instances for the `huge` feasibility experiment.
    pub fn huge() -> Profile {
        Profile {
            scale: Scale::Huge,
            starts: 1,
            replicates: 1,
            seed: 1989,
        }
    }

    /// The huge-smoke profile: the CI-sized [`Profile::huge`]
    /// (10^5-vertex instances, well under a minute end to end).
    pub fn huge_smoke() -> Profile {
        Profile {
            scale: Scale::HugeSmoke,
            starts: 1,
            replicates: 1,
            seed: 1989,
        }
    }

    /// Vertex count of the `huge` experiment's instances.
    pub fn huge_vertices(&self) -> usize {
        match self.scale {
            Scale::Smoke => 2_000,
            Scale::Quick => 10_000,
            Scale::Paper => 1_000_000,
            Scale::Huge => 1_000_000,
            Scale::HugeSmoke => 100_000,
        }
    }

    /// Vertex counts for the random-model tables (the paper's 2000 and
    /// 5000).
    pub fn random_model_sizes(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![64],
            Scale::Quick | Scale::Huge | Scale::HugeSmoke => vec![500, 1000],
            Scale::Paper => vec![2000, 5000],
        }
    }

    /// Planted bisection widths `b` swept in the `Gbreg` tables (even
    /// values so every degree parity is feasible).
    pub fn gbreg_widths(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![2, 4],
            Scale::Quick | Scale::Huge | Scale::HugeSmoke => vec![2, 8, 16],
            Scale::Paper => vec![2, 8, 16, 32, 64],
        }
    }

    /// Cross-edge counts swept in the `G2set` tables.
    pub fn g2set_widths(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![2, 4],
            Scale::Quick | Scale::Huge | Scale::HugeSmoke => vec![4, 16, 32],
            Scale::Paper => vec![4, 16, 64, 128],
        }
    }

    /// Average degrees swept in the `Gnp` tables.
    pub fn gnp_degrees(&self) -> Vec<f64> {
        match self.scale {
            Scale::Smoke => vec![2.5, 4.0],
            _ => vec![2.0, 2.5, 3.0, 3.5, 4.0],
        }
    }

    /// Average degrees of the `G2set` family sub-tables (the paper has
    /// one sub-table per degree).
    pub fn g2set_degrees(&self) -> Vec<f64> {
        match self.scale {
            Scale::Smoke => vec![2.5, 4.0],
            _ => vec![2.5, 3.0, 3.5, 4.0],
        }
    }

    /// Side lengths of the grid-graph table (`N×N` grids).
    pub fn grid_sides(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![4, 6],
            Scale::Quick | Scale::Huge | Scale::HugeSmoke => vec![8, 12, 16, 22],
            Scale::Paper => vec![10, 16, 22, 32, 45, 70],
        }
    }

    /// Rung counts of the ladder-graph table (ladders have `2k`
    /// vertices).
    pub fn ladder_rungs(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![8, 12],
            Scale::Quick | Scale::Huge | Scale::HugeSmoke => vec![32, 64, 128, 250],
            Scale::Paper => vec![50, 150, 500, 1250, 2500],
        }
    }

    /// Vertex counts of the binary-tree table.
    pub fn tree_sizes(&self) -> Vec<usize> {
        match self.scale {
            Scale::Smoke => vec![14, 30],
            Scale::Quick | Scale::Huge | Scale::HugeSmoke => vec![62, 126, 254, 510],
            Scale::Paper => vec![126, 510, 1022, 2046, 4094],
        }
    }

    /// Replicates used for `Gnp` settings (paper: 7 when replicates=3).
    pub fn gnp_replicates(&self) -> usize {
        2 * self.replicates + 1
    }

    /// Shape of the `huge-netlist` experiment's Rent-style netlists:
    /// `(cells, nets)` — the hypergraph analogue of
    /// [`Profile::huge_vertices`], with ~1.4 nets per cell as in real
    /// standard-cell designs.
    pub fn huge_netlist_shape(&self) -> (usize, usize) {
        match self.scale {
            Scale::Smoke => (2_000, 2_800),
            Scale::Quick => (10_000, 14_000),
            Scale::Paper | Scale::Huge => (1_000_000, 1_400_000),
            Scale::HugeSmoke => (100_000, 140_000),
        }
    }

    /// Shape of the `placement` experiment's Rent-style netlists:
    /// `(cells, nets, parts, instances)`.
    pub fn placement_shape(&self) -> (usize, usize, usize, usize) {
        match self.scale {
            Scale::Smoke => (240, 320, 4, 1),
            // The huge scales keep the quick-sized analysis experiments.
            Scale::Quick | Scale::Huge | Scale::HugeSmoke => (800, 1100, 8, 2),
            Scale::Paper => (2400, 3400, 16, 3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale() {
        assert_eq!("quick".parse::<Scale>().unwrap(), Scale::Quick);
        assert_eq!("paper".parse::<Scale>().unwrap(), Scale::Paper);
        assert_eq!("huge".parse::<Scale>().unwrap(), Scale::Huge);
        assert_eq!("huge-smoke".parse::<Scale>().unwrap(), Scale::HugeSmoke);
        assert!("fast".parse::<Scale>().is_err());
    }

    #[test]
    fn scale_names_round_trip() {
        for scale in [
            Scale::Smoke,
            Scale::Quick,
            Scale::Paper,
            Scale::Huge,
            Scale::HugeSmoke,
        ] {
            assert_eq!(scale.name().parse::<Scale>().unwrap(), scale);
        }
    }

    #[test]
    fn huge_profiles_scale_only_the_huge_experiment() {
        let h = Profile::huge();
        let q = Profile::quick();
        assert_eq!(h.huge_vertices(), 1_000_000);
        assert_eq!(Profile::huge_smoke().huge_vertices(), 100_000);
        assert_eq!(h.starts, 1);
        // The paper-grid sizes stay quick-sized at the huge scales.
        assert_eq!(h.random_model_sizes(), q.random_model_sizes());
        assert_eq!(h.grid_sides(), q.grid_sides());
        assert_eq!(h.gbreg_widths(), q.gbreg_widths());
    }

    #[test]
    fn paper_profile_matches_protocol() {
        let p = Profile::paper();
        assert_eq!(p.starts, 2);
        assert_eq!(p.replicates, 3);
        assert_eq!(p.gnp_replicates(), 7);
        assert_eq!(p.random_model_sizes(), vec![2000, 5000]);
    }

    #[test]
    fn quick_profile_is_smaller() {
        let q = Profile::quick();
        let p = Profile::paper();
        assert!(q.random_model_sizes().iter().max() < p.random_model_sizes().iter().max());
        assert!(q.gbreg_widths().len() <= p.gbreg_widths().len());
    }

    #[test]
    fn gbreg_widths_are_even() {
        for profile in [Profile::quick(), Profile::paper()] {
            assert!(profile.gbreg_widths().iter().all(|b| b % 2 == 0));
        }
    }
}
