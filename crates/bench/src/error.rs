//! Typed errors of the benchmark harness.
//!
//! [`BenchError`] is the single error type every fallible harness entry
//! point returns: experiment lookup and execution
//! ([`crate::experiments::run`]), CLI parsing ([`crate::cli`]), report
//! parsing and regression checks ([`crate::json`], [`crate::check`]).
//! It wraps the generator errors ([`GenError`]) and the core algorithm
//! errors ([`BisectError`]) so `?` works across the crate boundary, and
//! the `repro` binary renders it once at top level instead of panicking
//! mid-run.

use std::fmt;

use bisect_core::error::BisectError;
use bisect_gen::GenError;

/// Any error the benchmark harness can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// An experiment id that is not in [`crate::experiments::ALL_IDS`].
    UnknownExperiment {
        /// The rejected id.
        id: String,
    },
    /// A graph generator rejected its parameters or failed to construct
    /// an instance.
    Gen(GenError),
    /// A bisection pipeline reported a typed failure.
    Bisect(BisectError),
    /// A malformed command-line invocation (message explains the flag).
    InvalidArgument(String),
    /// A malformed `BENCH_results.json` document (message has the
    /// offset and cause).
    MalformedReport(String),
    /// Reading or writing a report/CSV file failed.
    Io(std::io::Error),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownExperiment { id } => write!(
                f,
                "unknown experiment `{id}`; valid ids: {}",
                crate::experiments::ALL_IDS.join(", ")
            ),
            BenchError::Gen(e) => write!(f, "graph generation failed: {e}"),
            BenchError::Bisect(e) => write!(f, "bisection failed: {e}"),
            BenchError::InvalidArgument(message) => write!(f, "{message}"),
            BenchError::MalformedReport(message) => write!(f, "malformed report: {message}"),
            BenchError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Gen(e) => Some(e),
            BenchError::Bisect(e) => Some(e),
            BenchError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GenError> for BenchError {
    fn from(e: GenError) -> BenchError {
        BenchError::Gen(e)
    }
}

impl From<BisectError> for BenchError {
    fn from(e: BisectError) -> BenchError {
        BenchError::Bisect(e)
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> BenchError {
        BenchError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_lists_valid_ids() {
        let e = BenchError::UnknownExperiment { id: "bogus".into() };
        let s = e.to_string();
        assert!(s.contains("bogus"));
        assert!(s.contains("gbreg"));
        assert!(s.contains("table1"));
    }

    #[test]
    fn wraps_gen_and_bisect_errors_with_source() {
        use std::error::Error as _;
        let e: BenchError = GenError::InvalidParameter("d too big".into()).into();
        assert!(e.to_string().contains("d too big"));
        assert!(e.source().is_some());

        let e: BenchError = BisectError::InvalidPartCount { parts: 3 }.into();
        assert!(e.to_string().contains("power of two"));
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BenchError>();
    }
}
