//! Argument parsing for the `repro` binary, split out so it is unit
//! testable: [`parse`] consumes an iterator of arguments (no process
//! state) and returns typed [`Options`] or a [`BenchError`] whose
//! message names the offending flag. Experiment ids are validated here,
//! at parse time, so a typo fails before any experiment runs.

use std::path::PathBuf;

use crate::error::BenchError;
use crate::experiments;
use crate::profile::{Profile, Scale};

/// Default path of the machine-readable report.
pub const DEFAULT_JSON_PATH: &str = "BENCH_results.json";

/// A fully parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// The run profile (scale, seed, starts, replicates).
    pub profile: Profile,
    /// Directory for per-table CSV dumps, if requested.
    pub csv_dir: Option<PathBuf>,
    /// Path of the JSON report; `None` with `--no-json`.
    pub json_path: Option<PathBuf>,
    /// Worker-thread override, if requested.
    pub threads: Option<usize>,
    /// Experiment ids to run, in order (never empty; defaults to all).
    pub experiments: Vec<String>,
}

/// What a parsed command line asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Invocation {
    /// Run the experiments.
    Run(Box<Options>),
    /// Print the help text and exit successfully.
    Help,
}

fn value_of(flag: &str, args: &mut impl Iterator<Item = String>) -> Result<String, BenchError> {
    args.next()
        .ok_or_else(|| BenchError::InvalidArgument(format!("{flag} needs a value (see --help)")))
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, BenchError> {
    value.parse().map_err(|_| {
        BenchError::InvalidArgument(format!("invalid {} `{value}` (see --help)", &flag[2..]))
    })
}

/// Parses `repro` arguments (exclusive of the program name).
///
/// `--json`'s path operand is optional: when the next argument is
/// another option (or the end of the line), the report goes to
/// [`DEFAULT_JSON_PATH`].
///
/// # Errors
///
/// Returns [`BenchError::InvalidArgument`] for unknown or malformed
/// flags and [`BenchError::UnknownExperiment`] for an experiment id
/// outside [`experiments::ALL_IDS`].
pub fn parse<I>(args: I) -> Result<Invocation, BenchError>
where
    I: IntoIterator<Item = String>,
{
    let mut args = args.into_iter().peekable();
    let mut scale = Scale::Quick;
    let mut seed = 1989u64;
    let mut starts: Option<usize> = None;
    let mut replicates: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut csv_dir = None;
    let mut json_path = Some(PathBuf::from(DEFAULT_JSON_PATH));
    let mut experiments = Vec::new();
    let mut netlist_default = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(Invocation::Help),
            "--profile" => {
                scale = value_of("--profile", &mut args)?
                    .parse()
                    .map_err(|message: String| BenchError::InvalidArgument(message))?
            }
            "--smoke" => scale = Scale::Smoke,
            "--quick" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--huge" => scale = Scale::Huge,
            "--huge-smoke" => scale = Scale::HugeSmoke,
            // The netlist spellings pick the same scales but default to
            // the hypergraph feasibility experiment instead.
            "--huge-netlist" => {
                scale = Scale::Huge;
                netlist_default = true;
            }
            "--huge-netlist-smoke" => {
                scale = Scale::HugeSmoke;
                netlist_default = true;
            }
            "--seed" => seed = parse_number("--seed", &value_of("--seed", &mut args)?)?,
            "--starts" => {
                starts = Some(parse_number("--starts", &value_of("--starts", &mut args)?)?);
            }
            "--replicates" => {
                replicates = Some(parse_number(
                    "--replicates",
                    &value_of("--replicates", &mut args)?,
                )?);
            }
            "--threads" => {
                threads = Some(parse_number(
                    "--threads",
                    &value_of("--threads", &mut args)?,
                )?);
            }
            "--csv" => csv_dir = Some(PathBuf::from(value_of("--csv", &mut args)?)),
            "--json" => {
                // The path operand is optional: `--json --seed 7` and a
                // trailing `--json` both mean the default path.
                json_path = Some(match args.peek() {
                    Some(next) if !next.starts_with('-') => {
                        PathBuf::from(args.next().expect("peeked"))
                    }
                    _ => PathBuf::from(DEFAULT_JSON_PATH),
                });
            }
            "--no-json" => json_path = None,
            other if other.starts_with('-') => {
                return Err(BenchError::InvalidArgument(format!(
                    "unknown option `{other}` (see --help)"
                )));
            }
            exp => {
                if !experiments::is_known(exp) {
                    return Err(BenchError::UnknownExperiment { id: exp.into() });
                }
                experiments.push(exp.to_string());
            }
        }
    }
    let mut profile = match scale {
        Scale::Smoke => Profile::smoke(),
        Scale::Quick => Profile::quick(),
        Scale::Paper => Profile::paper(),
        Scale::Huge => Profile::huge(),
        Scale::HugeSmoke => Profile::huge_smoke(),
    };
    profile.seed = seed;
    if let Some(s) = starts {
        profile.starts = s.max(1);
    }
    if let Some(r) = replicates {
        profile.replicates = r.max(1);
    }
    if experiments.is_empty() {
        // The huge scales exist for the feasibility experiment; running
        // the whole paper grid there would just repeat the quick grid.
        experiments = match scale {
            Scale::Huge | Scale::HugeSmoke if netlist_default => {
                vec!["huge-netlist".to_string()]
            }
            Scale::Huge | Scale::HugeSmoke => vec!["huge".to_string()],
            _ => experiments::ALL_IDS.iter().map(|s| s.to_string()).collect(),
        };
    }
    Ok(Invocation::Run(Box::new(Options {
        profile,
        csv_dir,
        json_path,
        threads: threads.map(|n| n.max(1)),
        experiments,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn parse_run(list: &[&str]) -> Options {
        match parse(args(list)).expect("parse succeeds") {
            Invocation::Run(options) => *options,
            Invocation::Help => panic!("unexpected help"),
        }
    }

    #[test]
    fn defaults() {
        let o = parse_run(&[]);
        assert_eq!(o.profile, Profile::quick());
        assert_eq!(o.json_path, Some(PathBuf::from(DEFAULT_JSON_PATH)));
        assert_eq!(o.csv_dir, None);
        assert_eq!(o.threads, None);
        assert_eq!(o.experiments.len(), experiments::ALL_IDS.len());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(args(&["--help"])).unwrap(), Invocation::Help);
        assert_eq!(
            parse(args(&["-h", "bogus-ignored"])).unwrap(),
            Invocation::Help
        );
    }

    #[test]
    fn profile_shorthands() {
        assert_eq!(parse_run(&["--smoke"]).profile.scale, Scale::Smoke);
        assert_eq!(parse_run(&["--quick"]).profile.scale, Scale::Quick);
        assert_eq!(parse_run(&["--paper"]).profile.scale, Scale::Paper);
        assert_eq!(
            parse_run(&["--profile", "paper"]).profile.scale,
            Scale::Paper
        );
        // Later flags win.
        assert_eq!(
            parse_run(&["--paper", "--profile", "smoke"]).profile.scale,
            Scale::Smoke
        );
    }

    #[test]
    fn numeric_options_apply_with_floors() {
        let o = parse_run(&["--seed", "7", "--starts", "0", "--replicates", "5"]);
        assert_eq!(o.profile.seed, 7);
        assert_eq!(o.profile.starts, 1); // floored to 1
        assert_eq!(o.profile.replicates, 5);
        assert_eq!(parse_run(&["--threads", "0"]).threads, Some(1));
    }

    #[test]
    fn bad_flag_values_are_errors_not_panics() {
        for bad in [
            &["--seed", "banana"][..],
            &["--starts", "-3"],
            &["--threads", "many"],
            &["--replicates"],
            &["--profile", "fast"],
            &["--weird"],
        ] {
            let err = parse(args(bad)).unwrap_err();
            assert!(
                matches!(err, BenchError::InvalidArgument(_)),
                "{bad:?} -> {err}"
            );
            let message = err.to_string();
            assert!(
                message.contains("--help") || message.contains("smoke"),
                "{bad:?} -> {message}"
            );
        }
    }

    #[test]
    fn huge_scales_default_to_the_huge_experiment() {
        let o = parse_run(&["--huge"]);
        assert_eq!(o.profile, Profile::huge());
        assert_eq!(o.experiments, vec!["huge"]);
        let o = parse_run(&["--huge-smoke"]);
        assert_eq!(o.profile.scale, Scale::HugeSmoke);
        assert_eq!(o.experiments, vec!["huge"]);
        // An explicit experiment list overrides the huge default.
        let o = parse_run(&["--huge-smoke", "grid"]);
        assert_eq!(o.experiments, vec!["grid"]);
        // Spelled-out profile names work too.
        assert_eq!(parse_run(&["--profile", "huge"]).profile.scale, Scale::Huge);
        assert_eq!(
            parse_run(&["--profile", "huge-smoke"]).profile.scale,
            Scale::HugeSmoke
        );
    }

    #[test]
    fn huge_netlist_flags_default_to_the_netlist_experiment() {
        let o = parse_run(&["--huge-netlist"]);
        assert_eq!(o.profile, Profile::huge());
        assert_eq!(o.experiments, vec!["huge-netlist"]);
        let o = parse_run(&["--huge-netlist-smoke"]);
        assert_eq!(o.profile.scale, Scale::HugeSmoke);
        assert_eq!(o.experiments, vec!["huge-netlist"]);
        // An explicit experiment list overrides the default.
        let o = parse_run(&["--huge-netlist-smoke", "huge"]);
        assert_eq!(o.experiments, vec!["huge"]);
        // The plain huge flags still default to the graph experiment.
        assert_eq!(parse_run(&["--huge-smoke"]).experiments, vec!["huge"]);
    }

    #[test]
    fn experiment_ids_validated_at_parse_time() {
        let o = parse_run(&["gbreg", "table1"]);
        assert_eq!(o.experiments, vec!["gbreg", "table1"]);
        let err = parse(args(&["gbreg", "tabel1"])).unwrap_err();
        assert!(matches!(err, BenchError::UnknownExperiment { ref id } if id == "tabel1"));
    }

    #[test]
    fn json_path_operand_is_optional() {
        assert_eq!(
            parse_run(&["--json", "out.json"]).json_path,
            Some(PathBuf::from("out.json"))
        );
        // Next token is a flag: default path, flag still parsed.
        let o = parse_run(&["--json", "--seed", "3"]);
        assert_eq!(o.json_path, Some(PathBuf::from(DEFAULT_JSON_PATH)));
        assert_eq!(o.profile.seed, 3);
        // Trailing --json: default path.
        assert_eq!(
            parse_run(&["--json"]).json_path,
            Some(PathBuf::from(DEFAULT_JSON_PATH))
        );
        assert_eq!(parse_run(&["--no-json"]).json_path, None);
    }

    #[test]
    fn csv_and_threads() {
        let o = parse_run(&["--csv", "out", "--threads", "4"]);
        assert_eq!(o.csv_dir, Some(PathBuf::from("out")));
        assert_eq!(o.threads, Some(4));
    }
}
