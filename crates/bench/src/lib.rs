//! Experiment harness for the DAC'89 bisection study.
//!
//! Regenerates every table of the paper's evaluation (Table 1 plus the
//! appendix tables) with the same row/column structure: for each
//! workload, the cut found by simulated annealing (SA), compacted SA
//! (CSA), Kernighan-Lin (KL) and compacted KL (CKL), their run times,
//! the relative cut improvement `(b_x − b_cx)/b_x × 100`, and the
//! relative speedup `(t_woc − t_c)/t_woc × 100`.
//!
//! Entry points:
//!
//! * the `repro` binary (`cargo run -p bisect-bench --release --bin
//!   repro -- --help`) prints any experiment as a text table and can
//!   emit CSV;
//! * [`experiments`] exposes each experiment programmatically;
//! * the Criterion benches (`benches/`) time the individual algorithms
//!   and the ablations of DESIGN.md.
//!
//! Run protocol (matching §VI): every algorithm runs from
//! [`Profile::starts`] random starts (paper: 2) and reports the best
//! cut and the *total* time across starts; random-model settings are
//! averaged over [`Profile::replicates`] graphs (paper: 3 for `Gbreg`,
//! 7 for `Gnp`, 1 otherwise).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod cli;
pub mod error;
pub mod experiments;
pub mod json;
pub mod profile;
pub mod runner;
pub mod table;

pub use error::BenchError;
pub use json::{BenchRecord, BenchReport};
pub use profile::{Profile, Scale};
pub use runner::{AlgoResult, Suite};
pub use table::Table;
