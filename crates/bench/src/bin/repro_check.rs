//! Compare a fresh `BENCH_results.json` against a committed baseline.
//!
//! ```text
//! repro_check <current.json> <baseline.json> [--tolerance X]
//! ```
//!
//! Exits non-zero when any `(experiment, setting, algorithm)` record's
//! mean cut got worse than the baseline by more than the tolerance
//! (default 0 — runs are deterministic, so exact reproduction is the
//! bar), or when a baseline record is missing from the current report.
//! Trajectory files (arrays of reports) compare their latest entry.
//! Improvements are listed but do not fail; refresh the baseline when
//! they are intentional.
//!
//! `placement` experiment records in the current report additionally
//! get a structural check ([`check::validate_placement`]): both
//! algorithm rows present per setting, positive HPWL, and native net
//! cut no worse than the clique expansion's. Violations fail the check
//! even when the baseline predates the experiment.
//!
//! Wall-time growth is reported but never fails the check: a `WARN`
//! line appears when the current trajectory's latest run is more than
//! 25% slower than the previous entry, or when a record's
//! `total_time_s` grew more than 25% over the baseline. Timing depends
//! on the machine, so these are advisory — only cuts gate the exit
//! code.

use std::process::ExitCode;

use bisect_bench::{check, json};
use bisect_bench::{BenchError, BenchReport};

const HELP: &str = "\
repro_check — fail on cut regressions between two repro JSON reports

USAGE
  repro_check <current.json> <baseline.json> [--tolerance X]

OPTIONS
  --tolerance <X>   allowed absolute mean-cut drift (default 0: exact)
  --help            this text
";

struct Args {
    current: std::path::PathBuf,
    baseline: std::path::PathBuf,
    tolerance: f64,
}

fn parse_args() -> Result<Option<Args>, BenchError> {
    let mut paths = Vec::new();
    let mut tolerance = 0.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--tolerance" => {
                let value = args.next().ok_or_else(|| {
                    BenchError::InvalidArgument("--tolerance needs a value (see --help)".into())
                })?;
                tolerance = value.parse().map_err(|_| {
                    BenchError::InvalidArgument(format!("invalid tolerance `{value}` (see --help)"))
                })?;
            }
            other if other.starts_with('-') => {
                return Err(BenchError::InvalidArgument(format!(
                    "unknown option `{other}` (see --help)"
                )));
            }
            path => paths.push(std::path::PathBuf::from(path)),
        }
    }
    let [current, baseline] = <[_; 2]>::try_from(paths).map_err(|_| {
        BenchError::InvalidArgument(
            "expected exactly two paths: <current.json> <baseline.json> (see --help)".into(),
        )
    })?;
    Ok(Some(Args {
        current,
        baseline,
        tolerance,
    }))
}

/// Fractional wall-time growth that triggers an advisory `WARN` line.
const TIME_WARN_FRAC: f64 = 0.25;

/// Loads the full trajectory at `path`: an array of reports, or a
/// legacy single-report file wrapped as a one-entry trajectory.
fn load(path: &std::path::Path) -> Result<Vec<BenchReport>, BenchError> {
    let runs = json::parse_trajectory(&std::fs::read_to_string(path)?)?;
    if runs.is_empty() {
        return Err(BenchError::MalformedReport(format!(
            "{}: empty trajectory",
            path.display()
        )));
    }
    Ok(runs)
}

/// Prints advisory wall-time and peak-RSS warnings: latest-vs-previous
/// entry of the current trajectory, plus per-record growth against the
/// baseline. Never affects the exit code.
fn warn_on_time(trajectory: &[BenchReport], baseline: &BenchReport) {
    if let [.., prev, latest] = trajectory {
        if prev.wall_time_s > 0.0 && latest.wall_time_s > prev.wall_time_s * (1.0 + TIME_WARN_FRAC)
        {
            println!(
                "WARN: wall time grew {:.3}s -> {:.3}s (+{:.0}%) vs previous trajectory entry \
                 (advisory only; timing does not gate the check)",
                prev.wall_time_s,
                latest.wall_time_s,
                (latest.wall_time_s / prev.wall_time_s - 1.0) * 100.0
            );
        }
        if let Some(w) = check::rss_warning(prev, latest, TIME_WARN_FRAC) {
            println!("WARN: {w} (advisory only; memory does not gate the check)");
        }
    }
    let latest = trajectory
        .last()
        .expect("load() rejects empty trajectories");
    for w in check::time_warnings(latest, baseline, TIME_WARN_FRAC) {
        println!("WARN: slower: {w} (advisory only)");
    }
}

fn run(args: &Args) -> Result<bool, BenchError> {
    let trajectory = load(&args.current)?;
    let current = trajectory
        .last()
        .expect("load() rejects empty trajectories");
    let baseline_runs = load(&args.baseline)?;
    let baseline = baseline_runs
        .last()
        .expect("load() rejects empty trajectories");
    let result = check::compare(current, baseline, args.tolerance)?;
    println!(
        "compared {} records (profile {}, tolerance {})",
        result.compared, baseline.profile, args.tolerance
    );
    for d in &result.improvements {
        println!("improved: {d}");
    }
    for key in &result.missing {
        println!("MISSING: {key} (in baseline, not in current report)");
    }
    for d in &result.regressions {
        println!("REGRESSION: {d}");
    }
    let placement_problems = check::validate_placement(current);
    for p in &placement_problems {
        println!("INVALID: {p}");
    }
    warn_on_time(&trajectory, baseline);
    let ok = result.is_ok() && placement_problems.is_empty();
    if ok {
        println!("OK: no cut regressions");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
