//! Compare a fresh `BENCH_results.json` against a committed baseline.
//!
//! ```text
//! repro_check <current.json> <baseline.json> [--tolerance X]
//! ```
//!
//! Exits non-zero when any `(experiment, setting, algorithm)` record's
//! mean cut got worse than the baseline by more than the tolerance
//! (default 0 — runs are deterministic, so exact reproduction is the
//! bar), or when a baseline record is missing from the current report.
//! Trajectory files (arrays of reports) compare their latest entry.
//! Improvements are listed but do not fail; refresh the baseline when
//! they are intentional.

use std::process::ExitCode;

use bisect_bench::{check, json};
use bisect_bench::{BenchError, BenchReport};

const HELP: &str = "\
repro_check — fail on cut regressions between two repro JSON reports

USAGE
  repro_check <current.json> <baseline.json> [--tolerance X]

OPTIONS
  --tolerance <X>   allowed absolute mean-cut drift (default 0: exact)
  --help            this text
";

struct Args {
    current: std::path::PathBuf,
    baseline: std::path::PathBuf,
    tolerance: f64,
}

fn parse_args() -> Result<Option<Args>, BenchError> {
    let mut paths = Vec::new();
    let mut tolerance = 0.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--tolerance" => {
                let value = args.next().ok_or_else(|| {
                    BenchError::InvalidArgument("--tolerance needs a value (see --help)".into())
                })?;
                tolerance = value.parse().map_err(|_| {
                    BenchError::InvalidArgument(format!("invalid tolerance `{value}` (see --help)"))
                })?;
            }
            other if other.starts_with('-') => {
                return Err(BenchError::InvalidArgument(format!(
                    "unknown option `{other}` (see --help)"
                )));
            }
            path => paths.push(std::path::PathBuf::from(path)),
        }
    }
    let [current, baseline] = <[_; 2]>::try_from(paths).map_err(|_| {
        BenchError::InvalidArgument(
            "expected exactly two paths: <current.json> <baseline.json> (see --help)".into(),
        )
    })?;
    Ok(Some(Args {
        current,
        baseline,
        tolerance,
    }))
}

/// Loads the *latest* report at `path`: trajectory files compare their
/// most recent run, legacy single-report files compare themselves.
fn load(path: &std::path::Path) -> Result<BenchReport, BenchError> {
    let runs = json::parse_trajectory(&std::fs::read_to_string(path)?)?;
    runs.into_iter()
        .next_back()
        .ok_or_else(|| BenchError::MalformedReport(format!("{}: empty trajectory", path.display())))
}

fn run(args: &Args) -> Result<bool, BenchError> {
    let current = load(&args.current)?;
    let baseline = load(&args.baseline)?;
    let result = check::compare(&current, &baseline, args.tolerance)?;
    println!(
        "compared {} records (profile {}, tolerance {})",
        result.compared, baseline.profile, args.tolerance
    );
    for d in &result.improvements {
        println!("improved: {d}");
    }
    for key in &result.missing {
        println!("MISSING: {key} (in baseline, not in current report)");
    }
    for d in &result.regressions {
        println!("REGRESSION: {d}");
    }
    if result.is_ok() {
        println!("OK: no cut regressions");
    }
    Ok(result.is_ok())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
