//! Reproduce the paper's tables.
//!
//! ```text
//! repro [OPTIONS] [EXPERIMENT...]
//!
//! EXPERIMENT   any of: table1 ladder grid btree g2set gnp gbreg obs1 obs4
//!              (default: all)
//!
//! OPTIONS
//!   --profile <smoke|quick|paper>   grid scale (default quick)
//!   --seed <N>                      base seed (default 1989)
//!   --starts <N>                    random starts per run (default 2)
//!   --replicates <N>                graphs per random setting (default: profile's)
//!   --threads <N>                   worker threads (default: all cores)
//!   --csv <DIR>                     also write each table as CSV into DIR
//!   --json <PATH>                   machine-readable results (default BENCH_results.json)
//!   --no-json                       skip the JSON report
//!   --help                          this text
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use bisect_bench::experiments::{self, ALL_IDS};
use bisect_bench::profile::{Profile, Scale};
use bisect_bench::BenchReport;

struct Options {
    profile: Profile,
    csv_dir: Option<std::path::PathBuf>,
    json_path: Option<std::path::PathBuf>,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut args = std::env::args().skip(1);
    let mut scale = Scale::Quick;
    let mut seed = 1989u64;
    let mut starts: Option<usize> = None;
    let mut replicates: Option<usize> = None;
    let mut csv_dir = None;
    let mut json_path = Some(std::path::PathBuf::from("BENCH_results.json"));
    let mut experiments = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--profile" => {
                let value = args.next().ok_or("--profile needs a value")?;
                scale = value.parse()?;
            }
            "--seed" => {
                let value = args.next().ok_or("--seed needs a value")?;
                seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed `{value}`"))?;
            }
            "--starts" => {
                let value = args.next().ok_or("--starts needs a value")?;
                starts = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid starts `{value}`"))?,
                );
            }
            "--replicates" => {
                let value = args.next().ok_or("--replicates needs a value")?;
                replicates = Some(
                    value
                        .parse()
                        .map_err(|_| format!("invalid replicates `{value}`"))?,
                );
            }
            "--threads" => {
                let value = args.next().ok_or("--threads needs a value")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("invalid threads `{value}`"))?;
                bisect_par::set_thread_override(n.max(1));
            }
            "--csv" => {
                let value = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(std::path::PathBuf::from(value));
            }
            "--json" => {
                let value = args.next().ok_or("--json needs a path")?;
                json_path = Some(std::path::PathBuf::from(value));
            }
            "--no-json" => json_path = None,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (see --help)"));
            }
            exp => experiments.push(exp.to_string()),
        }
    }
    let mut profile = match scale {
        Scale::Smoke => Profile::smoke(),
        Scale::Quick => Profile::quick(),
        Scale::Paper => Profile::paper(),
    };
    profile.seed = seed;
    if let Some(s) = starts {
        profile.starts = s.max(1);
    }
    if let Some(r) = replicates {
        profile.replicates = r.max(1);
    }
    if experiments.is_empty() {
        experiments = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    Ok(Some(Options {
        profile,
        csv_dir,
        json_path,
        experiments,
    }))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(Some(options)) => options,
        Ok(None) => {
            print!("{}", HELP);
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let threads = bisect_par::num_threads();
    println!(
        "# Reproduction of Bui/Heigham/Jones/Leighton DAC'89 — profile {:?}, seed {}, {} starts, {} replicates, {} threads\n",
        options.profile.scale, options.profile.seed, options.profile.starts,
        options.profile.replicates, threads,
    );
    let wall = Instant::now();
    let mut records = Vec::new();
    for id in &options.experiments {
        let result = match experiments::run(id, &options.profile) {
            Ok(result) => result,
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        };
        println!("## {} — {}\n", result.id, result.title);
        for (i, table) in result.tables.iter().enumerate() {
            println!("{table}");
            if let Some(dir) = &options.csv_dir {
                if let Err(e) = write_csv(dir, &result.id, i, table) {
                    eprintln!("error writing CSV: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        records.extend(result.records);
    }
    if let Some(path) = &options.json_path {
        let report = BenchReport {
            profile: format!("{:?}", options.profile.scale).to_lowercase(),
            seed: options.profile.seed,
            starts: options.profile.starts,
            replicates: options.profile.replicates,
            threads,
            wall_time_s: wall.elapsed().as_secs_f64(),
            records,
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("error writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

fn write_csv(
    dir: &std::path::Path,
    id: &str,
    index: usize,
    table: &bisect_bench::Table,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}_{index}.csv"));
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "# {}", table.title())?;
    file.write_all(table.to_csv().as_bytes())
}

const HELP: &str = "\
repro — regenerate the tables of the DAC'89 graph bisection paper

USAGE
  repro [OPTIONS] [EXPERIMENT...]

EXPERIMENTS (default: all)
  table1   Table 1: compaction improvement on grid/ladder/binary tree
  ladder   Appendix: ladder graphs
  grid     Appendix: grid graphs
  btree    Appendix: binary trees
  g2set    Appendix: G2set(2n, pA, pB, b), degrees 2.5-4
  gnp      Appendix: Gnp(2n, p)
  gbreg    Appendix: Gbreg(2n, b, d), d in {3, 4}
  obs1     Observation 1: degree 3 vs 4 quality cliff
  obs4     Observation 4: KL vs SA head to head
  models   Model diagnostics: why Gbreg was introduced (extension)
  klpasses KL pass-by-pass convergence on a ladder (extension)
  netlist  Hypergraph FM vs clique approximation (extension)
  satune   SA schedule tuning sweep (extension)
  winrate  KL vs SA head-to-head win rate at degree 2.5-3.5 (§VI claim)

OPTIONS
  --profile <smoke|quick|paper>   grid scale (default quick)
  --seed <N>                      base seed (default 1989)
  --starts <N>                    random starts per run (default 2)
  --replicates <N>                graphs per random setting
  --threads <N>                   worker threads (default: all cores; results
                                  are bit-identical at any thread count)
  --csv <DIR>                     also write each table as CSV into DIR
  --json <PATH>                   machine-readable per-algorithm results
                                  (default BENCH_results.json)
  --no-json                       skip the JSON report
  --help                          this text
";
