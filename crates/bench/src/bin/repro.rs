//! Reproduce the paper's tables.
//!
//! Argument parsing lives in [`bisect_bench::cli`] (unit tested there);
//! this binary only wires the parsed [`Options`] to the experiment
//! runner and renders any [`BenchError`] once, at top level, with a
//! non-zero exit code — no panics on bad flags or malformed input.
//!
//! The JSON report is a *trajectory*: when the output file already
//! holds a report (or an array of them), the new run is appended so the
//! file accumulates a timestamped performance history. `repro_check`
//! always compares against the latest entry.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use bisect_bench::cli::{self, Invocation, Options};
use bisect_bench::{experiments, json, BenchError, BenchReport};

fn main() -> ExitCode {
    let options = match cli::parse(std::env::args().skip(1)) {
        Ok(Invocation::Run(options)) => options,
        Ok(Invocation::Help) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(options: &Options) -> Result<(), BenchError> {
    if let Some(n) = options.threads {
        bisect_par::set_thread_override(n);
    }
    let threads = bisect_par::num_threads();
    println!(
        "# Reproduction of Bui/Heigham/Jones/Leighton DAC'89 — profile {:?}, seed {}, {} starts, {} replicates, {} threads\n",
        options.profile.scale, options.profile.seed, options.profile.starts,
        options.profile.replicates, threads,
    );
    let wall = Instant::now();
    let mut records = Vec::new();
    for id in &options.experiments {
        let result = experiments::run(id, &options.profile)?;
        println!("## {} — {}\n", result.id, result.title);
        for (i, table) in result.tables.iter().enumerate() {
            println!("{table}");
            if let Some(dir) = &options.csv_dir {
                write_csv(dir, &result.id, i, table)?;
            }
        }
        records.extend(result.records);
    }
    if let Some(path) = &options.json_path {
        let timestamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let (peak_rss_bytes, rss_note) = experiments::huge::peak_rss();
        if let Some(note) = rss_note {
            println!("note: peak RSS unavailable ({note}); recording 0");
        }
        let report = BenchReport {
            profile: options.profile.scale.name().to_string(),
            seed: options.profile.seed,
            starts: options.profile.starts,
            replicates: options.profile.replicates,
            threads,
            wall_time_s: wall.elapsed().as_secs_f64(),
            timestamp,
            peak_rss_bytes,
            records,
        };
        // Append to any existing trajectory rather than clobbering it,
        // so the file keeps a performance history across runs. An
        // unreadable existing file is an error (don't silently drop
        // history); a missing file starts a fresh trajectory.
        let mut runs = match std::fs::read_to_string(path) {
            Ok(existing) => json::parse_trajectory(&existing)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        runs.push(report);
        std::fs::write(path, json::trajectory_to_json(&runs))?;
        println!(
            "wrote {} ({} runs in trajectory)",
            path.display(),
            runs.len()
        );
    }
    Ok(())
}

fn write_csv(
    dir: &std::path::Path,
    id: &str,
    index: usize,
    table: &bisect_bench::Table,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}_{index}.csv"));
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "# {}", table.title())?;
    file.write_all(table.to_csv().as_bytes())
}

const HELP: &str = "\
repro — regenerate the tables of the DAC'89 graph bisection paper

USAGE
  repro [OPTIONS] [EXPERIMENT...]

EXPERIMENTS (default: all)
  table1   Table 1: compaction improvement on grid/ladder/binary tree
  ladder   Appendix: ladder graphs
  grid     Appendix: grid graphs
  btree    Appendix: binary trees
  g2set    Appendix: G2set(2n, pA, pB, b), degrees 2.5-4
  gnp      Appendix: Gnp(2n, p)
  gbreg    Appendix: Gbreg(2n, b, d), d in {3, 4}
  obs1     Observation 1: degree 3 vs 4 quality cliff
  obs4     Observation 4: KL vs SA head to head
  models   Model diagnostics: why Gbreg was introduced (extension)
  klpasses KL pass-by-pass convergence on a ladder (extension)
  netlist  Hypergraph FM vs clique approximation (extension)
  satune   SA schedule tuning sweep (extension)
  winrate  KL vs SA head-to-head win rate at degree 2.5-3.5 (§VI claim)
  huge     Million-vertex feasibility: streaming build, BFS reorder,
           parallel multilevel refinement (extension)
  huge-netlist
           Million-cell netlist feasibility: streaming pin-CSR build,
           BFS cell reorder, parallel multilevel netlist FM (extension)

OPTIONS
  --profile <smoke|quick|paper|huge|huge-smoke>
                                  grid scale (default quick)
  --smoke, --quick, --paper       shorthands for --profile <scale>
  --huge, --huge-smoke            feasibility scales: 10^6 (10^5) vertex
                                  instances; default experiment set is
                                  just `huge`
  --huge-netlist, --huge-netlist-smoke
                                  the same scales with the default
                                  experiment set `huge-netlist` (10^6
                                  and 10^5 cells)
  --seed <N>                      base seed (default 1989)
  --starts <N>                    random starts per run (default 2)
  --replicates <N>                graphs per random setting
  --threads <N>                   worker threads (default: all cores; serial
                                  results are bit-identical at any thread
                                  count; the huge experiment is deterministic
                                  at a fixed count)
  --csv <DIR>                     also write each table as CSV into DIR
  --json [PATH]                   machine-readable per-algorithm results,
                                  appended to the trajectory at PATH
                                  (default BENCH_results.json)
  --no-json                       skip the JSON report
  --help                          this text
";
