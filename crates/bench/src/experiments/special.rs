//! Special-graph experiments: Table 1 and the appendix's ladder, grid,
//! and binary-tree tables.
//!
//! Instance sizes fan out over threads; each size derives its seed from
//! the profile seed and its own (family, size) path and rows are
//! emitted in size order, so the tables are bit-identical at any thread
//! count.

use bisect_gen::special;
use bisect_graph::Graph;

use super::{derive_seed, improvement, quad_headers, quad_row, ExperimentResult};
use crate::error::BenchError;
use crate::json::quad_records;
use crate::profile::Profile;
use crate::runner::{QuadAverage, Suite};
use crate::table::Table;

/// The three special families of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `N×N` grid graphs (appendix "Grid graphs"; optimal cut `N`).
    Grid,
    /// Ladder graphs with `2k` vertices (appendix "Ladder graphs";
    /// optimal cut 2).
    Ladder,
    /// Complete binary trees (appendix "Binary trees"; optimal cut 1
    /// when a subtree holds exactly half the vertices, ≤ O(log n)
    /// always).
    BinaryTree,
}

impl Family {
    fn name(self) -> &'static str {
        match self {
            Family::Grid => "Grid",
            Family::Ladder => "Ladder",
            Family::BinaryTree => "Binary tree",
        }
    }

    fn sizes(self, profile: &Profile) -> Vec<usize> {
        match self {
            Family::Grid => profile.grid_sides(),
            Family::Ladder => profile.ladder_rungs(),
            Family::BinaryTree => profile.tree_sizes(),
        }
    }

    fn build(self, size: usize) -> Graph {
        match self {
            Family::Grid => special::grid(size, size),
            Family::Ladder => special::ladder(size),
            Family::BinaryTree => special::binary_tree(size),
        }
    }

    fn label(self, size: usize) -> String {
        match self {
            Family::Grid => format!("{size}x{size}"),
            Family::Ladder => format!("2x{size}"),
            Family::BinaryTree => format!("{size}"),
        }
    }

    fn id(self) -> u64 {
        match self {
            Family::Grid => 1,
            Family::Ladder => 2,
            Family::BinaryTree => 3,
        }
    }
}

/// One appendix special-graph table: rows are instance sizes, columns
/// the standard four-algorithm layout.
///
/// # Errors
///
/// Currently infallible (special-graph construction cannot fail); the
/// `Result` keeps the signature uniform across experiments.
pub fn family(profile: &Profile, family: Family) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let mut table = Table::new(
        format!(
            "{} graphs (best of {} starts)",
            family.name(),
            profile.starts
        ),
        quad_headers("size"),
    );
    let id = match family {
        Family::Grid => "grid",
        Family::Ladder => "ladder",
        Family::BinaryTree => "btree",
    };
    let sizes = family.sizes(profile);
    let rows = bisect_par::par_map(sizes.len(), |i| {
        let size = sizes[i];
        let g = family.build(size);
        let seed = derive_seed(profile.seed, &[family.id(), size as u64]);
        let mut avg = QuadAverage::default();
        avg.add(&suite.run(&g, profile.starts, seed));
        (size, avg.finish())
    });
    let mut records = Vec::new();
    for (size, avg) in &rows {
        records.extend(quad_records(id, &family.label(*size), avg));
        table.push_row(quad_row(family.label(*size), avg));
    }
    Ok(ExperimentResult {
        id: id.into(),
        title: format!("Appendix: {} graphs", family.name()),
        tables: vec![table],
        records,
    })
}

/// Table 1: average percentage improvement in cut size from compaction
/// on grids, ladders, and binary trees, for KL and SA (best of two
/// starts).
///
/// # Errors
///
/// Currently infallible; the `Result` keeps the signature uniform.
pub fn table1(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let mut table = Table::new(
        "Table 1: bisection width improvement made by compaction (best of starts)",
        vec!["Graph type".into(), "over KL".into(), "over SA".into()],
    );
    for fam in [Family::Grid, Family::Ladder, Family::BinaryTree] {
        let sizes = fam.sizes(profile);
        let runs = bisect_par::par_map(sizes.len(), |i| {
            let g = fam.build(sizes[i]);
            let seed = derive_seed(profile.seed, &[10 + fam.id(), sizes[i] as u64]);
            suite.run(&g, profile.starts, seed)
        });
        let mut kl_improvements = Vec::new();
        let mut sa_improvements = Vec::new();
        for (sa, csa, kl, ckl) in &runs {
            kl_improvements.push(improvement(kl.cut as f64, ckl.cut as f64));
            sa_improvements.push(improvement(sa.cut as f64, csa.cut as f64));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        table.push_row(vec![
            fam.name().into(),
            format!("{:.0}%", mean(&kl_improvements)),
            format!("{:.0}%", mean(&sa_improvements)),
        ]);
    }
    Ok(ExperimentResult {
        id: "table1".into(),
        title: "Table 1: cut improvement made by compaction".into(),
        tables: vec![table],
        records: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> Profile {
        Profile::smoke()
    }

    #[test]
    fn family_builders_match_sizes() {
        assert_eq!(Family::Grid.build(5).num_vertices(), 25);
        assert_eq!(Family::Ladder.build(5).num_vertices(), 10);
        assert_eq!(Family::BinaryTree.build(7).num_vertices(), 7);
    }

    #[test]
    fn labels() {
        assert_eq!(Family::Grid.label(8), "8x8");
        assert_eq!(Family::Ladder.label(8), "2x8");
        assert_eq!(Family::BinaryTree.label(63), "63");
    }

    #[test]
    fn ladder_experiment_has_row_per_size() {
        let profile = tiny_profile();
        let result = family(&profile, Family::Ladder).unwrap();
        assert_eq!(result.id, "ladder");
        assert_eq!(result.tables.len(), 1);
        assert_eq!(result.tables[0].rows().len(), profile.ladder_rungs().len());
    }

    #[test]
    fn table1_has_three_rows() {
        let result = table1(&tiny_profile()).unwrap();
        assert_eq!(result.tables[0].rows().len(), 3);
        assert_eq!(result.tables[0].rows()[0][0], "Grid");
    }
}
