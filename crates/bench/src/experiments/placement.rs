//! The `placement` experiment: recursive k-way netlist partitioning
//! with terminal propagation, scored as a placement.
//!
//! A Rent's-rule-style random netlist
//! ([`bisect_gen::netlist::sample`]) is split into `parts` regions two
//! ways:
//!
//! * **native** — [`bisect_core::netlist::recursive_placement`] with
//!   the multilevel hypergraph pipeline
//!   ([`NetlistPipeline::multilevel_fm`]): heavy-net coarsening, net-cut
//!   FM with a projected gain cache, and terminal-propagation anchors
//!   biasing each sub-bisection toward the external pins' region;
//! * **clique expansion** — the netlist's clique graph through the
//!   graph-side multilevel KL pipeline's
//!   [`recursive_partition`](bisect_core::pipeline::recursive_partition),
//!   then rescored on the *netlist* objectives.
//!
//! Both report the k-way **net cut** and the **HPWL** (half-perimeter
//! wirelength over part-region centers, the placement quality proxy) of
//! [`NetlistPlacement`]. The point of the table: optimizing net cut
//! natively on the hypergraph beats optimizing the clique surrogate,
//! on the objective VLSI placement actually cares about.
//!
//! Trials fan out over threads with the same bit-identical protocol as
//! the paper tables: per-trial seed streams and a lowest-index-minimal
//! net-cut winner, so results match at any thread count.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use bisect_core::kl::KernighanLin;
use bisect_core::netlist::{recursive_placement_counted, NetlistPipeline, NetlistPlacement};
use bisect_core::pipeline::{recursive_partition, Pipeline};
use bisect_core::workspace::Workspace;
use bisect_gen::netlist::{sample, RentNetlistParams};
use bisect_gen::rng::{LaggedFibonacci, SeedSequence};
use bisect_graph::hypergraph::Netlist;
use rand::SeedableRng;

use super::{derive_seed, ExperimentResult};
use crate::error::BenchError;
use crate::json::BenchRecord;
use crate::profile::Profile;
use crate::table::{fmt_duration, Table};

thread_local! {
    /// One warm scratch workspace per worker thread for the netlist
    /// trials (the runner's graph workspace is private to it).
    static NETLIST_WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Net-size power-law exponent of the generated instances.
const GAMMA: f64 = 2.2;
/// Pin-window fraction of the generated instances.
const LOCALITY: f64 = 0.1;
/// Largest net size of the generated instances.
const MAX_NET_SIZE: usize = 6;

/// Outcome of one best-of-starts placement run.
struct PlacementResult {
    placement: NetlistPlacement,
    /// Total productive passes across the starts.
    work: u64,
    /// Total wall time across the starts (summed per trial).
    elapsed: Duration,
}

/// Best-of-`starts` native recursive placement, bit-identical at any
/// thread count (per-trial seed streams, lowest-index-minimal winner).
fn run_native(
    nl: &Netlist,
    parts: usize,
    starts: usize,
    seed: u64,
    threads: usize,
) -> Result<PlacementResult, BenchError> {
    let pipeline = NetlistPipeline::multilevel_fm();
    let seq = SeedSequence::new(seed);
    let trials = bisect_par::par_map_with(threads, starts.max(1), |i| {
        NETLIST_WORKSPACE.with(|ws| {
            let mut ws = ws.borrow_mut();
            let mut rng = seq.rng(i as u64);
            let begin = Instant::now();
            let result = recursive_placement_counted(&pipeline, nl, parts, &mut rng, &mut ws);
            result.map(|(p, work)| (p, work, begin.elapsed()))
        })
    });
    collect_best(nl, trials)
}

/// Best-of-`starts` clique-expansion partitioning (multilevel KL on
/// [`Netlist::to_clique_graph`]), rescored as a [`NetlistPlacement`].
fn run_clique(
    nl: &Netlist,
    parts: usize,
    starts: usize,
    seed: u64,
    threads: usize,
) -> Result<PlacementResult, BenchError> {
    let clique = nl.to_clique_graph();
    let pipeline = Pipeline::multilevel(KernighanLin::new());
    let seq = SeedSequence::new(seed);
    let trials = bisect_par::par_map_with(threads, starts.max(1), |i| {
        let mut rng = seq.rng(i as u64);
        let begin = Instant::now();
        let kway = recursive_partition(&pipeline, &clique, parts, &mut rng)?;
        let placement = NetlistPlacement::from_labels(nl, kway.labels().to_vec(), parts)?;
        Ok((placement, 0u64, begin.elapsed()))
    });
    collect_best(nl, trials)
}

/// Sums trial times/work and picks the lowest-indexed minimal net cut.
fn collect_best(
    nl: &Netlist,
    trials: Vec<Result<(NetlistPlacement, u64, Duration), bisect_core::error::BisectError>>,
) -> Result<PlacementResult, BenchError> {
    let mut best: Option<(NetlistPlacement, u64)> = None;
    let mut work = 0u64;
    let mut elapsed = Duration::ZERO;
    for trial in trials {
        let (placement, trial_work, trial_time) = trial?;
        work += trial_work;
        elapsed += trial_time;
        let cut = placement.net_cut(nl);
        if best.as_ref().is_none_or(|(_, b)| cut < *b) {
            best = Some((placement, cut));
        }
    }
    let (placement, _) = best.expect("at least one start");
    Ok(PlacementResult {
        placement,
        work,
        elapsed,
    })
}

/// Runs the placement experiment.
///
/// # Errors
///
/// Returns [`BenchError::Gen`] for infeasible generator parameters and
/// propagates pipeline errors (none expected for the fixed shapes).
pub fn run(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let (cells, nets, parts, instances) = profile.placement_shape();
    let threads = bisect_par::num_threads();
    let params = RentNetlistParams::new(cells, nets, MAX_NET_SIZE, GAMMA, LOCALITY)?;
    let mut table = Table::new(
        format!(
            "Recursive {parts}-way placement of Rent-style netlists \
             ({cells} cells, {nets} nets): native net-cut FM vs clique expansion"
        ),
        ["instance", "algo", "net cut", "HPWL", "passes", "time"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let mut records = Vec::new();
    for instance in 0..instances {
        let seed = derive_seed(profile.seed, &[80, instance as u64]);
        let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
        let nl = sample(&mut gen_rng, &params);
        let setting = format!("rent n={cells} nets={nets} parts={parts} i={instance}");
        for (algo, result) in [
            (
                "NetFM-ML",
                run_native(&nl, parts, profile.starts, seed ^ 0xABCD, threads)?,
            ),
            (
                "CliqueKL-ML",
                run_clique(&nl, parts, profile.starts, seed ^ 0xCDEF, threads)?,
            ),
        ] {
            let cut = result.placement.net_cut(&nl);
            let hpwl = result.placement.hpwl(&nl);
            table.push_row(vec![
                format!("#{instance}"),
                algo.into(),
                cut.to_string(),
                format!("{hpwl:.1}"),
                result.work.to_string(),
                fmt_duration(result.elapsed),
            ]);
            records.push(BenchRecord {
                experiment: "placement".into(),
                setting: setting.clone(),
                algorithm: algo.into(),
                mean_cut: cut as f64,
                total_time_s: result.elapsed.as_secs_f64(),
                mean_passes: result.work as f64,
                proposals: 0.0,
                proposals_per_sec: 0.0,
                refine_time_s: 0.0,
                hpwl,
                graphs: 1,
            });
        }
    }
    Ok(ExperimentResult {
        id: "placement".into(),
        title: "Recursive k-way netlist placement: native multilevel net-cut FM with terminal \
                propagation vs the clique approximation"
            .into(),
        tables: vec![table],
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_runs_end_to_end() {
        let profile = Profile::smoke();
        let result = run(&profile).expect("placement at smoke scale");
        assert_eq!(result.id, "placement");
        // One instance, two algorithms.
        assert_eq!(result.records.len(), 2);
        let native = &result.records[0];
        let clique = &result.records[1];
        assert_eq!(native.algorithm, "NetFM-ML");
        assert_eq!(clique.algorithm, "CliqueKL-ML");
        // The point of the experiment: optimizing net cut natively must
        // not lose to the clique surrogate on its own objective.
        assert!(
            native.mean_cut <= clique.mean_cut,
            "native {} vs clique {}",
            native.mean_cut,
            clique.mean_cut
        );
        for r in &result.records {
            assert!(r.mean_cut > 0.0);
            assert!(r.hpwl > 0.0, "{} hpwl {}", r.algorithm, r.hpwl);
            assert_eq!(r.graphs, 1);
        }
        assert_eq!(result.tables[0].rows().len(), 2);
    }

    #[test]
    fn identical_across_thread_counts() {
        let (cells, nets, parts, _) = Profile::smoke().placement_shape();
        let params = RentNetlistParams::new(cells, nets, MAX_NET_SIZE, GAMMA, LOCALITY).unwrap();
        let nl = sample(&mut LaggedFibonacci::seed_from_u64(99), &params);
        let serial = run_native(&nl, parts, 4, 5, 1).unwrap();
        for threads in [2, 4] {
            let par = run_native(&nl, parts, 4, 5, threads).unwrap();
            assert_eq!(par.placement, serial.placement, "threads {threads}");
            assert_eq!(par.work, serial.work, "threads {threads}");
        }
    }
}
