//! The `huge-netlist` experiment: million-cell netlist bisection
//! feasibility — the hypergraph twin of the [`huge`](super::huge)
//! graph experiment.
//!
//! Two Rent-style netlists (one locality-clustered, one global) at
//! [`Profile::huge_netlist_shape`] cells each go through the
//! cache-conscious large-instance pipeline:
//!
//! 1. **streaming generation** —
//!    [`bisect_gen::netlist::sample_streamed`] feeds the two-pass
//!    counting-sorted pin-CSR build
//!    ([`NetlistBuilder::stream`](bisect_graph::hypergraph::NetlistBuilder::stream))
//!    and never materializes the flat pin list;
//! 2. **BFS cell reordering**
//!    ([`bisect_graph::hypergraph::bfs_cell_order`]) so refinement
//!    walks near-contiguous pin arrays;
//! 3. **parallel multilevel bisection** —
//!    [`ParallelCellMatching`](bisect_core::netlist::ParallelCellMatching)
//!    coarsening through the allocation-free
//!    [`contract_cells_into`](bisect_graph::hypergraph::contract_cells_into)
//!    (one scratch arena serves the whole ladder), a random balanced
//!    start plus serial hill-crossing
//!    [`NetlistFm`](bisect_core::netlist::NetlistFm) on the coarsest
//!    netlist, then *boundary-localized* uncoarsening: the workspace
//!    [`NetlistGainCache`](bisect_core::netlist::NetlistGainCache) is
//!    built once at the coarsest level and **projected** through every
//!    contraction on the way back up, where boundary-seeded
//!    [`ParallelNetlistFm`](bisect_core::netlist::ParallelNetlistFm)
//!    rounds refine only the tracked cut boundary instead of sweeping
//!    all cells;
//! 4. **inverse mapping** back to the original cell labels, with the
//!    net cut re-verified on the untouched input netlist.
//!
//! Reported per instance: net cut, wall time, refinement-phase wall
//! time, refinement rounds, gain evaluations per second, end-to-end
//! cell throughput, and the process peak RSS so far. Results are
//! deterministic at a fixed thread count (see the `ParallelNetlistFm`
//! determinism contract); they are not part of the golden-pinned paper
//! tables.

use std::time::Instant;

use bisect_core::netlist::{
    rebalance_with_cache, NetlistBisection, NetlistFm, NetlistRefiner, ParallelCellMatching,
    ParallelNetlistFm,
};
use bisect_core::workspace::Workspace;
use bisect_gen::netlist::{sample_streamed, RentNetlistParams};
use bisect_gen::rng::LaggedFibonacci;
use bisect_graph::hypergraph::{
    bfs_cell_order, contract_cells_into, permute_cells, Netlist, NetlistContraction,
    NetlistContractionScratch,
};
use rand::SeedableRng;

use super::huge::peak_rss_bytes;
use super::{derive_seed, ExperimentResult};
use crate::error::BenchError;
use crate::json::BenchRecord;
use crate::profile::Profile;
use crate::table::{fmt_cut, fmt_duration, Table};

/// Ceiling for the coarsest level's size (or a level stops making
/// progress first).
const COARSE_TARGET: usize = 5_000;

/// Net-size power-law exponent of both instances: mass concentrated on
/// 2- and 3-pin nets, as in real netlists.
const GAMMA: f64 = 1.8;

/// Coarsest-level size for an `n`-cell instance: small netlists still
/// get a few coarsening levels, huge ones stop at [`COARSE_TARGET`]
/// where the serial seed partition is cheap.
fn coarse_target(n: usize) -> usize {
    (n / 16).clamp(64, COARSE_TARGET)
}

/// Runs the huge-netlist feasibility experiment.
///
/// # Errors
///
/// Returns [`BenchError::Gen`] if the Rent parameters are rejected
/// (impossible for the shapes the profiles produce).
pub fn run(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let (cells, nets) = profile.huge_netlist_shape();
    let threads = bisect_par::num_threads();
    let mut table = Table::new(
        format!("Huge-netlist feasibility: {cells} cells, {nets} nets, {threads} threads"),
        [
            "netlist", "algo", "net cut", "time", "refine", "rounds", "Mprop/s", "kcell/s",
            "peak RSS",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut records = Vec::new();
    for (which, locality, label, setting) in [
        (
            0u64,
            0.02f64,
            format!("Rent({cells}, loc 2%)"),
            format!("rent cells={cells} nets={nets} gamma={GAMMA} loc=0.02"),
        ),
        (
            1u64,
            1.0f64,
            format!("Rent({cells}, global)"),
            format!("rent cells={cells} nets={nets} gamma={GAMMA} loc=1"),
        ),
    ] {
        let seed = derive_seed(profile.seed, &[41, cells as u64, which]);
        let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
        let params = RentNetlistParams::new(cells, nets, 8.min(cells), GAMMA, locality)?;
        let nl = sample_streamed(&mut gen_rng, &params);
        let begin = Instant::now();
        let outcome = bisect_huge_netlist(&nl, seed ^ 0xABCD, threads);
        let elapsed = begin.elapsed();
        let total_time_s = elapsed.as_secs_f64();
        let proposals_per_sec = if total_time_s > 0.0 {
            outcome.proposals as f64 / total_time_s
        } else {
            0.0
        };
        let cells_per_sec = if total_time_s > 0.0 {
            cells as f64 / total_time_s
        } else {
            0.0
        };
        table.push_row(vec![
            label,
            "PNetFM".into(),
            fmt_cut(outcome.cut as f64),
            fmt_duration(elapsed),
            format!("{:.0}ms", outcome.refine_time_s * 1000.0),
            outcome.rounds.to_string(),
            format!("{:.2}", proposals_per_sec / 1.0e6),
            format!("{:.0}", cells_per_sec / 1.0e3),
            super::huge::fmt_bytes(peak_rss_bytes()),
        ]);
        records.push(BenchRecord {
            experiment: "huge-netlist".into(),
            setting,
            algorithm: "PNetFM".into(),
            mean_cut: outcome.cut as f64,
            total_time_s,
            mean_passes: outcome.rounds as f64,
            proposals: outcome.proposals as f64,
            proposals_per_sec,
            refine_time_s: outcome.refine_time_s,
            hpwl: 0.0,
            graphs: 1,
        });
    }
    Ok(ExperimentResult {
        id: "huge-netlist".into(),
        title: "Million-cell netlist feasibility: streaming pin-CSR build, BFS cell reorder, \
                parallel multilevel"
            .into(),
        tables: vec![table],
        records,
    })
}

/// Result of one huge netlist bisection.
struct HugeNetlistOutcome {
    cut: u64,
    rounds: u64,
    proposals: u64,
    /// Wall time of the refinement phase alone: from the initial
    /// coarsest-netlist partition through the final polish, excluding
    /// generation, reordering, and ladder construction.
    refine_time_s: f64,
}

/// BFS cell reorder → parallel multilevel V-cycle → map back. The
/// returned net cut is re-verified on the *original* netlist, so the
/// relabeling is provably cut-preserving in every run, not just in
/// tests.
fn bisect_huge_netlist(nl: &Netlist, seed: u64, threads: usize) -> HugeNetlistOutcome {
    let order = bfs_cell_order(nl);
    let nlr = permute_cells(nl, &order);

    let matcher = ParallelCellMatching::new().with_threads(threads);
    let pnfm = ParallelNetlistFm::new().with_threads(threads);
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    let mut ws = Workspace::new();
    let _ = ws.take_proposals();

    // Coarsen down to the target size through the scratch-reusing
    // contraction: one arena serves every level. A level must shrink
    // the netlist by at least 5% to be kept — netlists carry netless
    // and degenerate-net cells that can never match, so demanding mere
    // shrinkage would stack near-identical levels once only those
    // remain.
    let target = coarse_target(nlr.num_cells());
    let mut ladder: Vec<NetlistContraction> = Vec::new();
    let mut scratch = NetlistContractionScratch::new();
    while current_netlist(&nlr, &ladder).num_cells() > target {
        let level = current_netlist(&nlr, &ladder);
        let before = level.num_cells();
        let pairs = matcher.matching(level);
        if pairs.is_empty() {
            break;
        }
        let c = contract_cells_into(level, &pairs, &mut scratch);
        if c.coarse().num_cells() * 20 <= before * 19 {
            ladder.push(c);
        } else {
            break;
        }
    }

    // Initial partition on the coarsest netlist. The coarsest level
    // sets the basin every finer level refines within, so it gets the
    // serial FM refiner — whose pass mechanics cross gain hills —
    // rather than the strictly greedy parallel one. Its run leaves
    // `ws.netlist_cache` exact for the bisection it returns.
    let refine_begin = Instant::now();
    let coarsest = current_netlist(&nlr, &ladder);
    let p = NetlistBisection::random_balanced(coarsest, &mut rng);
    let mut rounds = 0u64;
    let mut dummy = LaggedFibonacci::seed_from_u64(0);
    let fm = NetlistFm::new();
    let (refined, r) = fm.refine_counted(coarsest, &[], p, &mut dummy, &mut ws);
    rounds += r;

    // Uncoarsen under the projected-cache protocol: the cache is
    // *projected* through every contraction on the way up — no level
    // pays the O(cells + pins) rebuild, and each level's
    // boundary-seeded ParallelNetlistFm rounds touch only the cut
    // boundary instead of the whole cell range.
    let mut current = refined;
    for i in (0..ladder.len()).rev() {
        let sides = ladder[i].project_sides(current.sides());
        let level: &Netlist = if i == 0 { &nlr } else { ladder[i - 1].coarse() };
        let projected =
            NetlistBisection::from_sides(level, sides).expect("projected sides match level size");
        ws.project_netlist_cache(level, &projected, ladder[i].fine_to_coarse());
        let (refined, r) =
            pnfm.refine_projected_counted(level, &[], projected, &mut dummy, &mut ws);
        rounds += r;
        current = refined;
    }

    // Restore exact balance on the finest netlist and give local
    // search one more shot from the rebalanced state. The cache is
    // exact for `current`, so rebalancing rides its O(1) gains and
    // keeps it exact for the final boundary polish.
    rebalance_with_cache(&nlr, &mut current, &[], ws.netlist_cache_mut());
    let (refined, r) = pnfm.refine_projected_counted(&nlr, &[], current, &mut dummy, &mut ws);
    rounds += r;
    let refine_time_s = refine_begin.elapsed().as_secs_f64();

    // Map back to original labels and re-verify the net cut there.
    let mut old_sides = vec![false; nl.num_cells()];
    for (new, &old) in order.iter().enumerate() {
        old_sides[old as usize] = refined.sides()[new];
    }
    let original =
        NetlistBisection::from_sides(nl, old_sides).expect("inverse mapping is a permutation");
    assert_eq!(
        original.cut(),
        refined.cut(),
        "relabeling must preserve the net cut"
    );
    HugeNetlistOutcome {
        cut: original.cut(),
        rounds,
        proposals: ws.take_proposals(),
        refine_time_s,
    }
}

/// Helper: the netlist a ladder of contractions currently bottoms out
/// at.
fn current_netlist<'a>(fine: &'a Netlist, ladder: &'a [NetlistContraction]) -> &'a Netlist {
    ladder.last().map_or(fine, |c| c.coarse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Scale;

    #[test]
    fn smoke_scale_runs_end_to_end() {
        let profile = Profile::smoke();
        let result = run(&profile).expect("huge-netlist experiment at smoke scale");
        assert_eq!(result.id, "huge-netlist");
        assert_eq!(result.records.len(), 2);
        for r in &result.records {
            assert_eq!(r.algorithm, "PNetFM");
            assert!(r.mean_cut >= 0.0);
            assert!(r.graphs == 1);
        }
        // The locality-clustered instance confines nets to 2% windows,
        // so a good bisection cuts far fewer nets than the global one.
        assert!(
            result.records[0].mean_cut < result.records[1].mean_cut,
            "local {} vs global {}",
            result.records[0].mean_cut,
            result.records[1].mean_cut
        );
        assert_eq!(result.tables.len(), 1);
        assert_eq!(result.tables[0].rows().len(), 2);
    }

    #[test]
    fn deterministic_at_fixed_threads() {
        let params = RentNetlistParams::new(1500, 2100, 6, GAMMA, 0.1).unwrap();
        let nl = sample_streamed(&mut LaggedFibonacci::seed_from_u64(7), &params);
        let a = bisect_huge_netlist(&nl, 123, 4);
        let b = bisect_huge_netlist(&nl, 123, 4);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.proposals, b.proposals);
    }

    #[test]
    fn huge_netlist_smoke_profile_names_the_scale() {
        let p = Profile::huge_smoke();
        assert_eq!(p.scale, Scale::HugeSmoke);
        assert_eq!(p.huge_netlist_shape(), (100_000, 140_000));
        assert_eq!(p.starts, 1);
    }
}
