//! Observation experiments: the qualitative claims of §VI rendered as
//! tables.
//!
//! * **Observation 1** — KL and SA degrade sharply from degree 4 to
//!   degree 3 on `Gbreg`; degree-4 instances are solved to the planted
//!   width and faster.
//! * **Observation 4** — KL is faster than SA and usually better,
//!   except on binary trees and ladder graphs where SA wins.

use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, special};
use rand::SeedableRng;

use super::{derive_seed, ExperimentResult};
use crate::error::BenchError;
use crate::json::quad_records;
use crate::profile::Profile;
use crate::runner::{QuadAverage, Suite};
use crate::table::{fmt_duration, Table};

/// Observation 1: the degree-3 vs degree-4 cliff on `Gbreg`. Rows per
/// degree report found/planted cut ratios and times for all four
/// algorithms.
///
/// # Errors
///
/// Returns [`BenchError::Gen`] if the `Gbreg` parameters are infeasible
/// or the randomized construction exhausts its restarts.
pub fn obs1(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let size = *profile
        .random_model_sizes()
        .last()
        .expect("profile has sizes");
    let b0 = profile.gbreg_widths()[profile.gbreg_widths().len() / 2];
    let mut table = Table::new(
        format!("Observation 1: Gbreg({size}, b≈{b0}, d) quality cliff (cut / planted b)"),
        [
            "d",
            "b",
            "SA ratio",
            "CSA ratio",
            "KL ratio",
            "CKL ratio",
            "KL passes",
            "t_SA",
            "t_KL",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut records = Vec::new();
    for d in [3usize, 4] {
        let b = super::random::feasible_width(size / 2, d, b0);
        let params = gbreg::GbregParams::new(size, b, d)?;
        let reps = bisect_par::par_map(profile.replicates, |rep| {
            let seed = derive_seed(profile.seed, &[50, d as u64, rep as u64]);
            let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
            let g = gbreg::sample(&mut gen_rng, &params)?;
            let quad = suite.run(&g, profile.starts, seed ^ 0xABCD);
            // Pass count behind the speed difference ("it takes fewer
            // passes for the algorithms to converge on degree 4").
            let init = bisect_core::seed::random_balanced(&g, &mut gen_rng);
            let (_, passes) = bisect_core::kl::KernighanLin::new().refine_with_passes(&g, init);
            Ok::<_, bisect_gen::GenError>((quad, passes))
        });
        let reps = reps.into_iter().collect::<Result<Vec<_>, _>>()?;
        let mut ratios = [0.0f64; 4];
        let mut t_sa = std::time::Duration::ZERO;
        let mut t_kl = std::time::Duration::ZERO;
        let mut kl_passes = 0usize;
        let mut avg = QuadAverage::default();
        for (quad, passes) in &reps {
            let (sa, csa, kl, ckl) = quad;
            for (i, r) in [sa, csa, kl, ckl].iter().enumerate() {
                ratios[i] += r.cut as f64 / b as f64;
            }
            t_sa += sa.elapsed;
            t_kl += kl.elapsed;
            kl_passes += passes;
            avg.add(quad);
        }
        records.extend(quad_records("obs1", &format!("d={d} b={b}"), &avg.finish()));
        let n = profile.replicates as f64;
        table.push_row(vec![
            d.to_string(),
            b.to_string(),
            format!("{:.1}x", ratios[0] / n),
            format!("{:.1}x", ratios[1] / n),
            format!("{:.1}x", ratios[2] / n),
            format!("{:.1}x", ratios[3] / n),
            format!("{:.1}", kl_passes as f64 / n),
            fmt_duration(t_sa / profile.replicates as u32),
            fmt_duration(t_kl / profile.replicates as u32),
        ]);
    }
    Ok(ExperimentResult {
        id: "obs1".into(),
        title: "Observation 1: algorithms improve as average degree increases".into(),
        tables: vec![table],
        records,
    })
}

/// Observation 4: KL vs SA head to head — speed everywhere, quality on
/// special graphs (SA wins on trees and ladders).
///
/// # Errors
///
/// Currently infallible (special-graph construction cannot fail); the
/// `Result` keeps the signature uniform across experiments.
pub fn obs4(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let mut table = Table::new(
        "Observation 4: KL vs SA (uncompacted, best of starts)",
        [
            "graph",
            "bkl",
            "bsa",
            "t_KL",
            "t_SA",
            "SA/KL time",
            "quality winner",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let grid_side = *profile.grid_sides().last().expect("profile has grid sizes");
    let rungs = *profile
        .ladder_rungs()
        .last()
        .expect("profile has ladder sizes");
    let tree = *profile.tree_sizes().last().expect("profile has tree sizes");
    let workloads: Vec<(String, bisect_graph::Graph)> = vec![
        (
            format!("grid {grid_side}x{grid_side}"),
            special::grid(grid_side, grid_side),
        ),
        (format!("ladder 2x{rungs}"), special::ladder(rungs)),
        (format!("binary tree {tree}"), special::binary_tree(tree)),
    ];
    let runs = bisect_par::par_map(workloads.len(), |i| {
        let seed = derive_seed(profile.seed, &[60, i as u64]);
        suite.run(&workloads[i].1, profile.starts, seed)
    });
    let mut records = Vec::new();
    for ((label, _), quad) in workloads.iter().zip(&runs) {
        let (sa, _, kl, _) = quad;
        let mut avg = QuadAverage::default();
        avg.add(quad);
        records.extend(quad_records("obs4", label, &avg.finish()));
        let time_ratio = if kl.elapsed.as_secs_f64() > 0.0 {
            sa.elapsed.as_secs_f64() / kl.elapsed.as_secs_f64()
        } else {
            0.0
        };
        let winner = match kl.cut.cmp(&sa.cut) {
            std::cmp::Ordering::Less => "KL",
            std::cmp::Ordering::Greater => "SA",
            std::cmp::Ordering::Equal => "tie",
        };
        table.push_row(vec![
            label.clone(),
            kl.cut.to_string(),
            sa.cut.to_string(),
            fmt_duration(kl.elapsed),
            fmt_duration(sa.elapsed),
            format!("{time_ratio:.1}x"),
            winner.into(),
        ]);
    }
    Ok(ExperimentResult {
        id: "obs4".into(),
        title: "Observation 4: KL is faster; SA wins trees and ladders".into(),
        tables: vec![table],
        records,
    })
}

/// §VI head-to-head claim: "On graphs of average degree of 2.5 to 3.5,
/// when a noticeable difference was observed in the quality of the
/// bisection returned, the Kernighan-Lin procedure had the better
/// bisection sixty percent of the time." Counts KL-better / SA-better /
/// tie over a `G2set` corpus at those degrees.
///
/// # Errors
///
/// Currently infallible (infeasible `(degree, b)` instances are skipped
/// by design); the `Result` keeps the signature uniform.
pub fn winrate(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let size = *profile
        .random_model_sizes()
        .first()
        .expect("profile has sizes");
    let mut table = Table::new(
        format!("KL vs SA quality head-to-head on G2set({size}, ·, ·, b), best of starts"),
        [
            "deg",
            "KL better",
            "SA better",
            "tie",
            "KL share of decided",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    for &degree in &[2.5f64, 3.0, 3.5] {
        let instances = (profile.replicates * 4).max(4);
        let outcomes = bisect_par::par_map(instances, |rep| {
            let b = profile.g2set_widths()[rep % profile.g2set_widths().len()];
            let Ok(params) = bisect_gen::g2set::G2setParams::with_average_degree(size, degree, b)
            else {
                return None;
            };
            let seed = derive_seed(profile.seed, &[80, degree.to_bits(), rep as u64]);
            let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
            let g = bisect_gen::g2set::sample(&mut gen_rng, &params);
            let (sa, _, kl, _) = suite.run(&g, profile.starts, seed ^ 0xABCD);
            Some(kl.cut.cmp(&sa.cut))
        });
        let mut kl_wins = 0usize;
        let mut sa_wins = 0usize;
        let mut ties = 0usize;
        for outcome in outcomes.into_iter().flatten() {
            match outcome {
                std::cmp::Ordering::Less => kl_wins += 1,
                std::cmp::Ordering::Greater => sa_wins += 1,
                std::cmp::Ordering::Equal => ties += 1,
            }
        }
        let decided = kl_wins + sa_wins;
        let share = if decided == 0 {
            "-".to_string()
        } else {
            format!("{:.0}%", kl_wins as f64 / decided as f64 * 100.0)
        };
        table.push_row(vec![
            format!("{degree}"),
            kl_wins.to_string(),
            sa_wins.to_string(),
            ties.to_string(),
            share,
        ]);
    }
    Ok(ExperimentResult {
        id: "winrate".into(),
        title: "§VI head-to-head: KL wins ~60% of decided instances at degree 2.5-3.5".into(),
        tables: vec![table],
        records: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winrate_rows_and_consistency() {
        let result = winrate(&Profile::smoke()).unwrap();
        assert_eq!(result.tables[0].rows().len(), 3);
        for row in result.tables[0].rows() {
            let kl: usize = row[1].parse().unwrap();
            let sa: usize = row[2].parse().unwrap();
            let tie: usize = row[3].parse().unwrap();
            assert!(kl + sa + tie >= 4);
        }
    }

    #[test]
    fn obs1_rows_per_degree() {
        let result = obs1(&Profile::smoke()).unwrap();
        assert_eq!(result.tables[0].rows().len(), 2);
        assert_eq!(result.tables[0].rows()[0][0], "3");
        assert_eq!(result.tables[0].rows()[1][0], "4");
    }

    #[test]
    fn obs4_covers_three_workloads() {
        let result = obs4(&Profile::smoke()).unwrap();
        assert_eq!(result.tables[0].rows().len(), 3);
        let winners: Vec<&str> = result.tables[0]
            .rows()
            .iter()
            .map(|r| r.last().unwrap().as_str())
            .collect();
        for w in winners {
            assert!(["KL", "SA", "tie"].contains(&w));
        }
    }
}
