//! Observation experiments: the qualitative claims of §VI rendered as
//! tables.
//!
//! * **Observation 1** — KL and SA degrade sharply from degree 4 to
//!   degree 3 on `Gbreg`; degree-4 instances are solved to the planted
//!   width and faster.
//! * **Observation 4** — KL is faster than SA and usually better,
//!   except on binary trees and ladder graphs where SA wins.

use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, special};
use rand::SeedableRng;

use super::{derive_seed, ExperimentResult};
use crate::profile::Profile;
use crate::runner::Suite;
use crate::table::{fmt_duration, Table};

/// Observation 1: the degree-3 vs degree-4 cliff on `Gbreg`. Rows per
/// degree report found/planted cut ratios and times for all four
/// algorithms.
pub fn obs1(profile: &Profile) -> ExperimentResult {
    let suite = Suite::for_profile(profile);
    let size = *profile.random_model_sizes().last().expect("profile has sizes");
    let b0 = profile.gbreg_widths()[profile.gbreg_widths().len() / 2];
    let mut table = Table::new(
        format!("Observation 1: Gbreg({size}, b≈{b0}, d) quality cliff (cut / planted b)"),
        ["d", "b", "SA ratio", "CSA ratio", "KL ratio", "CKL ratio", "KL passes", "t_SA", "t_KL"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for d in [3usize, 4] {
        let b = super::random::feasible_width(size / 2, d, b0);
        let params = gbreg::GbregParams::new(size, b, d).expect("feasible parameters");
        let mut ratios = [0.0f64; 4];
        let mut t_sa = std::time::Duration::ZERO;
        let mut t_kl = std::time::Duration::ZERO;
        let mut kl_passes = 0usize;
        for rep in 0..profile.replicates {
            let seed = derive_seed(profile.seed, &[50, d as u64, rep as u64]);
            let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
            let g = gbreg::sample(&mut gen_rng, &params).expect("construction succeeds");
            let (sa, csa, kl, ckl) = suite.run(&g, profile.starts, seed ^ 0xABCD);
            for (i, r) in [&sa, &csa, &kl, &ckl].iter().enumerate() {
                ratios[i] += r.cut as f64 / b as f64;
            }
            t_sa += sa.elapsed;
            t_kl += kl.elapsed;
            // Pass count behind the speed difference ("it takes fewer
            // passes for the algorithms to converge on degree 4").
            let init = bisect_core::seed::random_balanced(&g, &mut gen_rng);
            let (_, passes) =
                bisect_core::kl::KernighanLin::new().refine_with_passes(&g, init);
            kl_passes += passes;
        }
        let n = profile.replicates as f64;
        table.push_row(vec![
            d.to_string(),
            b.to_string(),
            format!("{:.1}x", ratios[0] / n),
            format!("{:.1}x", ratios[1] / n),
            format!("{:.1}x", ratios[2] / n),
            format!("{:.1}x", ratios[3] / n),
            format!("{:.1}", kl_passes as f64 / n),
            fmt_duration(t_sa / profile.replicates as u32),
            fmt_duration(t_kl / profile.replicates as u32),
        ]);
    }
    ExperimentResult {
        id: "obs1".into(),
        title: "Observation 1: algorithms improve as average degree increases".into(),
        tables: vec![table],
    }
}

/// Observation 4: KL vs SA head to head — speed everywhere, quality on
/// special graphs (SA wins on trees and ladders).
pub fn obs4(profile: &Profile) -> ExperimentResult {
    let suite = Suite::for_profile(profile);
    let mut table = Table::new(
        "Observation 4: KL vs SA (uncompacted, best of starts)",
        ["graph", "bkl", "bsa", "t_KL", "t_SA", "SA/KL time", "quality winner"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let grid_side = *profile.grid_sides().last().expect("profile has grid sizes");
    let rungs = *profile.ladder_rungs().last().expect("profile has ladder sizes");
    let tree = *profile.tree_sizes().last().expect("profile has tree sizes");
    let workloads: Vec<(String, bisect_graph::Graph)> = vec![
        (format!("grid {grid_side}x{grid_side}"), special::grid(grid_side, grid_side)),
        (format!("ladder 2x{rungs}"), special::ladder(rungs)),
        (format!("binary tree {tree}"), special::binary_tree(tree)),
    ];
    for (i, (label, g)) in workloads.iter().enumerate() {
        let seed = derive_seed(profile.seed, &[60, i as u64]);
        let (sa, _, kl, _) = suite.run(g, profile.starts, seed);
        let time_ratio = if kl.elapsed.as_secs_f64() > 0.0 {
            sa.elapsed.as_secs_f64() / kl.elapsed.as_secs_f64()
        } else {
            0.0
        };
        let winner = match kl.cut.cmp(&sa.cut) {
            std::cmp::Ordering::Less => "KL",
            std::cmp::Ordering::Greater => "SA",
            std::cmp::Ordering::Equal => "tie",
        };
        table.push_row(vec![
            label.clone(),
            kl.cut.to_string(),
            sa.cut.to_string(),
            fmt_duration(kl.elapsed),
            fmt_duration(sa.elapsed),
            format!("{time_ratio:.1}x"),
            winner.into(),
        ]);
    }
    ExperimentResult {
        id: "obs4".into(),
        title: "Observation 4: KL is faster; SA wins trees and ladders".into(),
        tables: vec![table],
    }
}

/// §VI head-to-head claim: "On graphs of average degree of 2.5 to 3.5,
/// when a noticeable difference was observed in the quality of the
/// bisection returned, the Kernighan-Lin procedure had the better
/// bisection sixty percent of the time." Counts KL-better / SA-better /
/// tie over a `G2set` corpus at those degrees.
pub fn winrate(profile: &Profile) -> ExperimentResult {
    let suite = Suite::for_profile(profile);
    let size = *profile.random_model_sizes().first().expect("profile has sizes");
    let mut table = Table::new(
        format!("KL vs SA quality head-to-head on G2set({size}, ·, ·, b), best of starts"),
        ["deg", "KL better", "SA better", "tie", "KL share of decided"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for &degree in &[2.5f64, 3.0, 3.5] {
        let mut kl_wins = 0usize;
        let mut sa_wins = 0usize;
        let mut ties = 0usize;
        let instances = (profile.replicates * 4).max(4);
        for rep in 0..instances {
            let b = profile.g2set_widths()[rep % profile.g2set_widths().len()];
            let Ok(params) =
                bisect_gen::g2set::G2setParams::with_average_degree(size, degree, b)
            else {
                continue;
            };
            let seed = derive_seed(profile.seed, &[80, degree.to_bits(), rep as u64]);
            let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
            let g = bisect_gen::g2set::sample(&mut gen_rng, &params);
            let (sa, _, kl, _) = suite.run(&g, profile.starts, seed ^ 0xABCD);
            match kl.cut.cmp(&sa.cut) {
                std::cmp::Ordering::Less => kl_wins += 1,
                std::cmp::Ordering::Greater => sa_wins += 1,
                std::cmp::Ordering::Equal => ties += 1,
            }
        }
        let decided = kl_wins + sa_wins;
        let share = if decided == 0 {
            "-".to_string()
        } else {
            format!("{:.0}%", kl_wins as f64 / decided as f64 * 100.0)
        };
        table.push_row(vec![
            format!("{degree}"),
            kl_wins.to_string(),
            sa_wins.to_string(),
            ties.to_string(),
            share,
        ]);
    }
    ExperimentResult {
        id: "winrate".into(),
        title: "§VI head-to-head: KL wins ~60% of decided instances at degree 2.5-3.5".into(),
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winrate_rows_and_consistency() {
        let result = winrate(&Profile::smoke());
        assert_eq!(result.tables[0].rows().len(), 3);
        for row in result.tables[0].rows() {
            let kl: usize = row[1].parse().unwrap();
            let sa: usize = row[2].parse().unwrap();
            let tie: usize = row[3].parse().unwrap();
            assert!(kl + sa + tie >= 4);
        }
    }

    #[test]
    fn obs1_rows_per_degree() {
        let result = obs1(&Profile::smoke());
        assert_eq!(result.tables[0].rows().len(), 2);
        assert_eq!(result.tables[0].rows()[0][0], "3");
        assert_eq!(result.tables[0].rows()[1][0], "4");
    }

    #[test]
    fn obs4_covers_three_workloads() {
        let result = obs4(&Profile::smoke());
        assert_eq!(result.tables[0].rows().len(), 3);
        let winners: Vec<&str> =
            result.tables[0].rows().iter().map(|r| r.last().unwrap().as_str()).collect();
        for w in winners {
            assert!(["KL", "SA", "tie"].contains(&w));
        }
    }
}
