//! The experiments of the paper's evaluation, one function per table
//! (see `DESIGN.md` §3 for the experiment ↔ paper artifact index).

use std::time::Duration;

use crate::error::BenchError;
use crate::json::BenchRecord;
use crate::profile::Profile;
use crate::runner::QuadAverage;
use crate::table::{fmt_cut, fmt_duration, fmt_percent, Table};

pub mod analysis;
pub mod huge;
pub mod huge_netlist;
pub mod observations;
pub mod placement;
pub mod random;
pub mod special;

/// Output of one experiment: a set of rendered tables plus the
/// machine-readable records behind them (empty for analysis-only
/// experiments whose tables have no per-algorithm quad structure).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (e.g. `"gbreg"`).
    pub id: String,
    /// Human-readable description.
    pub title: String,
    /// The tables, in the paper's order.
    pub tables: Vec<Table>,
    /// Flat per-`(setting, algorithm)` records for
    /// `BENCH_results.json`.
    pub records: Vec<BenchRecord>,
}

/// All experiment ids, in the order the paper presents them
/// (`models`, `klpasses`, `netlist`, `satune`, and `winrate` are this
/// reproduction's analysis extensions).
pub const ALL_IDS: &[&str] = &[
    "table1",
    "ladder",
    "grid",
    "btree",
    "g2set",
    "gnp",
    "gbreg",
    "obs1",
    "obs4",
    "models",
    "klpasses",
    "netlist",
    "placement",
    "satune",
    "winrate",
    "huge",
    "huge-netlist",
];

/// Whether `id` names a known experiment.
pub fn is_known(id: &str) -> bool {
    ALL_IDS.contains(&id)
}

/// Runs the experiment with the given id.
///
/// # Errors
///
/// Returns [`BenchError::UnknownExperiment`] for an id outside
/// [`ALL_IDS`], and propagates generator and pipeline errors from the
/// experiment itself.
pub fn run(id: &str, profile: &Profile) -> Result<ExperimentResult, BenchError> {
    match id {
        "table1" => special::table1(profile),
        "ladder" => special::family(profile, special::Family::Ladder),
        "grid" => special::family(profile, special::Family::Grid),
        "btree" => special::family(profile, special::Family::BinaryTree),
        "g2set" => random::g2set(profile),
        "gnp" => random::gnp(profile),
        "gbreg" => random::gbreg(profile),
        "obs1" => observations::obs1(profile),
        "obs4" => observations::obs4(profile),
        "winrate" => observations::winrate(profile),
        "models" => analysis::models(profile),
        "klpasses" => analysis::klpasses(profile),
        "netlist" => analysis::netlist(profile),
        "placement" => placement::run(profile),
        "satune" => analysis::satune(profile),
        "huge" => huge::run(profile),
        "huge-netlist" => huge_netlist::run(profile),
        other => Err(BenchError::UnknownExperiment { id: other.into() }),
    }
}

/// Column headers shared by all four-algorithm tables (the appendix
/// layout: per algorithm its cut and time, plus the paper's two derived
/// columns per algorithm family).
pub(crate) fn quad_headers(label: &str) -> Vec<String> {
    [
        label, "bsa", "t_sa", "bcsa", "t_csa", "SA impr", "SA spdup", "bkl", "t_kl", "bckl",
        "t_ckl", "KL impr", "KL spdup",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Renders one averaged setting as a row in the appendix layout.
pub(crate) fn quad_row(label: String, avg: &QuadAverage) -> Vec<String> {
    let [sa, csa, kl, ckl] = avg.cuts;
    let [t_sa, t_csa, t_kl, t_ckl] = avg.times;
    vec![
        label,
        fmt_cut(sa),
        fmt_duration(t_sa),
        fmt_cut(csa),
        fmt_duration(t_csa),
        fmt_percent(improvement(sa, csa)),
        fmt_percent(speedup(t_sa, t_csa)),
        fmt_cut(kl),
        fmt_duration(t_kl),
        fmt_cut(ckl),
        fmt_duration(t_ckl),
        fmt_percent(improvement(kl, ckl)),
        fmt_percent(speedup(t_kl, t_ckl)),
    ]
}

/// `(standard − compacted)/standard × 100` on mean cuts; 0 when the
/// standard cut is 0.
pub(crate) fn improvement(standard: f64, compacted: f64) -> f64 {
    if standard == 0.0 {
        0.0
    } else {
        (standard - compacted) / standard * 100.0
    }
}

/// `(t_woc − t_c)/t_woc × 100`; 0 when the baseline time is 0.
pub(crate) fn speedup(without: Duration, with: Duration) -> f64 {
    let t = without.as_secs_f64();
    if t == 0.0 {
        0.0
    } else {
        (t - with.as_secs_f64()) / t * 100.0
    }
}

/// Derives a per-instance seed from the profile seed and a context path
/// (experiment, size, setting, replicate …) via
/// [`bisect_gen::rng::SeedSequence`], so nearby paths give unrelated
/// streams and the derivation is shared with the parallel trial
/// runner's per-trial streams.
pub(crate) fn derive_seed(base: u64, parts: &[u64]) -> u64 {
    bisect_gen::rng::SeedSequence::derive(base, parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_lists_valid_ones() {
        let err = run("bogus", &Profile::quick()).unwrap_err();
        assert!(matches!(err, BenchError::UnknownExperiment { ref id } if id == "bogus"));
        assert!(err.to_string().contains("gbreg"));
        assert!(err.to_string().contains("table1"));
    }

    #[test]
    fn is_known_matches_all_ids() {
        for id in ALL_IDS {
            assert!(is_known(id));
        }
        assert!(!is_known("bogus"));
    }

    #[test]
    fn derive_seed_is_path_sensitive() {
        assert_ne!(derive_seed(1, &[1, 2]), derive_seed(1, &[2, 1]));
        assert_ne!(derive_seed(1, &[1]), derive_seed(2, &[1]));
        assert_eq!(derive_seed(7, &[3, 4]), derive_seed(7, &[3, 4]));
    }

    #[test]
    fn improvement_and_speedup_edge_cases() {
        assert_eq!(improvement(0.0, 5.0), 0.0);
        assert_eq!(improvement(10.0, 1.0), 90.0);
        assert_eq!(speedup(Duration::ZERO, Duration::from_secs(1)), 0.0);
        assert_eq!(
            speedup(Duration::from_secs(2), Duration::from_secs(1)),
            50.0
        );
    }

    #[test]
    fn quad_headers_match_row_width() {
        let headers = quad_headers("b");
        let avg = QuadAverage {
            cuts: [1.0, 2.0, 3.0, 4.0],
            times: [Duration::from_millis(1); 4],
            passes: [1.0; 4],
            proposals: [10.0; 4],
            count: 1,
        };
        assert_eq!(quad_row("x".into(), &avg).len(), headers.len());
    }
}
