//! The `huge` experiment: million-vertex bisection feasibility.
//!
//! One `Gbreg` and one `Gnp` instance at [`Profile::huge_vertices`]
//! vertices each go through the cache-conscious large-instance
//! pipeline:
//!
//! 1. **streaming generation** — `Gnp` uses
//!    [`bisect_gen::gnp::sample_streamed`], which never materializes an
//!    edge list (`Gbreg`'s generator streams its staged pair lists
//!    internally);
//! 2. **BFS vertex reordering** ([`bisect_graph::reorder::bfs`]) so
//!    refinement walks near-contiguous adjacency;
//! 3. **parallel multilevel bisection** —
//!    [`ParallelMatching`](bisect_core::pipeline::ParallelMatching)
//!    (heavy-edge) coarsening, a weight-balanced random start plus
//!    serial hill-crossing FM on the coarsest graph, then
//!    *boundary-localized* uncoarsening: the workspace
//!    [`GainCache`](bisect_core::gain_cache::GainCache) is built once
//!    at the coarsest level and **projected** through every
//!    contraction on the way back up, where boundary-seeded
//!    [`ParallelFm`](bisect_core::par_fm::ParallelFm) rounds refine
//!    only the tracked cut boundary instead of sweeping all vertices;
//! 4. **inverse mapping** back to the original vertex labels, with the
//!    cut re-verified on the untouched input graph.
//!
//! Reported per instance: cut, wall time, refinement-phase wall time
//! (initial partition through final polish), refinement rounds, gain
//! evaluations per second, and the process peak RSS so far. Results are
//! deterministic at a fixed thread count (see the `ParallelFm`
//! determinism contract); they are not part of the golden-pinned paper
//! tables.

use std::time::Instant;

use bisect_core::bisector::Refiner;
use bisect_core::fm::BoundaryFm;
use bisect_core::par_fm::ParallelFm;
use bisect_core::partition::{rebalance_with_cache, Bisection};
use bisect_core::pipeline::{CoarsenScheme, ParallelMatching};
use bisect_core::seed;
use bisect_core::workspace::Workspace;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, gnp};
use bisect_graph::contraction::Contraction;
use bisect_graph::{reorder, Graph};
use rand::SeedableRng;

use super::{derive_seed, ExperimentResult};
use crate::error::BenchError;
use crate::json::BenchRecord;
use crate::profile::Profile;
use crate::table::{fmt_cut, fmt_duration, Table};

/// Ceiling for the coarsest level's size (or a level stops making
/// progress first).
const COARSE_TARGET: usize = 5_000;

/// Coarsest-level size for an `n`-vertex instance: small graphs still
/// get a few coarsening levels (pure greedy refinement from a random
/// start is much weaker than a V-cycle), huge ones stop at
/// [`COARSE_TARGET`] where the serial seed partition is cheap.
fn coarse_target(n: usize) -> usize {
    (n / 16).clamp(64, COARSE_TARGET)
}

/// Runs the huge-instance feasibility experiment.
///
/// # Errors
///
/// Returns [`BenchError::Gen`] if instance generation fails (for the
/// fixed `d = 4`, `b = 64` parameters this is vanishingly rare).
pub fn run(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let n = profile.huge_vertices();
    let threads = bisect_par::num_threads();
    let mut table = Table::new(
        format!("Huge-instance feasibility: {n} vertices, {threads} threads"),
        [
            "graph", "algo", "cut", "time", "refine", "rounds", "Mprop/s", "peak RSS",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    let mut records = Vec::new();
    for (which, label, setting) in [
        (
            0u64,
            format!("Gbreg({n}, 64, 4)"),
            format!("gbreg n={n} d=4 b=64"),
        ),
        (1u64, format!("Gnp({n}, deg 3)"), format!("gnp n={n} deg=3")),
    ] {
        let seed = derive_seed(profile.seed, &[40, n as u64, which]);
        let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
        let g = match which {
            0 => {
                let params = gbreg::GbregParams::new(n, 64.min(n / 4), 4)?;
                gbreg::sample(&mut gen_rng, &params)?
            }
            _ => {
                let params = gnp::GnpParams::with_average_degree(n, 3.0)?;
                gnp::sample_streamed(&mut gen_rng, &params)
            }
        };
        let begin = Instant::now();
        let outcome = bisect_huge(&g, seed ^ 0xABCD, threads);
        let elapsed = begin.elapsed();
        let total_time_s = elapsed.as_secs_f64();
        let proposals_per_sec = if total_time_s > 0.0 {
            outcome.proposals as f64 / total_time_s
        } else {
            0.0
        };
        table.push_row(vec![
            label,
            "PFM".into(),
            fmt_cut(outcome.cut as f64),
            fmt_duration(elapsed),
            format!("{:.0}ms", outcome.refine_time_s * 1000.0),
            outcome.rounds.to_string(),
            format!("{:.2}", proposals_per_sec / 1.0e6),
            fmt_bytes(peak_rss_bytes()),
        ]);
        records.push(BenchRecord {
            experiment: "huge".into(),
            setting,
            algorithm: "PFM".into(),
            mean_cut: outcome.cut as f64,
            total_time_s,
            mean_passes: outcome.rounds as f64,
            proposals: outcome.proposals as f64,
            proposals_per_sec,
            refine_time_s: outcome.refine_time_s,
            hpwl: 0.0,
            graphs: 1,
        });
    }
    Ok(ExperimentResult {
        id: "huge".into(),
        title: "Million-vertex feasibility: streaming build, BFS reorder, parallel multilevel"
            .into(),
        tables: vec![table],
        records,
    })
}

/// Result of one huge bisection.
struct HugeOutcome {
    cut: u64,
    rounds: u64,
    proposals: u64,
    /// Wall time of the refinement phase alone: from the initial
    /// coarsest-graph partition through the final polish, excluding
    /// generation, reordering, and ladder construction.
    refine_time_s: f64,
}

/// BFS reorder → parallel multilevel V-cycle → map back. The returned
/// cut is re-verified on the *original* graph, so the reordering is
/// provably cut-preserving in every run, not just in tests.
fn bisect_huge(g: &Graph, seed: u64, threads: usize) -> HugeOutcome {
    let order = reorder::bfs(g);
    let gr = order.apply(g);

    let scheme = ParallelMatching::new().with_threads(threads);
    let pfm = ParallelFm::new()
        .with_threads(threads)
        .with_boundary_seeds();
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    let mut ws = Workspace::new();
    let _ = ws.take_proposals();

    // Coarsen down to the target size. A level must shrink the graph
    // by at least 5% to be kept: sparse random graphs carry isolated
    // vertices (≈ e^-d of Gnp) that can never match, so demanding mere
    // shrinkage would stack thousands of near-identical levels once
    // only those remain.
    let target = coarse_target(g.num_vertices());
    let mut ladder: Vec<Contraction> = Vec::new();
    while current_graph(&gr, &ladder).num_vertices() > target {
        let level = current_graph(&gr, &ladder);
        let before = level.num_vertices();
        match scheme.coarsen(level, &mut rng) {
            Some(c) if c.coarse().num_vertices() * 20 <= before * 19 => {
                ladder.push(c);
            }
            _ => break,
        }
    }

    // Initial partition on the coarsest graph. The coarsest level sets
    // the basin every finer level refines within, so it gets the
    // serial Fiduccia-Mattheyses refiner — whose pass mechanics cross
    // gain hills — rather than the strictly greedy parallel one.
    let refine_begin = Instant::now();
    let coarsest = current_graph(&gr, &ladder);
    let p = seed::weight_balanced_random(coarsest, &mut rng);
    let mut rounds = 0u64;
    let mut dummy = LaggedFibonacci::seed_from_u64(0);
    let fm = BoundaryFm::new();
    let (refined, r) = fm.refine_counted(coarsest, p, &mut dummy, &mut ws);
    rounds += r;

    // Uncoarsen under the projected-cache protocol: the coarsest-level
    // BoundaryFm left `ws.gain_cache` exact for `refined`, and from
    // here it is *projected* through every contraction on the way up —
    // no level pays the O(V + E) cache rebuild, cut bookkeeping rides
    // the projection (projection preserves the cut exactly), and each
    // level's boundary-seeded ParallelFm rounds touch only the cut
    // boundary instead of the whole vertex range.
    let mut current = refined;
    for i in (0..ladder.len()).rev() {
        let sides = ladder[i].project_sides(current.sides());
        let level: &Graph = if i == 0 { &gr } else { ladder[i - 1].coarse() };
        let projected = Bisection::from_sides_with_cut(level, sides, current.cut())
            .expect("projected sides match level size");
        ws.project_gain_cache(level, &projected, ladder[i].fine_to_coarse());
        let (refined, r) = pfm.refine_projected_counted(level, projected, &mut dummy, &mut ws);
        rounds += r;
        current = refined;
    }

    // Restore exact unit balance on the finest graph and give local
    // search one more shot from the rebalanced state. The cache is
    // exact for `current`, so rebalancing rides its O(1) gains and
    // keeps it exact for the boundary polish.
    rebalance_with_cache(&gr, &mut current, ws.gain_cache_mut());
    let (refined, r) = pfm.refine_projected_counted(&gr, current, &mut dummy, &mut ws);
    rounds += r;
    // Quality backstop: one full-range sweep catches any interior
    // cascade the boundary rounds deferred. From an already-converged
    // state this typically terminates in a round or two.
    let full = ParallelFm::new().with_threads(threads);
    let (refined, r) = full.refine_counted(&gr, refined, &mut dummy, &mut ws);
    rounds += r;
    let refine_time_s = refine_begin.elapsed().as_secs_f64();

    // Map back to original labels and re-verify the cut there.
    let old_sides = order.to_old_sides(refined.sides());
    let original = Bisection::from_sides(g, old_sides).expect("inverse mapping is a permutation");
    assert_eq!(
        original.cut(),
        refined.cut(),
        "reordering must preserve the cut"
    );
    HugeOutcome {
        cut: original.cut(),
        rounds,
        proposals: ws.take_proposals(),
        refine_time_s,
    }
}

/// Helper: the graph a ladder of contractions currently bottoms out at.
fn current_graph<'a>(fine: &'a Graph, ladder: &'a [Contraction]) -> &'a Graph {
    ladder.last().map_or(fine, |c| c.coarse())
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where that interface does not exist.
pub fn peak_rss_bytes() -> u64 {
    peak_rss().0
}

/// As [`peak_rss_bytes`], with an explanation when the value degrades
/// to 0: the field is still *recorded* (as 0) so the report schema
/// stays uniform across platforms, and the note tells the reader (and
/// the `repro` log) why it is 0 instead of silently looking like a
/// measurement.
pub fn peak_rss() -> (u64, Option<&'static str>) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (
            0,
            Some("/proc/self/status unavailable on this platform; peak RSS recorded as 0"),
        );
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            if kb == 0 {
                return (
                    0,
                    Some("VmHWM in /proc/self/status did not parse; peak RSS recorded as 0"),
                );
            }
            return (kb * 1024, None);
        }
    }
    (
        0,
        Some("/proc/self/status has no VmHWM line; peak RSS recorded as 0"),
    )
}

/// Formats a byte count as MiB for the table (shared with the
/// `huge-netlist` twin experiment).
pub(crate) fn fmt_bytes(bytes: u64) -> String {
    if bytes == 0 {
        "n/a".into()
    } else {
        format!("{:.0} MiB", bytes as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Scale;

    #[test]
    fn smoke_scale_runs_end_to_end() {
        let profile = Profile::smoke();
        let result = run(&profile).expect("huge experiment at smoke scale");
        assert_eq!(result.id, "huge");
        assert_eq!(result.records.len(), 2);
        for r in &result.records {
            assert_eq!(r.algorithm, "PFM");
            assert!(r.mean_cut >= 0.0);
            assert!(r.graphs == 1);
        }
        // Gbreg plants a 64-edge bisection; multilevel local search on
        // 2000 vertices should land well under a random cut (~2000).
        assert!(
            result.records[0].mean_cut < 1000.0,
            "cut {}",
            result.records[0].mean_cut
        );
        assert_eq!(result.tables.len(), 1);
        assert_eq!(result.tables[0].rows().len(), 2);
    }

    #[test]
    fn deterministic_at_fixed_threads() {
        let g = bisect_gen::special::grid(40, 40);
        let a = bisect_huge(&g, 123, 4);
        let b = bisect_huge(&g, 123, 4);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.proposals, b.proposals);
    }

    #[test]
    fn huge_smoke_profile_names_the_scale() {
        let p = Profile::huge_smoke();
        assert_eq!(p.scale, Scale::HugeSmoke);
        assert_eq!(p.huge_vertices(), 100_000);
        assert_eq!(p.starts, 1);
    }

    #[test]
    fn peak_rss_reports_something_on_linux() {
        // On Linux /proc exists and the value is at least a megabyte;
        // elsewhere the function degrades to 0.
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 1 << 20, "rss {rss}");
        }
    }

    #[test]
    fn fmt_bytes_handles_zero_and_large() {
        assert_eq!(fmt_bytes(0), "n/a");
        assert_eq!(fmt_bytes(512 * 1024 * 1024), "512 MiB");
    }
}
