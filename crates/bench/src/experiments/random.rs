//! Random-model experiments: the appendix's `G2set`, `Gnp`, and `Gbreg`
//! tables for 2000- and 5000-vertex graphs (sizes scale with the
//! profile).
//!
//! Replicates fan out over threads; every replicate derives its
//! generator and suite seeds purely from the profile seed and its own
//! context path, and results fold in replicate order, so tables are
//! bit-identical at any thread count.

use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{g2set, gbreg, gnp};
use rand::SeedableRng;

use super::{derive_seed, quad_headers, quad_row, ExperimentResult};
use crate::error::BenchError;
use crate::json::quad_records;
use crate::profile::Profile;
use crate::runner::{QuadAverage, Suite};
use crate::table::Table;

/// The appendix `G2set(2n, pA, pB, b)` tables: one sub-table per
/// (vertex count, average degree), rows swept over the planted cross
/// count `b`.
///
/// # Errors
///
/// Infeasible `(degree, b)` rows are skipped rather than reported (the
/// sweep intentionally probes the edge-budget boundary); generation is
/// otherwise infallible for `G2set`.
pub fn g2set(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let mut tables = Vec::new();
    let mut records = Vec::new();
    for &size in &profile.random_model_sizes() {
        for &degree in &profile.g2set_degrees() {
            let mut table = Table::new(
                format!("G2set({size}, pA, pB, b) with average degree {degree}"),
                quad_headers("b"),
            );
            for &b in &profile.g2set_widths() {
                let Ok(params) = g2set::G2setParams::with_average_degree(size, degree, b) else {
                    continue; // b alone exceeds this degree's edge budget
                };
                let reps = bisect_par::par_map(profile.replicates, |rep| {
                    let seed = derive_seed(
                        profile.seed,
                        &[20, size as u64, degree.to_bits(), b as u64, rep as u64],
                    );
                    let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
                    let g = g2set::sample(&mut gen_rng, &params);
                    suite.run(&g, profile.starts, seed ^ 0xABCD)
                });
                let mut avg = QuadAverage::default();
                for r in &reps {
                    avg.add(r);
                }
                let avg = avg.finish();
                records.extend(quad_records(
                    "g2set",
                    &format!("n={size} deg={degree} b={b}"),
                    &avg,
                ));
                table.push_row(quad_row(b.to_string(), &avg));
            }
            tables.push(table);
        }
    }
    Ok(ExperimentResult {
        id: "g2set".into(),
        title: "Appendix: G2set(2n, pA, pB, b) tables".into(),
        tables,
        records,
    })
}

/// The appendix `Gnp(2n, p)` tables: one sub-table per vertex count,
/// rows swept over expected average degree (each entry averaged over
/// `2·replicates + 1` graphs, the paper's 7).
///
/// # Errors
///
/// Returns [`BenchError::Gen`] if a profile degree is infeasible for a
/// profile size.
pub fn gnp(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let mut tables = Vec::new();
    let mut records = Vec::new();
    for &size in &profile.random_model_sizes() {
        let mut table = Table::new(format!("Gnp({size}, p)"), quad_headers("deg"));
        for &degree in &profile.gnp_degrees() {
            let params = gnp::GnpParams::with_average_degree(size, degree)?;
            let reps = bisect_par::par_map(profile.gnp_replicates(), |rep| {
                let seed = derive_seed(
                    profile.seed,
                    &[30, size as u64, degree.to_bits(), rep as u64],
                );
                let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
                let g = gnp::sample(&mut gen_rng, &params);
                suite.run(&g, profile.starts, seed ^ 0xABCD)
            });
            let mut avg = QuadAverage::default();
            for r in &reps {
                avg.add(r);
            }
            let avg = avg.finish();
            records.extend(quad_records("gnp", &format!("n={size} deg={degree}"), &avg));
            table.push_row(quad_row(format!("{degree}"), &avg));
        }
        tables.push(table);
    }
    Ok(ExperimentResult {
        id: "gnp".into(),
        title: "Appendix: Gnp(2n, p) tables".into(),
        tables,
        records,
    })
}

/// The appendix `Gbreg(2n, b, d)` tables: one sub-table per (vertex
/// count, degree ∈ {3, 4}), rows swept over the planted width `b`
/// (averaged over `replicates` graphs, the paper's 3). The planted
/// width is adjusted by one when parity demands it (`n·d − b` must be
/// even).
///
/// # Errors
///
/// Returns [`BenchError::Gen`] if a profile width is infeasible or the
/// randomized regular-graph construction exhausts its restarts.
pub fn gbreg(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let mut tables = Vec::new();
    let mut records = Vec::new();
    for &size in &profile.random_model_sizes() {
        for d in [3usize, 4] {
            let mut table = Table::new(format!("Gbreg({size}, b, {d})"), quad_headers("b"));
            for &b0 in &profile.gbreg_widths() {
                let b = feasible_width(size / 2, d, b0);
                let params = gbreg::GbregParams::new(size, b, d)?;
                let reps = bisect_par::par_map(profile.replicates, |rep| {
                    let seed = derive_seed(
                        profile.seed,
                        &[40, size as u64, d as u64, b as u64, rep as u64],
                    );
                    let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
                    let g = gbreg::sample(&mut gen_rng, &params)?;
                    Ok(suite.run(&g, profile.starts, seed ^ 0xABCD))
                });
                let mut avg = QuadAverage::default();
                for r in reps {
                    let r: Result<_, bisect_gen::GenError> = r;
                    avg.add(&r?);
                }
                let avg = avg.finish();
                records.extend(quad_records(
                    "gbreg",
                    &format!("n={size} d={d} b={b}"),
                    &avg,
                ));
                table.push_row(quad_row(b.to_string(), &avg));
            }
            tables.push(table);
        }
    }
    Ok(ExperimentResult {
        id: "gbreg".into(),
        title: "Appendix: Gbreg(2n, b, d) tables".into(),
        tables,
        records,
    })
}

/// Adjusts a requested planted width to the parity `n·d − b ≡ 0 (mod
/// 2)` requires, bumping by one when needed.
pub(crate) fn feasible_width(n_half: usize, d: usize, b: usize) -> usize {
    if (n_half * d).wrapping_sub(b).is_multiple_of(2) {
        b
    } else {
        b + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_width_parity() {
        // n·d even: b unchanged.
        assert_eq!(feasible_width(500, 4, 8), 8);
        // n·d odd: even b bumps to odd.
        assert_eq!(feasible_width(251, 3, 8), 9);
        assert_eq!(feasible_width(251, 3, 9), 9);
    }

    #[test]
    fn gbreg_tables_cover_sizes_and_degrees() {
        let profile = Profile::smoke();
        let result = gbreg(&profile).unwrap();
        // one size × degrees {3,4}
        assert_eq!(result.tables.len(), 2);
        for t in &result.tables {
            assert_eq!(t.rows().len(), profile.gbreg_widths().len());
        }
    }

    #[test]
    fn gnp_tables_have_degree_rows() {
        let profile = Profile::smoke();
        let result = gnp(&profile).unwrap();
        assert_eq!(result.tables.len(), 1);
        assert_eq!(result.tables[0].rows().len(), profile.gnp_degrees().len());
    }

    #[test]
    fn g2set_tables_per_degree() {
        let profile = Profile::smoke();
        let result = g2set(&profile).unwrap();
        assert_eq!(result.tables.len(), profile.g2set_degrees().len());
    }
}
