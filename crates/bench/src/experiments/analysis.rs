//! Analysis experiments extending the paper's §IV/§VI prose into
//! tables:
//!
//! * [`models`] quantifies the two model critiques of §IV — `Gnp`'s
//!   minimum cut is close to a random cut (so the model cannot
//!   separate good heuristics from mediocre ones), and `G2set`'s
//!   planted bound is loose at small average degree (heuristics beat
//!   `bis`).
//! * [`klpasses`] traces KL's cut pass by pass on a ladder graph,
//!   substantiating the ladder finding of EXPERIMENTS.md: the 1989
//!   "KL fails badly on ladders" behavior is a *pass-budget* artifact;
//!   the fixpoint run converges to the optimum.

use bisect_core::bisector::best_of;
use bisect_core::bisector::RandomBisector;
use bisect_core::kl::KernighanLin;
use bisect_core::seed;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{g2set, gnp, special};
use rand::SeedableRng;

use super::{derive_seed, ExperimentResult};
use crate::error::BenchError;
use crate::profile::Profile;
use crate::runner::Suite;
use crate::table::Table;

/// Model diagnostics: random-cut vs best-found cut per model.
///
/// # Errors
///
/// Returns [`BenchError::Gen`] if a profile degree is infeasible for
/// the profile size.
pub fn models(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let suite = Suite::for_profile(profile);
    let size = *profile
        .random_model_sizes()
        .last()
        .expect("profile has sizes");

    // Gnp: best heuristic cut as a fraction of a random cut.
    let mut gnp_table = Table::new(
        format!("Gnp({size}, p): minimum cut is close to a random cut (§IV)"),
        ["deg", "random cut", "best found", "found/random"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for &degree in &profile.gnp_degrees() {
        let params = gnp::GnpParams::with_average_degree(size, degree)?;
        let seed = derive_seed(profile.seed, &[70, degree.to_bits()]);
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let g = gnp::sample(&mut rng, &params);
        let random = best_of(&RandomBisector::new(), &g, profile.starts, &mut rng).cut();
        let (_, _, kl, ckl) = suite.run(&g, profile.starts, seed ^ 0xABCD);
        let best = kl.cut.min(ckl.cut);
        let ratio = if random == 0 {
            1.0
        } else {
            best as f64 / random as f64
        };
        gnp_table.push_row(vec![
            format!("{degree}"),
            random.to_string(),
            best.to_string(),
            format!("{ratio:.2}"),
        ]);
    }

    // G2set: how often the found cut beats the planted bound at small
    // degree (the bound is not the true width).
    let mut g2set_table = Table::new(
        format!("G2set({size}, pA, pB, b): planted bound vs found cut (§IV)"),
        ["deg", "b", "best found", "beats planted bound"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    let b = *profile.g2set_widths().last().expect("profile has widths");
    for &degree in &profile.g2set_degrees() {
        let Ok(params) = g2set::G2setParams::with_average_degree(size, degree, b) else {
            continue;
        };
        let seed = derive_seed(profile.seed, &[71, degree.to_bits()]);
        let mut rng = LaggedFibonacci::seed_from_u64(seed);
        let g = g2set::sample(&mut rng, &params);
        let (_, _, kl, ckl) = suite.run(&g, profile.starts, seed ^ 0xABCD);
        let best = kl.cut.min(ckl.cut);
        g2set_table.push_row(vec![
            format!("{degree}"),
            b.to_string(),
            best.to_string(),
            if best < b as u64 { "yes" } else { "no" }.into(),
        ]);
    }

    Ok(ExperimentResult {
        id: "models".into(),
        title: "Model diagnostics: why the paper introduced Gbreg".into(),
        tables: vec![gnp_table, g2set_table],
        records: vec![],
    })
}

/// KL cut after each pass on a ladder graph, for increasing pass
/// budgets.
///
/// # Errors
///
/// Currently infallible; the `Result` keeps the signature uniform.
pub fn klpasses(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    let rungs = *profile
        .ladder_rungs()
        .last()
        .expect("profile has ladder sizes");
    let g = special::ladder(rungs);
    let kl = KernighanLin::new();
    let seed = derive_seed(profile.seed, &[72]);
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    let mut p = seed::random_balanced(&g, &mut rng);

    let mut table = Table::new(
        format!("KL cut per pass on the 2x{rungs} ladder (optimal cut: 2)"),
        ["pass", "cut", "improvement"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    table.push_row(vec!["start".into(), p.cut().to_string(), "-".into()]);
    for pass in 1..=64 {
        let improvement = kl.pass(&g, &mut p);
        table.push_row(vec![
            pass.to_string(),
            p.cut().to_string(),
            improvement.to_string(),
        ]);
        if improvement == 0 {
            break;
        }
    }
    Ok(ExperimentResult {
        id: "klpasses".into(),
        title: "KL pass-by-pass convergence on a ladder (the 1989 failure is a pass budget)".into(),
        tables: vec![table],
        records: vec![],
    })
}

/// Hypergraph extension: native net-cut FM (plain and compacted) vs
/// graph algorithms on the clique expansion, all scored by nets cut —
/// the objective of the paper's VLSI motivation.
///
/// # Errors
///
/// Currently infallible (the synthesized netlist is valid by
/// construction); the `Result` keeps the signature uniform.
pub fn netlist(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    use bisect_core::netlist::{
        CompactedNetlistFm, MultilevelNetlistFm, NetlistBisection, NetlistFm,
    };
    use bisect_graph::hypergraph::{Netlist, NetlistBuilder};
    use rand::seq::SliceRandom;
    use rand::Rng;
    use std::time::Instant;

    fn synthesize(
        rng: &mut dyn rand::RngCore,
        blocks: usize,
        cells: usize,
        nets_per_block: usize,
    ) -> Netlist {
        let mut b = NetlistBuilder::new(blocks * cells);
        for block in 0..blocks {
            let base = (block * cells) as u32;
            for _ in 0..nets_per_block {
                let size = rng.gen_range(3..=6usize);
                let mut pins: Vec<u32> = (base..base + cells as u32).collect();
                pins.shuffle(rng);
                b.add_net(&pins[..size]).expect("pins valid");
            }
        }
        for block in 0..blocks.saturating_sub(1) {
            for _ in 0..3 {
                let size = rng.gen_range(3..=4usize);
                let mut pins = Vec::with_capacity(size);
                for _ in 0..size {
                    let which = block + rng.gen_range(0..2usize);
                    pins.push((which * cells + rng.gen_range(0..cells)) as u32);
                }
                b.add_net(&pins).expect("pins valid");
            }
        }
        b.build()
    }

    let suite = Suite::for_profile(profile);
    let (blocks, cells) = match profile.scale {
        crate::profile::Scale::Smoke => (4, 12),
        crate::profile::Scale::Paper => (16, 80),
        // The huge scales keep the quick-sized analysis experiments.
        _ => (8, 40),
    };
    let seed = derive_seed(profile.seed, &[73]);
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    let nl = synthesize(&mut rng, blocks, cells, cells * 3 / 2);
    let clique = nl.to_clique_graph();

    let mut table = Table::new(
        format!(
            "Netlist bisection, {} cells / {} nets (avg net size {:.1}), scored in nets cut",
            nl.num_cells(),
            nl.num_nets(),
            nl.average_net_size()
        ),
        ["algorithm", "nets cut", "time"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );

    // Native hypergraph FM and compacted FM (best of starts).
    let fm = NetlistFm::new();
    let cfm = CompactedNetlistFm::new();
    let t = Instant::now();
    let native = (0..profile.starts)
        .map(|_| fm.bisect(&nl, &mut rng))
        .min_by_key(NetlistBisection::cut)
        .expect("starts >= 1");
    table.push_row(vec![
        "hypergraph FM".into(),
        native.cut().to_string(),
        crate::table::fmt_duration(t.elapsed()),
    ]);
    let t = Instant::now();
    let compacted = (0..profile.starts)
        .map(|_| cfm.bisect(&nl, &mut rng))
        .min_by_key(NetlistBisection::cut)
        .expect("starts >= 1");
    table.push_row(vec![
        "hypergraph CFM".into(),
        compacted.cut().to_string(),
        crate::table::fmt_duration(t.elapsed()),
    ]);
    let mlfm = MultilevelNetlistFm::new();
    let t = Instant::now();
    let multilevel = (0..profile.starts)
        .map(|_| mlfm.bisect(&nl, &mut rng))
        .min_by_key(NetlistBisection::cut)
        .expect("starts >= 1");
    table.push_row(vec![
        "hypergraph ML-FM".into(),
        multilevel.cut().to_string(),
        crate::table::fmt_duration(t.elapsed()),
    ]);

    // Clique expansion + graph algorithms, rescored in nets.
    for (name, algo) in [
        (
            "clique KL",
            &suite.kl as &dyn bisect_core::bisector::Bisector,
        ),
        ("clique CKL", &suite.ckl),
    ] {
        let t = Instant::now();
        let p = best_of(algo, &clique, profile.starts, &mut rng);
        let elapsed = t.elapsed();
        let rescored =
            NetlistBisection::from_sides(&nl, p.sides().to_vec()).expect("same cell count");
        table.push_row(vec![
            name.into(),
            rescored.cut().to_string(),
            crate::table::fmt_duration(elapsed),
        ]);
    }

    Ok(ExperimentResult {
        id: "netlist".into(),
        title: "Hypergraph extension: native net-cut FM vs the clique approximation".into(),
        tables: vec![table],
        records: vec![],
    })
}

/// SA schedule sweep: the paper's §VII lament that "one may have to
/// spend a great deal of computation time to find the correct setting
/// of the parameters" rendered as a table — cut quality, run time, and
/// run statistics across (sizefactor, cooling) settings on a sparse
/// `Gbreg` instance.
///
/// # Errors
///
/// Returns [`BenchError::Gen`] if the `Gbreg` parameters are infeasible
/// or the randomized construction exhausts its restarts.
pub fn satune(profile: &Profile) -> Result<ExperimentResult, BenchError> {
    use bisect_core::sa::{Schedule, SimulatedAnnealing};
    use std::time::Instant;

    let size = *profile
        .random_model_sizes()
        .first()
        .expect("profile has sizes");
    let b = super::random::feasible_width(size / 2, 3, 8);
    let params = bisect_gen::gbreg::GbregParams::new(size, b, 3)?;
    let seed = derive_seed(profile.seed, &[74]);
    let mut gen_rng = LaggedFibonacci::seed_from_u64(seed);
    let g = bisect_gen::gbreg::sample(&mut gen_rng, &params)?;

    let mut table = Table::new(
        format!("SA schedule sweep on Gbreg({size}, {b}, 3): quality/time tradeoff (§VII)"),
        ["sizefactor", "cooling", "cut", "temps", "accept%", "time"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for &sizefactor in &[1usize, 4, 8, 16] {
        for &cooling in &[0.8f64, 0.9, 0.95] {
            let sa = SimulatedAnnealing::new().with_schedule(Schedule {
                sizefactor,
                cooling,
                ..Schedule::default()
            });
            let mut rng = LaggedFibonacci::seed_from_u64(seed ^ 0xFEED);
            let init = bisect_core::seed::random_balanced(&g, &mut rng);
            let t = Instant::now();
            let (p, stats) = sa.refine_with_stats(&g, init, &mut rng);
            table.push_row(vec![
                sizefactor.to_string(),
                format!("{cooling}"),
                p.cut().to_string(),
                stats.temperatures.to_string(),
                format!("{:.0}%", stats.acceptance_ratio() * 100.0),
                crate::table::fmt_duration(t.elapsed()),
            ]);
        }
    }
    Ok(ExperimentResult {
        id: "satune".into(),
        title: "SA schedule tuning sweep (the §VII 'fine tuning' cost)".into(),
        tables: vec![table],
        records: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satune_covers_the_grid() {
        let result = satune(&Profile::smoke()).unwrap();
        assert_eq!(result.tables[0].rows().len(), 12);
    }

    #[test]
    fn netlist_experiment_has_five_rows() {
        let result = netlist(&Profile::smoke()).unwrap();
        assert_eq!(result.tables[0].rows().len(), 5);
    }

    #[test]
    fn models_tables_have_rows() {
        let result = models(&Profile::smoke()).unwrap();
        assert_eq!(result.tables.len(), 2);
        assert!(!result.tables[0].rows().is_empty());
        assert!(!result.tables[1].rows().is_empty());
    }

    #[test]
    fn klpasses_monotone_and_terminates() {
        let result = klpasses(&Profile::smoke()).unwrap();
        let rows = result.tables[0].rows();
        assert!(rows.len() >= 2);
        let cuts: Vec<u64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            cuts.windows(2).all(|w| w[1] <= w[0]),
            "cuts must be non-increasing: {cuts:?}"
        );
        // Last pass improved by 0 (fixpoint) unless the cap was hit.
        assert_eq!(rows.last().unwrap()[2], "0");
    }
}
