//! Plain-text and CSV table rendering in the paper's layout.

use std::fmt;
use std::time::Duration;

/// A rendered experiment table.
///
/// # Example
///
/// ```
/// use bisect_bench::Table;
///
/// let mut t = Table::new("demo", vec!["x".into(), "y".into()]);
/// t.push_row(vec!["1".into(), "2".into()]);
/// let shown = t.to_string();
/// assert!(shown.contains("demo"));
/// assert!(shown.contains("| 1 | 2 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Table {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The body rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Renders as CSV (header row first, comma-separated, quotes around
    /// cells containing commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let hline = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{:-<1$}+", "", w + 2)?;
            }
            writeln!(f)
        };
        hline(f)?;
        write!(f, "|")?;
        for (header, width) in self.headers.iter().zip(&widths).take(cols) {
            write!(f, " {header:>width$} |")?;
        }
        writeln!(f)?;
        hline(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (i, cell) in row.iter().enumerate() {
                write!(f, " {:>1$} |", cell, widths[i])?;
            }
            writeln!(f)?;
        }
        hline(f)
    }
}

/// Formats a duration compactly (`1.23s`, `45.6ms`, `789µs`).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

/// Formats a mean cut: integer when whole, one decimal otherwise.
pub fn fmt_cut(cut: f64) -> String {
    if (cut - cut.round()).abs() < 1e-9 {
        format!("{}", cut.round() as i64)
    } else {
        format!("{cut:.1}")
    }
}

/// Formats a percentage with sign.
pub fn fmt_percent(p: f64) -> String {
    format!("{p:+.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("T", vec!["col".into(), "x".into()]);
        t.push_row(vec!["1".into(), "222222".into()]);
        t.push_row(vec!["33".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("|   1 | 222222 |"), "{s}");
        assert!(s.contains("|  33 |      4 |"), "{s}");
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn row_length_checked() {
        let mut t = Table::new("T", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("T", vec!["a".into()]);
        t.push_row(vec!["x,y".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a\n\"x,y\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(45)), "45.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(789)), "789µs");
    }

    #[test]
    fn cut_formats() {
        assert_eq!(fmt_cut(4.0), "4");
        assert_eq!(fmt_cut(4.33), "4.3");
    }

    #[test]
    fn percent_formats() {
        assert_eq!(fmt_percent(90.4), "+90%");
        assert_eq!(fmt_percent(-12.0), "-12%");
    }

    #[test]
    fn accessors() {
        let t = Table::new("T", vec!["a".into()]);
        assert_eq!(t.title(), "T");
        assert_eq!(t.headers(), &["a".to_string()]);
        assert!(t.rows().is_empty());
    }
}
