//! Run protocol: best-of-k starts with total timing, and the standard
//! four-algorithm suite (SA, CSA, KL, CKL) of the paper's tables.

use std::time::{Duration, Instant};

use bisect_core::bisector::Bisector;
use bisect_core::compaction::Compacted;
use bisect_core::kl::KernighanLin;
use bisect_core::sa::{Schedule, SimulatedAnnealing};
use bisect_gen::rng::LaggedFibonacci;
use bisect_graph::Graph;
use rand::SeedableRng;

use crate::profile::{Profile, Scale};

/// Outcome of running one algorithm on one graph: best cut over the
/// starts and total elapsed time (the paper's protocol: "all timing
/// results will be the total time it took the procedure to complete
/// both starting configurations").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgoResult {
    /// Algorithm name (e.g. `"CKL"`).
    pub name: String,
    /// Best cut over the starts.
    pub cut: u64,
    /// Total wall-clock time across the starts.
    pub elapsed: Duration,
}

/// Runs `algo` from `starts` random starts; returns best cut and total
/// time. Deterministic given `seed` (randomness comes from the
/// lagged-Fibonacci generator the paper used).
pub fn run_best_of(algo: &dyn Bisector, g: &Graph, starts: usize, seed: u64) -> AlgoResult {
    let mut rng = LaggedFibonacci::seed_from_u64(seed);
    let begin = Instant::now();
    let mut best: Option<u64> = None;
    for _ in 0..starts.max(1) {
        let p = algo.bisect(g, &mut rng);
        debug_assert!(p.is_balanced(g));
        let cut = p.cut();
        if best.is_none_or(|b| cut < b) {
            best = Some(cut);
        }
    }
    AlgoResult {
        name: algo.name(),
        cut: best.expect("at least one start"),
        elapsed: begin.elapsed(),
    }
}

/// The four algorithms every table compares, constructed to match the
/// profile (the paper profile uses a longer annealing schedule).
pub struct Suite {
    /// Simulated annealing (Figure 1).
    pub sa: SimulatedAnnealing,
    /// Compacted simulated annealing (§V).
    pub csa: Compacted<SimulatedAnnealing>,
    /// Kernighan-Lin (Figure 2).
    pub kl: KernighanLin,
    /// Compacted Kernighan-Lin (§V).
    pub ckl: Compacted<KernighanLin>,
}

impl Suite {
    /// Builds the suite for a profile.
    pub fn for_profile(profile: &Profile) -> Suite {
        let sa = match profile.scale {
            Scale::Smoke | Scale::Quick => SimulatedAnnealing::new().with_schedule(Schedule {
                sizefactor: 4,
                cooling: 0.9,
                max_temperatures: 150,
                ..Schedule::default()
            }),
            Scale::Paper => SimulatedAnnealing::new(),
        };
        Suite {
            sa: sa.clone(),
            csa: Compacted::new(sa),
            kl: KernighanLin::new(),
            ckl: Compacted::new(KernighanLin::new()),
        }
    }

    /// Runs all four algorithms on `g`; returns `(sa, csa, kl, ckl)`.
    /// Each algorithm gets its own deterministic seed stream derived
    /// from `seed`.
    pub fn run(
        &self,
        g: &Graph,
        starts: usize,
        seed: u64,
    ) -> (AlgoResult, AlgoResult, AlgoResult, AlgoResult) {
        (
            run_best_of(&self.sa, g, starts, seed ^ 0x5a5a_0001),
            run_best_of(&self.csa, g, starts, seed ^ 0x5a5a_0002),
            run_best_of(&self.kl, g, starts, seed ^ 0x5a5a_0003),
            run_best_of(&self.ckl, g, starts, seed ^ 0x5a5a_0004),
        )
    }
}

/// Averages of the four-algorithm results over several graphs of one
/// parameter setting (the paper averages 3 `Gbreg` graphs per setting,
/// 7 for `Gnp`).
#[derive(Debug, Clone, Default)]
pub struct QuadAverage {
    /// Mean best cut per algorithm, in suite order (SA, CSA, KL, CKL).
    pub cuts: [f64; 4],
    /// Mean total time per algorithm.
    pub times: [Duration; 4],
    /// Number of graphs averaged.
    pub count: usize,
}

impl QuadAverage {
    /// Adds one graph's results.
    pub fn add(&mut self, results: &(AlgoResult, AlgoResult, AlgoResult, AlgoResult)) {
        let list = [&results.0, &results.1, &results.2, &results.3];
        for (i, r) in list.iter().enumerate() {
            self.cuts[i] += r.cut as f64;
            self.times[i] += r.elapsed;
        }
        self.count += 1;
    }

    /// Finalizes the means.
    ///
    /// # Panics
    ///
    /// Panics if no results were added.
    pub fn finish(mut self) -> QuadAverage {
        assert!(self.count > 0, "no results to average");
        for c in &mut self.cuts {
            *c /= self.count as f64;
        }
        for t in &mut self.times {
            *t /= self.count as u32;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_core::bisector::RandomBisector;
    use bisect_gen::special;

    #[test]
    fn run_best_of_is_deterministic_in_cut() {
        let g = special::grid(6, 6);
        let a = run_best_of(&RandomBisector::new(), &g, 3, 42);
        let b = run_best_of(&RandomBisector::new(), &g, 3, 42);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.name, "Random");
    }

    #[test]
    fn more_starts_never_worse() {
        let g = special::cycle(30);
        let one = run_best_of(&RandomBisector::new(), &g, 1, 7);
        let many = run_best_of(&RandomBisector::new(), &g, 20, 7);
        assert!(many.cut <= one.cut);
    }

    #[test]
    fn suite_runs_all_four() {
        let g = special::grid(6, 6);
        let suite = Suite::for_profile(&Profile::quick());
        let (sa, csa, kl, ckl) = suite.run(&g, 1, 3);
        assert_eq!(sa.name, "SA");
        assert_eq!(csa.name, "CSA");
        assert_eq!(kl.name, "KL");
        assert_eq!(ckl.name, "CKL");
        for r in [&sa, &csa, &kl, &ckl] {
            assert!(r.cut <= 36, "{} cut {}", r.name, r.cut);
        }
    }

    #[test]
    fn quad_average_means() {
        let mk = |cut| AlgoResult {
            name: "X".into(),
            cut,
            elapsed: Duration::from_millis(10),
        };
        let mut avg = QuadAverage::default();
        avg.add(&(mk(2), mk(4), mk(6), mk(8)));
        avg.add(&(mk(4), mk(8), mk(10), mk(12)));
        let avg = avg.finish();
        assert_eq!(avg.cuts, [3.0, 6.0, 8.0, 10.0]);
        assert_eq!(avg.times[0], Duration::from_millis(10));
        assert_eq!(avg.count, 2);
    }

    #[test]
    #[should_panic(expected = "no results")]
    fn empty_average_panics() {
        let _ = QuadAverage::default().finish();
    }
}
