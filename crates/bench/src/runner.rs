//! Run protocol: best-of-k starts with total timing, and the standard
//! four-algorithm suite (SA, CSA, KL, CKL) of the paper's tables.
//!
//! Trials fan out over threads ([`bisect_par::par_map`]) while staying
//! **bit-identical to the serial run at any thread count**: each trial
//! draws its randomness from its own rng, seeded from the trial index
//! via [`SeedSequence`], and the winner is the lowest-indexed trial
//! with the minimal cut — neither depends on scheduling order. Reported
//! times are the *sum* of per-trial wall times, preserving the paper's
//! "total time across both starting configurations" semantics
//! independent of the thread count.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use bisect_core::bisector::Bisector;
use bisect_core::pipeline::Pipeline;
use bisect_core::sa::{Schedule, SimulatedAnnealing};
use bisect_core::workspace::Workspace;
use bisect_gen::rng::SeedSequence;
use bisect_graph::Graph;

use crate::profile::{Profile, Scale};

thread_local! {
    /// One warm scratch workspace per worker thread, reused by every
    /// trial that thread executes.
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Outcome of running one algorithm on one graph: best cut over the
/// starts and total elapsed time (the paper's protocol: "all timing
/// results will be the total time it took the procedure to complete
/// both starting configurations").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgoResult {
    /// Algorithm name (e.g. `"CKL"`).
    pub name: String,
    /// Best cut over the starts.
    pub cut: u64,
    /// Total wall-clock time across the starts (summed per-trial, so
    /// the value is comparable across thread counts).
    pub elapsed: Duration,
    /// Total work count across the starts: productive passes for
    /// KL/FM, temperature steps for SA, coarse + fine stages summed for
    /// compacted algorithms.
    pub passes: u64,
    /// Total move evaluations across the starts: swap proposals for
    /// the SA family, candidate-pair gain evaluations for the KL
    /// family.
    pub proposals: u64,
}

/// Runs `algo` from `starts` random starts; returns best cut and total
/// time. Deterministic given `seed` — and identical at every thread
/// count, because trial `i` always uses the rng
/// `SeedSequence::new(seed).rng(i)`.
pub fn run_best_of<B: Bisector + Sync + ?Sized>(
    algo: &B,
    g: &Graph,
    starts: usize,
    seed: u64,
) -> AlgoResult {
    run_best_of_threads(algo, g, starts, seed, bisect_par::num_threads())
}

/// As [`run_best_of`] with an explicit thread count (used by the
/// determinism regression tests to pin both sides of the comparison).
pub fn run_best_of_threads<B: Bisector + Sync + ?Sized>(
    algo: &B,
    g: &Graph,
    starts: usize,
    seed: u64,
    threads: usize,
) -> AlgoResult {
    run_best_of_sides(algo, g, starts, seed, threads).0
}

/// As [`run_best_of_threads`], additionally returning the winning
/// bisection's side vector (used by the determinism regression tests to
/// compare the full bisection, not just its cut).
pub fn run_best_of_sides<B: Bisector + Sync + ?Sized>(
    algo: &B,
    g: &Graph,
    starts: usize,
    seed: u64,
    threads: usize,
) -> (AlgoResult, Vec<bool>) {
    let starts = starts.max(1);
    let seq = SeedSequence::new(seed);
    let trials = bisect_par::par_map_with(threads, starts, |i| {
        WORKSPACE.with(|ws| {
            let mut ws = ws.borrow_mut();
            let mut rng = seq.rng(i as u64);
            // Drain any count a previous caller left behind, so the
            // post-trial take is exactly this trial's proposals.
            let _ = ws.take_proposals();
            let begin = Instant::now();
            let (p, passes) = algo.bisect_counted(g, &mut rng, &mut ws);
            let elapsed = begin.elapsed();
            let proposals = ws.take_proposals();
            debug_assert!(p.is_balanced(g));
            (p, passes, elapsed, proposals)
        })
    });
    // Strict `<` over the index-ordered trials: the winner is the
    // lowest-indexed minimal cut regardless of thread count.
    let mut best: Option<usize> = None;
    let mut elapsed = Duration::ZERO;
    let mut total_passes = 0u64;
    let mut total_proposals = 0u64;
    for (i, (p, passes, trial_time, proposals)) in trials.iter().enumerate() {
        elapsed += *trial_time;
        total_passes += passes;
        total_proposals += proposals;
        if best.is_none_or(|b| p.cut() < trials[b].0.cut()) {
            best = Some(i);
        }
    }
    let winner = &trials[best.expect("at least one start")].0;
    (
        AlgoResult {
            name: algo.name(),
            cut: winner.cut(),
            elapsed,
            passes: total_passes,
            proposals: total_proposals,
        },
        winner.sides().to_vec(),
    )
}

/// The four algorithms every table compares, constructed to match the
/// profile (the paper profile uses a longer annealing schedule). Each
/// slot is a [`Pipeline`]: the bare heuristics are flat pipelines, the
/// compacted variants one-level pipelines.
pub struct Suite {
    /// Simulated annealing (Figure 1).
    pub sa: Pipeline,
    /// Compacted simulated annealing (§V).
    pub csa: Pipeline,
    /// Kernighan-Lin (Figure 2).
    pub kl: Pipeline,
    /// Compacted Kernighan-Lin (§V).
    pub ckl: Pipeline,
}

impl Suite {
    /// Builds the suite for a profile.
    pub fn for_profile(profile: &Profile) -> Suite {
        let sa = match profile.scale {
            // The huge scales keep the quick-sized paper grid, so they
            // share its shortened schedule.
            Scale::Smoke | Scale::Quick | Scale::Huge | Scale::HugeSmoke => {
                SimulatedAnnealing::new().with_schedule(Schedule {
                    sizefactor: 4,
                    cooling: 0.9,
                    max_temperatures: 150,
                    ..Schedule::default()
                })
            }
            Scale::Paper => SimulatedAnnealing::new(),
        };
        Suite {
            sa: Pipeline::flat(sa.clone()),
            csa: Pipeline::compacted(sa),
            kl: Pipeline::kl(),
            ckl: Pipeline::ckl(),
        }
    }

    /// Runs all four algorithms on `g` (in parallel when threads are
    /// available); returns `(sa, csa, kl, ckl)`. Each algorithm gets
    /// its own deterministic seed stream derived from `seed`, so the
    /// results do not depend on the thread count.
    pub fn run(
        &self,
        g: &Graph,
        starts: usize,
        seed: u64,
    ) -> (AlgoResult, AlgoResult, AlgoResult, AlgoResult) {
        let mut results = bisect_par::par_map(4, |i| match i {
            0 => run_best_of(&self.sa, g, starts, seed ^ 0x5a5a_0001),
            1 => run_best_of(&self.csa, g, starts, seed ^ 0x5a5a_0002),
            2 => run_best_of(&self.kl, g, starts, seed ^ 0x5a5a_0003),
            _ => run_best_of(&self.ckl, g, starts, seed ^ 0x5a5a_0004),
        });
        let ckl = results.pop().expect("four results");
        let kl = results.pop().expect("four results");
        let csa = results.pop().expect("four results");
        let sa = results.pop().expect("four results");
        (sa, csa, kl, ckl)
    }
}

/// Averages of the four-algorithm results over several graphs of one
/// parameter setting (the paper averages 3 `Gbreg` graphs per setting,
/// 7 for `Gnp`).
#[derive(Debug, Clone, Default)]
pub struct QuadAverage {
    /// Mean best cut per algorithm, in suite order (SA, CSA, KL, CKL).
    pub cuts: [f64; 4],
    /// Mean total time per algorithm.
    pub times: [Duration; 4],
    /// Mean total work count (passes / temperatures) per algorithm.
    pub passes: [f64; 4],
    /// Mean total move evaluations per algorithm (SA swap proposals /
    /// KL pair-gain evaluations).
    pub proposals: [f64; 4],
    /// Number of graphs averaged.
    pub count: usize,
}

impl QuadAverage {
    /// Adds one graph's results.
    pub fn add(&mut self, results: &(AlgoResult, AlgoResult, AlgoResult, AlgoResult)) {
        let list = [&results.0, &results.1, &results.2, &results.3];
        for (i, r) in list.iter().enumerate() {
            self.cuts[i] += r.cut as f64;
            self.times[i] += r.elapsed;
            self.passes[i] += r.passes as f64;
            self.proposals[i] += r.proposals as f64;
        }
        self.count += 1;
    }

    /// Finalizes the means.
    ///
    /// # Panics
    ///
    /// Panics if no results were added.
    pub fn finish(mut self) -> QuadAverage {
        assert!(self.count > 0, "no results to average");
        for c in &mut self.cuts {
            *c /= self.count as f64;
        }
        for t in &mut self.times {
            *t /= self.count as u32;
        }
        for p in &mut self.passes {
            *p /= self.count as f64;
        }
        for p in &mut self.proposals {
            *p /= self.count as f64;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_core::bisector::RandomBisector;
    use bisect_gen::special;

    #[test]
    fn run_best_of_is_deterministic_in_cut() {
        let g = special::grid(6, 6);
        let a = run_best_of(&RandomBisector::new(), &g, 3, 42);
        let b = run_best_of(&RandomBisector::new(), &g, 3, 42);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.name, "Random");
    }

    #[test]
    fn run_best_of_identical_across_thread_counts() {
        let g = special::grid(6, 6);
        let serial = run_best_of_sides(&RandomBisector::new(), &g, 8, 11, 1);
        for threads in [2, 4, 8] {
            let par = run_best_of_sides(&RandomBisector::new(), &g, 8, 11, threads);
            assert_eq!(par.0.cut, serial.0.cut, "threads {threads}");
            assert_eq!(par.1, serial.1, "threads {threads}");
        }
    }

    #[test]
    fn more_starts_never_worse() {
        let g = special::cycle(30);
        let one = run_best_of(&RandomBisector::new(), &g, 1, 7);
        let many = run_best_of(&RandomBisector::new(), &g, 20, 7);
        assert!(many.cut <= one.cut);
    }

    #[test]
    fn suite_runs_all_four() {
        let g = special::grid(6, 6);
        let suite = Suite::for_profile(&Profile::quick());
        let (sa, csa, kl, ckl) = suite.run(&g, 1, 3);
        assert_eq!(sa.name, "SA");
        assert_eq!(csa.name, "CSA");
        assert_eq!(kl.name, "KL");
        assert_eq!(ckl.name, "CKL");
        for r in [&sa, &csa, &kl, &ckl] {
            assert!(r.cut <= 36, "{} cut {}", r.name, r.cut);
        }
        // KL and CKL report productive passes; SA reports temperature
        // steps — all should have done some work on a nontrivial graph.
        assert!(sa.passes >= 1);
        assert!(kl.passes >= 1);
        // The SA family counts every swap proposal; the KL family
        // counts the candidate-pair gain evaluations of its selection
        // scans, so every algorithm reports real throughput.
        assert!(sa.proposals > 0);
        assert!(csa.proposals > 0);
        assert!(kl.proposals > 0);
        assert!(ckl.proposals > 0);
    }

    #[test]
    fn quad_average_means() {
        let mk = |cut| AlgoResult {
            name: "X".into(),
            cut,
            elapsed: Duration::from_millis(10),
            passes: 4,
            proposals: 100,
        };
        let mut avg = QuadAverage::default();
        avg.add(&(mk(2), mk(4), mk(6), mk(8)));
        avg.add(&(mk(4), mk(8), mk(10), mk(12)));
        let avg = avg.finish();
        assert_eq!(avg.cuts, [3.0, 6.0, 8.0, 10.0]);
        assert_eq!(avg.times[0], Duration::from_millis(10));
        assert_eq!(avg.passes, [4.0; 4]);
        assert_eq!(avg.proposals, [100.0; 4]);
        assert_eq!(avg.count, 2);
    }

    #[test]
    #[should_panic(expected = "no results")]
    fn empty_average_panics() {
        let _ = QuadAverage::default().finish();
    }
}
