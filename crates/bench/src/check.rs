//! Regression checking between two `BENCH_results.json` reports.
//!
//! The harness is deterministic: the same profile, seed, and thread
//! count reproduce every mean cut exactly. [`compare`] therefore
//! matches records by `(experiment, setting, algorithm)` and flags any
//! difference in `mean_cut` beyond the tolerance (default 0) as a
//! regression or an improvement; timing-bearing columns
//! (`total_time_s`, `proposals_per_sec`, and the machine-dependent
//! `proposals` total) are ignored, since wall time varies run to run.
//! The `repro_check` binary wraps this for CI.

use std::fmt;

use crate::error::BenchError;
use crate::json::{BenchRecord, BenchReport};

/// One cut difference between a current report and the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CutDelta {
    /// Experiment id of the record.
    pub experiment: String,
    /// Setting label of the record.
    pub setting: String,
    /// Algorithm column (`SA`, `CSA`, `KL`, `CKL`).
    pub algorithm: String,
    /// Mean cut in the baseline report.
    pub baseline: f64,
    /// Mean cut in the current report.
    pub current: f64,
}

impl fmt::Display for CutDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} {}: baseline {} -> current {}",
            self.experiment, self.setting, self.algorithm, self.baseline, self.current
        )
    }
}

/// Outcome of comparing a current report against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Records whose current mean cut is *worse* (higher) than the
    /// baseline by more than the tolerance.
    pub regressions: Vec<CutDelta>,
    /// Records whose current mean cut is *better* (lower) than the
    /// baseline by more than the tolerance — not a failure, but worth a
    /// baseline refresh.
    pub improvements: Vec<CutDelta>,
    /// `(experiment, setting, algorithm)` keys present in the baseline
    /// but absent from the current report.
    pub missing: Vec<String>,
    /// Number of baseline records matched (within tolerance or not).
    pub compared: usize,
}

impl Comparison {
    /// Whether the current report is acceptable: every baseline record
    /// is present and none got worse. Improvements do not fail.
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

fn key(r: &BenchRecord) -> (&str, &str, &str) {
    (&r.experiment, &r.setting, &r.algorithm)
}

/// One wall-time growth observation between two reports.
///
/// Produced by [`time_warnings`]; advisory only — timing depends on the
/// machine and its load, so these never gate CI the way cut deltas do.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeWarning {
    /// Experiment id of the record.
    pub experiment: String,
    /// Setting label of the record.
    pub setting: String,
    /// Algorithm column (`SA`, `CSA`, `KL`, `CKL`).
    pub algorithm: String,
    /// Wall time of the baseline record, in seconds.
    pub baseline_s: f64,
    /// Wall time of the current record, in seconds.
    pub current_s: f64,
}

impl fmt::Display for TimeWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = (self.current_s / self.baseline_s - 1.0) * 100.0;
        write!(
            f,
            "{}/{} {}: {:.3}s -> {:.3}s (+{:.0}%)",
            self.experiment, self.setting, self.algorithm, self.baseline_s, self.current_s, pct
        )
    }
}

/// Flags records whose `total_time_s` grew by more than `frac`
/// (e.g. `0.25` for 25%) relative to `baseline`.
///
/// Unlike [`compare`] this is purely advisory: wall time varies with
/// the machine, so the caller should print the warnings and move on
/// rather than fail. Records missing from either side, and baseline
/// records with non-positive time (legacy reports predating timing
/// columns parse as 0), are skipped silently.
pub fn time_warnings(current: &BenchReport, baseline: &BenchReport, frac: f64) -> Vec<TimeWarning> {
    let mut out = Vec::new();
    for b in &baseline.records {
        if b.total_time_s <= 0.0 {
            continue;
        }
        let Some(c) = current.records.iter().find(|c| key(c) == key(b)) else {
            continue;
        };
        if c.total_time_s > b.total_time_s * (1.0 + frac) {
            out.push(TimeWarning {
                experiment: b.experiment.clone(),
                setting: b.setting.clone(),
                algorithm: b.algorithm.clone(),
                baseline_s: b.total_time_s,
                current_s: c.total_time_s,
            });
        }
    }
    out
}

/// Advisory peak-RSS growth line for the trajectory's latest entry
/// against the previous one, or `None` when there is nothing to warn
/// about. Either entry recording `peak_rss_bytes: 0` means the run had
/// no measurement (no readable `/proc/self/status`), not a zero-byte
/// footprint, so the comparison is skipped rather than warning
/// spuriously about growth from nothing.
pub fn rss_warning(prev: &BenchReport, latest: &BenchReport, frac: f64) -> Option<String> {
    if prev.peak_rss_bytes == 0 || latest.peak_rss_bytes == 0 {
        return None;
    }
    let prev_b = prev.peak_rss_bytes as f64;
    let latest_b = latest.peak_rss_bytes as f64;
    if latest_b <= prev_b * (1.0 + frac) {
        return None;
    }
    const MIB: f64 = 1024.0 * 1024.0;
    Some(format!(
        "peak RSS grew {:.1} MiB -> {:.1} MiB (+{:.0}%) vs previous trajectory entry",
        prev_b / MIB,
        latest_b / MIB,
        (latest_b / prev_b - 1.0) * 100.0
    ))
}

/// Structurally validates the `placement` experiment's records in a
/// report: every setting must carry both the native (`NetFM-ML`) and
/// clique-expansion (`CliqueKL-ML`) rows, both with a positive HPWL,
/// and the native net cut must not exceed the clique one — the
/// experiment's acceptance invariant (optimizing the hypergraph
/// objective directly must not lose to the surrogate on it).
///
/// Returns one human-readable problem per violation; empty means the
/// records are well-formed. Reports without placement records pass
/// trivially, so the check is safe on every profile and baseline age.
pub fn validate_placement(report: &BenchReport) -> Vec<String> {
    let mut problems = Vec::new();
    let placements: Vec<&BenchRecord> = report
        .records
        .iter()
        .filter(|r| r.experiment == "placement")
        .collect();
    let mut settings: Vec<&str> = placements.iter().map(|r| r.setting.as_str()).collect();
    settings.dedup();
    for setting in settings {
        let find = |algo: &str| {
            placements
                .iter()
                .find(|r| r.setting == setting && r.algorithm == algo)
        };
        let (native, clique) = match (find("NetFM-ML"), find("CliqueKL-ML")) {
            (Some(n), Some(c)) => (n, c),
            (n, c) => {
                if n.is_none() {
                    problems.push(format!("placement/{setting}: missing NetFM-ML record"));
                }
                if c.is_none() {
                    problems.push(format!("placement/{setting}: missing CliqueKL-ML record"));
                }
                continue;
            }
        };
        for r in [native, clique] {
            if r.hpwl <= 0.0 {
                problems.push(format!(
                    "placement/{setting} {}: non-positive HPWL {}",
                    r.algorithm, r.hpwl
                ));
            }
        }
        if native.mean_cut > clique.mean_cut {
            problems.push(format!(
                "placement/{setting}: native net cut {} exceeds clique-expansion cut {}",
                native.mean_cut, clique.mean_cut
            ));
        }
    }
    problems
}

/// Compares `current` against `baseline` on mean cuts.
///
/// Records are matched by `(experiment, setting, algorithm)`; extra
/// records in `current` (new experiments) are ignored. `tolerance` is
/// an absolute cut allowance in either direction — 0 demands exact
/// reproduction, which deterministic same-profile runs provide.
///
/// # Errors
///
/// Returns [`BenchError::MalformedReport`] if the reports were run with
/// different profiles, so apples are never compared to oranges.
pub fn compare(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance: f64,
) -> Result<Comparison, BenchError> {
    if current.profile != baseline.profile {
        return Err(BenchError::MalformedReport(format!(
            "profile mismatch: current is `{}`, baseline is `{}`",
            current.profile, baseline.profile
        )));
    }
    if current.seed != baseline.seed || current.starts != baseline.starts {
        return Err(BenchError::MalformedReport(format!(
            "run-parameter mismatch: current seed={} starts={}, baseline seed={} starts={}",
            current.seed, current.starts, baseline.seed, baseline.starts
        )));
    }
    let mut out = Comparison::default();
    for b in &baseline.records {
        let Some(c) = current.records.iter().find(|c| key(c) == key(b)) else {
            out.missing
                .push(format!("{}/{} {}", b.experiment, b.setting, b.algorithm));
            continue;
        };
        out.compared += 1;
        let delta = CutDelta {
            experiment: b.experiment.clone(),
            setting: b.setting.clone(),
            algorithm: b.algorithm.clone(),
            baseline: b.mean_cut,
            current: c.mean_cut,
        };
        if c.mean_cut > b.mean_cut + tolerance {
            out.regressions.push(delta);
        } else if c.mean_cut < b.mean_cut - tolerance {
            out.improvements.push(delta);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(setting: &str, algorithm: &str, mean_cut: f64) -> BenchRecord {
        BenchRecord {
            experiment: "gbreg".into(),
            setting: setting.into(),
            algorithm: algorithm.into(),
            mean_cut,
            total_time_s: 0.1,
            mean_passes: 3.0,
            proposals: 0.0,
            proposals_per_sec: 0.0,
            refine_time_s: 0.0,
            hpwl: 0.0,
            graphs: 3,
        }
    }

    fn report(records: Vec<BenchRecord>) -> BenchReport {
        BenchReport {
            profile: "quick".into(),
            seed: 1989,
            starts: 2,
            replicates: 3,
            threads: 4,
            wall_time_s: 1.0,
            timestamp: 0,
            peak_rss_bytes: 0,
            records,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![record("500", "CKL", 16.0), record("500", "CSA", 18.0)]);
        let c = compare(&r, &r, 0.0).unwrap();
        assert!(c.is_ok());
        assert_eq!(c.compared, 2);
        assert!(c.improvements.is_empty());
    }

    #[test]
    fn rss_warning_skips_unmeasured_entries() {
        let mut prev = report(vec![]);
        let mut latest = report(vec![]);
        // The container recorded no measurement for the previous run:
        // growth "from zero" must not warn.
        prev.peak_rss_bytes = 0;
        latest.peak_rss_bytes = 512 << 20;
        assert_eq!(rss_warning(&prev, &latest, 0.25), None);
        // Nor the other way around.
        prev.peak_rss_bytes = 512 << 20;
        latest.peak_rss_bytes = 0;
        assert_eq!(rss_warning(&prev, &latest, 0.25), None);
    }

    #[test]
    fn rss_warning_fires_only_beyond_the_fraction() {
        let mut prev = report(vec![]);
        let mut latest = report(vec![]);
        prev.peak_rss_bytes = 100 << 20;
        latest.peak_rss_bytes = 110 << 20;
        assert_eq!(rss_warning(&prev, &latest, 0.25), None);
        latest.peak_rss_bytes = 200 << 20;
        let w = rss_warning(&prev, &latest, 0.25).expect("2x growth warns");
        assert!(
            w.contains("100.0 MiB -> 200.0 MiB") && w.contains("+100%"),
            "{w}"
        );
    }

    #[test]
    fn worse_cut_is_a_regression_and_better_is_an_improvement() {
        let baseline = report(vec![record("500", "CKL", 16.0), record("500", "KL", 20.0)]);
        let current = report(vec![record("500", "CKL", 17.0), record("500", "KL", 19.0)]);
        let c = compare(&current, &baseline, 0.0).unwrap();
        assert!(!c.is_ok());
        assert_eq!(c.regressions.len(), 1);
        assert_eq!(c.regressions[0].algorithm, "CKL");
        assert_eq!(c.improvements.len(), 1);
        assert_eq!(c.improvements[0].algorithm, "KL");
        assert!(c.regressions[0].to_string().contains("16 -> current 17"));
    }

    #[test]
    fn timing_bearing_fields_do_not_affect_comparison() {
        // Same cuts, wildly different timing/throughput columns: the
        // checker must stay green — only `mean_cut` is compared.
        let baseline = report(vec![record("500", "SA", 16.0)]);
        let mut fast = record("500", "SA", 16.0);
        fast.total_time_s = 0.001;
        fast.proposals = 1.0e6;
        fast.proposals_per_sec = 1.0e9;
        let current = report(vec![fast]);
        let c = compare(&current, &baseline, 0.0).unwrap();
        assert!(c.is_ok());
        assert_eq!(c.compared, 1);
        assert!(c.improvements.is_empty());
    }

    #[test]
    fn tolerance_absorbs_small_drift() {
        let baseline = report(vec![record("500", "CKL", 16.0)]);
        let current = report(vec![record("500", "CKL", 16.5)]);
        assert!(!compare(&current, &baseline, 0.0).unwrap().is_ok());
        assert!(compare(&current, &baseline, 0.5).unwrap().is_ok());
    }

    #[test]
    fn missing_baseline_record_fails_but_extra_current_is_fine() {
        let baseline = report(vec![record("500", "CKL", 16.0)]);
        let current = report(vec![record("900", "CKL", 30.0)]);
        let c = compare(&current, &baseline, 0.0).unwrap();
        assert!(!c.is_ok());
        assert_eq!(c.missing, vec!["gbreg/500 CKL"]);

        let c = compare(
            &report(vec![record("500", "CKL", 16.0), record("900", "CKL", 30.0)]),
            &baseline,
            0.0,
        )
        .unwrap();
        assert!(c.is_ok());
        assert_eq!(c.compared, 1);
    }

    #[test]
    fn time_warnings_flag_only_growth_beyond_the_fraction() {
        let mut slow = record("500", "CKL", 16.0);
        slow.total_time_s = 0.2; // 2x the baseline 0.1
        let mut mild = record("500", "CSA", 18.0);
        mild.total_time_s = 0.11; // +10%, under the 25% bar
        let baseline = report(vec![record("500", "CKL", 16.0), record("500", "CSA", 18.0)]);
        let current = report(vec![slow, mild]);
        let w = time_warnings(&current, &baseline, 0.25);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].algorithm, "CKL");
        assert!(w[0].to_string().contains("+100%"), "got {}", w[0]);
    }

    #[test]
    fn time_warnings_skip_legacy_and_missing_records() {
        // Legacy baselines parse timing as 0; a zero baseline would make
        // any current time an infinite regression, so it is skipped.
        let mut legacy = record("500", "CKL", 16.0);
        legacy.total_time_s = 0.0;
        let baseline = report(vec![legacy, record("900", "CKL", 30.0)]);
        let current = report(vec![record("500", "CKL", 16.0)]);
        assert!(time_warnings(&current, &baseline, 0.25).is_empty());
    }

    fn placement_record(setting: &str, algorithm: &str, mean_cut: f64, hpwl: f64) -> BenchRecord {
        let mut r = record(setting, algorithm, mean_cut);
        r.experiment = "placement".into();
        r.hpwl = hpwl;
        r
    }

    #[test]
    fn placement_validation_passes_well_formed_records() {
        let r = report(vec![
            placement_record("i=0", "NetFM-ML", 40.0, 120.0),
            placement_record("i=0", "CliqueKL-ML", 45.0, 130.0),
            // Non-placement records are ignored entirely.
            record("500", "CKL", 16.0),
        ]);
        assert!(validate_placement(&r).is_empty());
        // Reports with no placement records at all also pass.
        assert!(validate_placement(&report(vec![record("500", "KL", 9.0)])).is_empty());
    }

    #[test]
    fn placement_validation_flags_inversion_missing_and_zero_hpwl() {
        let r = report(vec![
            // Native worse than clique: the acceptance inversion.
            placement_record("i=0", "NetFM-ML", 50.0, 120.0),
            placement_record("i=0", "CliqueKL-ML", 45.0, 0.0),
            // Clique row absent for this setting.
            placement_record("i=1", "NetFM-ML", 40.0, 120.0),
        ]);
        let problems = validate_placement(&r);
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems[0].contains("non-positive HPWL"));
        assert!(problems[1].contains("exceeds clique-expansion cut"));
        assert!(problems[2].contains("missing CliqueKL-ML"));
    }

    #[test]
    fn profile_or_seed_mismatch_is_an_error() {
        let baseline = report(vec![]);
        let mut other = report(vec![]);
        other.profile = "smoke".into();
        let err = compare(&other, &baseline, 0.0).unwrap_err();
        assert!(err.to_string().contains("profile mismatch"));

        let mut other = report(vec![]);
        other.seed = 7;
        let err = compare(&other, &baseline, 0.0).unwrap_err();
        assert!(err.to_string().contains("run-parameter mismatch"));
    }
}
