//! Minimal hand-rolled JSON emission *and parsing* for
//! `BENCH_results.json` — the machine-readable companion of the text
//! tables (the container has no serde; the subset needed here is a flat
//! record schema). [`BenchReport::to_json`] writes the report;
//! [`BenchReport::from_json`] reads one back (for the regression
//! checker, `repro_check`), via the small general-purpose [`parse`]
//! function.

use crate::error::BenchError;
use crate::runner::QuadAverage;

/// One `(experiment, setting, algorithm)` measurement: the unit of
/// `BENCH_results.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment id (e.g. `"gbreg"`).
    pub experiment: String,
    /// Row label within the experiment (e.g. `"n=1000 d=3 b=16"`).
    pub setting: String,
    /// Algorithm name (`"SA"`, `"CSA"`, `"KL"`, `"CKL"`).
    pub algorithm: String,
    /// Mean best cut over the averaged graphs.
    pub mean_cut: f64,
    /// Mean total wall time (summed across starts) in seconds.
    pub total_time_s: f64,
    /// Mean total work count across starts: productive passes for
    /// KL/FM, temperature steps for SA, both stages summed for C*.
    pub mean_passes: f64,
    /// Mean total move evaluations across starts: swap proposals for
    /// the SA family, candidate-pair gain evaluations for the KL
    /// family.
    pub proposals: f64,
    /// Proposal throughput: `proposals / total_time_s` (0 when either
    /// is zero). Timing-bearing — ignored by the regression checker.
    pub proposals_per_sec: f64,
    /// Wall time of the refinement phase alone in seconds (the `huge`
    /// experiment's initial-partition-through-final-polish window); 0
    /// for experiments that don't break out a refinement phase and in
    /// records written before the field existed.
    pub refine_time_s: f64,
    /// Half-perimeter wirelength of the `placement` experiment's k-way
    /// result (region-center bounding boxes, weighted by net weight); 0
    /// for experiments without a placement objective and in records
    /// written before the field existed.
    pub hpwl: f64,
    /// Number of graphs averaged into this record.
    pub graphs: usize,
}

/// Expands one averaged table row into its four per-algorithm records.
pub(crate) fn quad_records(experiment: &str, setting: &str, avg: &QuadAverage) -> Vec<BenchRecord> {
    const ALGOS: [&str; 4] = ["SA", "CSA", "KL", "CKL"];
    ALGOS
        .iter()
        .enumerate()
        .map(|(i, algo)| {
            let total_time_s = avg.times[i].as_secs_f64();
            let proposals = avg.proposals[i];
            let proposals_per_sec = if total_time_s > 0.0 {
                proposals / total_time_s
            } else {
                0.0
            };
            BenchRecord {
                experiment: experiment.to_string(),
                setting: setting.to_string(),
                algorithm: algo.to_string(),
                mean_cut: avg.cuts[i],
                total_time_s,
                mean_passes: avg.passes[i],
                proposals,
                proposals_per_sec,
                refine_time_s: 0.0,
                hpwl: 0.0,
                graphs: avg.count,
            }
        })
        .collect()
}

/// The full `BENCH_results.json` document: run configuration plus every
/// record of the experiments that ran.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Profile scale name (`"smoke"`, `"quick"`, `"paper"`).
    pub profile: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Starts per algorithm per graph.
    pub starts: usize,
    /// Replicates per random-model setting.
    pub replicates: usize,
    /// Worker threads used for the run.
    pub threads: usize,
    /// Total wall time of the whole run in seconds.
    pub wall_time_s: f64,
    /// Unix timestamp (seconds) of when the run finished; 0 in reports
    /// written before the trajectory format existed.
    pub timestamp: u64,
    /// Process peak RSS in bytes at the end of the run (`VmHWM`); 0
    /// when unavailable or in pre-trajectory reports.
    pub peak_rss_bytes: u64,
    /// The measurements.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"profile\": {},\n", escape(&self.profile)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"starts\": {},\n", self.starts));
        out.push_str(&format!("  \"replicates\": {},\n", self.replicates));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"wall_time_s\": {},\n",
            number(self.wall_time_s)
        ));
        out.push_str(&format!("  \"timestamp\": {},\n", self.timestamp));
        out.push_str(&format!("  \"peak_rss_bytes\": {},\n", self.peak_rss_bytes));
        out.push_str("  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"experiment\": {}, ", escape(&r.experiment)));
            out.push_str(&format!("\"setting\": {}, ", escape(&r.setting)));
            out.push_str(&format!("\"algorithm\": {}, ", escape(&r.algorithm)));
            out.push_str(&format!("\"mean_cut\": {}, ", number(r.mean_cut)));
            out.push_str(&format!("\"total_time_s\": {}, ", number(r.total_time_s)));
            out.push_str(&format!("\"mean_passes\": {}, ", number(r.mean_passes)));
            out.push_str(&format!("\"proposals\": {}, ", number(r.proposals)));
            out.push_str(&format!(
                "\"proposals_per_sec\": {}, ",
                number(r.proposals_per_sec)
            ));
            out.push_str(&format!("\"refine_time_s\": {}, ", number(r.refine_time_s)));
            out.push_str(&format!("\"hpwl\": {}, ", number(r.hpwl)));
            out.push_str(&format!("\"graphs\": {}", r.graphs));
            out.push('}');
        }
        if !self.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// A parsed JSON value (the subset `BENCH_results.json` uses; no
/// number-precision games — every number is an `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`BenchError::MalformedReport`] with the byte offset of the
/// first syntax error.
pub fn parse(input: &str) -> Result<JsonValue, BenchError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.error("trailing data after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn byte(&self, at: usize) -> Option<u8> {
        self.input.as_bytes().get(at).copied()
    }

    fn error(&self, message: &str) -> BenchError {
        BenchError::MalformedReport(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.byte(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), BenchError> {
        if self.byte(self.pos) == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, BenchError> {
        if self.input[self.pos..].starts_with(text) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, BenchError> {
        match self.byte(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, BenchError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.byte(self.pos) == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.byte(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, BenchError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.byte(self.pos) == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.byte(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, BenchError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.byte(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.byte(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates never appear in our label
                            // alphabet; map them to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let c = self.input[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, BenchError> {
        let start = self.pos;
        if self.byte(self.pos) == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.byte(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = &self.input[start..self.pos];
        text.parse()
            .map(JsonValue::Number)
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }
}

impl BenchReport {
    /// Parses a report previously written by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::MalformedReport`] for syntax errors or
    /// missing/mistyped fields.
    pub fn from_json(input: &str) -> Result<BenchReport, BenchError> {
        Self::from_value(&parse(input)?)
    }

    /// Builds a report from an already-parsed JSON object (one element
    /// of a trajectory, or a whole legacy single-report document).
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::MalformedReport`] for missing or mistyped
    /// fields.
    pub fn from_value(doc: &JsonValue) -> Result<BenchReport, BenchError> {
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| BenchError::MalformedReport(format!("missing field `{key}`")))
        };
        let num = |key: &str| {
            field(key)?.as_number().ok_or_else(|| {
                BenchError::MalformedReport(format!("field `{key}` is not a number"))
            })
        };
        let mut records = Vec::new();
        for (i, r) in field("records")?
            .as_array()
            .ok_or_else(|| BenchError::MalformedReport("`records` is not an array".into()))?
            .iter()
            .enumerate()
        {
            let rfield = |key: &str| {
                r.get(key).ok_or_else(|| {
                    BenchError::MalformedReport(format!("record {i} missing field `{key}`"))
                })
            };
            let rstr = |key: &str| {
                rfield(key)?.as_str().map(str::to_string).ok_or_else(|| {
                    BenchError::MalformedReport(format!("record {i} field `{key}` is not a string"))
                })
            };
            let rnum = |key: &str| {
                rfield(key)?.as_number().ok_or_else(|| {
                    BenchError::MalformedReport(format!("record {i} field `{key}` is not a number"))
                })
            };
            // Fields added after the schema first shipped parse
            // leniently (default 0), so reports written by older
            // binaries — like a committed baseline — still load.
            let ropt = |key: &str| match r.get(key) {
                Some(v) => v.as_number().ok_or_else(|| {
                    BenchError::MalformedReport(format!("record {i} field `{key}` is not a number"))
                }),
                None => Ok(0.0),
            };
            records.push(BenchRecord {
                experiment: rstr("experiment")?,
                setting: rstr("setting")?,
                algorithm: rstr("algorithm")?,
                mean_cut: rnum("mean_cut")?,
                total_time_s: rnum("total_time_s")?,
                mean_passes: rnum("mean_passes")?,
                proposals: ropt("proposals")?,
                proposals_per_sec: ropt("proposals_per_sec")?,
                refine_time_s: ropt("refine_time_s")?,
                hpwl: ropt("hpwl")?,
                graphs: rnum("graphs")? as usize,
            });
        }
        // Trajectory-era fields parse leniently so pre-trajectory
        // reports (the committed baselines) still load.
        let opt_num = |key: &str| match doc.get(key) {
            Some(v) => v
                .as_number()
                .ok_or_else(|| BenchError::MalformedReport(format!("`{key}` is not a number"))),
            None => Ok(0.0),
        };
        Ok(BenchReport {
            profile: field("profile")?
                .as_str()
                .ok_or_else(|| BenchError::MalformedReport("`profile` is not a string".into()))?
                .to_string(),
            seed: num("seed")? as u64,
            starts: num("starts")? as usize,
            replicates: num("replicates")? as usize,
            threads: num("threads")? as usize,
            wall_time_s: num("wall_time_s")?,
            timestamp: opt_num("timestamp")? as u64,
            peak_rss_bytes: opt_num("peak_rss_bytes")? as u64,
            records,
        })
    }
}

/// Parses a `BENCH_results.json` *trajectory*: a JSON array of run
/// reports, ordered oldest to newest. A legacy single-object document
/// (the pre-trajectory format, still used by the committed baselines)
/// parses as a one-run trajectory.
///
/// # Errors
///
/// Returns [`BenchError::MalformedReport`] for syntax errors, mistyped
/// runs, or a document that is neither an object nor an array.
pub fn parse_trajectory(input: &str) -> Result<Vec<BenchReport>, BenchError> {
    let doc = parse(input)?;
    match doc {
        JsonValue::Array(runs) => runs.iter().map(BenchReport::from_value).collect(),
        doc @ JsonValue::Object(_) => Ok(vec![BenchReport::from_value(&doc)?]),
        _ => Err(BenchError::MalformedReport(
            "expected a report object or an array of report objects".into(),
        )),
    }
}

/// Serializes a trajectory as a JSON array of run reports, oldest
/// first — the inverse of [`parse_trajectory`].
pub fn trajectory_to_json(runs: &[BenchReport]) -> String {
    let mut out = String::from("[\n");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(run.to_json().trim_end());
    }
    out.push_str("\n]\n");
    out
}

/// JSON string escaping for the small label alphabet used here (quotes,
/// backslashes, and control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats print with Rust's shortest round-trip formatting;
/// non-finite values (never expected, but times could in principle
/// overflow a division) become `null`.
fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, keep them as-is.
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_avg() -> QuadAverage {
        QuadAverage {
            cuts: [10.0, 8.5, 12.0, 9.0],
            times: [Duration::from_millis(1500); 4],
            passes: [100.0, 110.0, 4.0, 6.0],
            proposals: [3000.0, 4500.0, 600.0, 0.0],
            count: 3,
        }
    }

    #[test]
    fn quad_records_expand_in_suite_order() {
        let records = quad_records("gbreg", "n=500 b=8 d=3", &sample_avg());
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].algorithm, "SA");
        assert_eq!(records[1].algorithm, "CSA");
        assert_eq!(records[2].algorithm, "KL");
        assert_eq!(records[3].algorithm, "CKL");
        assert_eq!(records[2].mean_cut, 12.0);
        assert_eq!(records[0].total_time_s, 1.5);
        assert_eq!(records[3].graphs, 3);
        // Throughput derives from proposals / time, for the KL family
        // (pair-gain evaluations) just like the SA family (swap
        // proposals); a zero count still reports zero throughput.
        assert_eq!(records[0].proposals, 3000.0);
        assert_eq!(records[0].proposals_per_sec, 2000.0);
        assert_eq!(records[2].proposals, 600.0);
        assert_eq!(records[2].proposals_per_sec, 400.0);
        assert_eq!(records[3].proposals, 0.0);
        assert_eq!(records[3].proposals_per_sec, 0.0);
    }

    #[test]
    fn zero_time_gives_zero_throughput() {
        let avg = QuadAverage {
            times: [Duration::ZERO; 4],
            proposals: [500.0; 4],
            count: 1,
            ..QuadAverage::default()
        };
        let records = quad_records("gbreg", "n=0", &avg);
        assert_eq!(records[0].proposals, 500.0);
        assert_eq!(records[0].proposals_per_sec, 0.0);
    }

    #[test]
    fn from_json_defaults_absent_throughput_fields() {
        // A report written before the `proposals` fields existed (the
        // committed baseline format) must still parse, with zeros.
        let doc = r#"{"profile": "quick", "seed": 1, "starts": 1, "replicates": 1,
                      "threads": 1, "wall_time_s": 0,
                      "records": [{"experiment": "g", "setting": "s",
                                   "algorithm": "SA", "mean_cut": 8,
                                   "total_time_s": 0.5, "mean_passes": 10, "graphs": 1}]}"#;
        let report = BenchReport::from_json(doc).expect("old schema parses");
        assert_eq!(report.records[0].proposals, 0.0);
        assert_eq!(report.records[0].proposals_per_sec, 0.0);
    }

    #[test]
    fn report_serializes_valid_shape() {
        let report = BenchReport {
            profile: "quick".into(),
            seed: 1989,
            starts: 2,
            replicates: 3,
            threads: 4,
            wall_time_s: 12.25,
            timestamp: 0,
            peak_rss_bytes: 0,
            records: quad_records("gbreg", "n=500", &sample_avg()),
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("]\n}\n"));
        assert!(json.contains("\"profile\": \"quick\""));
        assert!(json.contains("\"seed\": 1989"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"algorithm\": \"CKL\""));
        assert!(json.contains("\"mean_cut\": 9"));
        // Four records -> three separating commas inside the array.
        assert_eq!(json.matches("\"experiment\"").count(), 4);
    }

    #[test]
    fn empty_records_give_empty_array() {
        let report = BenchReport {
            profile: "smoke".into(),
            seed: 0,
            starts: 1,
            replicates: 1,
            threads: 1,
            wall_time_s: 0.0,
            timestamp: 0,
            peak_rss_bytes: 0,
            records: vec![],
        };
        assert!(report.to_json().contains("\"records\": []"));
    }

    #[test]
    fn escape_handles_special_characters() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.5), "2.5");
        assert_eq!(number(3.0), "3");
    }

    #[test]
    fn parse_handles_the_full_value_grammar() {
        let doc = parse(r#" {"a": [1, -2.5e1, true, false, null], "b\n": "x\"\\A"} "#)
            .expect("valid document");
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(5)
        );
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_number(),
            Some(-25.0)
        );
        assert_eq!(doc.get("b\n").and_then(JsonValue::as_str), Some("x\"\\A"));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn parse_rejects_malformed_documents_with_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"open"] {
            let err = parse(bad).unwrap_err();
            assert!(
                matches!(err, BenchError::MalformedReport(_)),
                "{bad:?} -> {err}"
            );
            assert!(err.to_string().contains("at byte"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            profile: "quick".into(),
            seed: 1989,
            starts: 2,
            replicates: 3,
            threads: 4,
            wall_time_s: 12.25,
            timestamp: 0,
            peak_rss_bytes: 0,
            records: quad_records("gbreg", "n=500 \"odd\" label", &sample_avg()),
        };
        let parsed = BenchReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn trajectory_round_trips_and_preserves_order() {
        let mut a = BenchReport {
            profile: "quick".into(),
            seed: 1989,
            starts: 2,
            replicates: 3,
            threads: 4,
            wall_time_s: 12.25,
            timestamp: 1_700_000_000,
            peak_rss_bytes: 123 << 20,
            records: quad_records("gbreg", "n=500", &sample_avg()),
        };
        let mut b = a.clone();
        b.timestamp = 1_700_000_100;
        b.wall_time_s = 11.0;
        let json = trajectory_to_json(&[a.clone(), b.clone()]);
        let parsed = parse_trajectory(&json).expect("trajectory round trip");
        assert_eq!(parsed, vec![a.clone(), b.clone()]);
        // Appending preserves the existing history.
        let mut runs = parsed;
        a.timestamp = 1_700_000_200;
        runs.push(a.clone());
        let parsed = parse_trajectory(&trajectory_to_json(&runs)).expect("appended");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].timestamp, 1_700_000_000);
        assert_eq!(parsed[2].timestamp, 1_700_000_200);
        assert_eq!(parsed[1], b);
    }

    #[test]
    fn legacy_single_report_parses_as_one_run_trajectory() {
        // The committed baselines predate both the trajectory array and
        // the timestamp/peak-RSS fields; they must load unchanged.
        let doc = r#"{"profile": "quick", "seed": 1, "starts": 1, "replicates": 1,
                      "threads": 1, "wall_time_s": 0,
                      "records": [{"experiment": "g", "setting": "s",
                                   "algorithm": "SA", "mean_cut": 8,
                                   "total_time_s": 0.5, "mean_passes": 10, "graphs": 1}]}"#;
        let runs = parse_trajectory(doc).expect("legacy object parses");
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].timestamp, 0);
        assert_eq!(runs[0].peak_rss_bytes, 0);
        assert_eq!(runs[0].records.len(), 1);
    }

    #[test]
    fn trajectory_rejects_non_report_documents() {
        assert!(parse_trajectory("42").is_err());
        assert!(parse_trajectory("[42]").is_err());
        assert!(parse_trajectory("not json").is_err());
        // An empty array is a valid (empty) trajectory.
        assert_eq!(parse_trajectory("[]").expect("empty array"), vec![]);
    }

    #[test]
    fn from_json_reports_missing_and_mistyped_fields() {
        let err = BenchReport::from_json("{\"profile\": \"quick\"}").unwrap_err();
        assert!(err.to_string().contains("missing field `records`"));

        let doc = r#"{"profile": "quick", "seed": 1, "starts": 1, "replicates": 1,
                      "threads": 1, "wall_time_s": 0,
                      "records": [{"experiment": "g", "setting": "s",
                                   "algorithm": "KL", "mean_cut": "oops",
                                   "total_time_s": 0, "mean_passes": 0, "graphs": 1}]}"#;
        let err = BenchReport::from_json(doc).unwrap_err();
        assert!(err
            .to_string()
            .contains("record 0 field `mean_cut` is not a number"));
    }
}
