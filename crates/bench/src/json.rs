//! Minimal hand-rolled JSON emission for `BENCH_results.json` — the
//! machine-readable companion of the text tables (the container has no
//! serde; the subset needed here is a flat record schema).

use crate::runner::QuadAverage;

/// One `(experiment, setting, algorithm)` measurement: the unit of
/// `BENCH_results.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment id (e.g. `"gbreg"`).
    pub experiment: String,
    /// Row label within the experiment (e.g. `"n=1000 d=3 b=16"`).
    pub setting: String,
    /// Algorithm name (`"SA"`, `"CSA"`, `"KL"`, `"CKL"`).
    pub algorithm: String,
    /// Mean best cut over the averaged graphs.
    pub mean_cut: f64,
    /// Mean total wall time (summed across starts) in seconds.
    pub total_time_s: f64,
    /// Mean total work count across starts: productive passes for
    /// KL/FM, temperature steps for SA, both stages summed for C*.
    pub mean_passes: f64,
    /// Number of graphs averaged into this record.
    pub graphs: usize,
}

/// Expands one averaged table row into its four per-algorithm records.
pub(crate) fn quad_records(experiment: &str, setting: &str, avg: &QuadAverage) -> Vec<BenchRecord> {
    const ALGOS: [&str; 4] = ["SA", "CSA", "KL", "CKL"];
    ALGOS
        .iter()
        .enumerate()
        .map(|(i, algo)| BenchRecord {
            experiment: experiment.to_string(),
            setting: setting.to_string(),
            algorithm: algo.to_string(),
            mean_cut: avg.cuts[i],
            total_time_s: avg.times[i].as_secs_f64(),
            mean_passes: avg.passes[i],
            graphs: avg.count,
        })
        .collect()
}

/// The full `BENCH_results.json` document: run configuration plus every
/// record of the experiments that ran.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Profile scale name (`"smoke"`, `"quick"`, `"paper"`).
    pub profile: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Starts per algorithm per graph.
    pub starts: usize,
    /// Replicates per random-model setting.
    pub replicates: usize,
    /// Worker threads used for the run.
    pub threads: usize,
    /// Total wall time of the whole run in seconds.
    pub wall_time_s: f64,
    /// The measurements.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"profile\": {},\n", escape(&self.profile)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"starts\": {},\n", self.starts));
        out.push_str(&format!("  \"replicates\": {},\n", self.replicates));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!(
            "  \"wall_time_s\": {},\n",
            number(self.wall_time_s)
        ));
        out.push_str("  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"experiment\": {}, ", escape(&r.experiment)));
            out.push_str(&format!("\"setting\": {}, ", escape(&r.setting)));
            out.push_str(&format!("\"algorithm\": {}, ", escape(&r.algorithm)));
            out.push_str(&format!("\"mean_cut\": {}, ", number(r.mean_cut)));
            out.push_str(&format!("\"total_time_s\": {}, ", number(r.total_time_s)));
            out.push_str(&format!("\"mean_passes\": {}, ", number(r.mean_passes)));
            out.push_str(&format!("\"graphs\": {}", r.graphs));
            out.push('}');
        }
        if !self.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string escaping for the small label alphabet used here (quotes,
/// backslashes, and control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats print with Rust's shortest round-trip formatting;
/// non-finite values (never expected, but times could in principle
/// overflow a division) become `null`.
fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, keep them as-is.
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_avg() -> QuadAverage {
        QuadAverage {
            cuts: [10.0, 8.5, 12.0, 9.0],
            times: [Duration::from_millis(1500); 4],
            passes: [100.0, 110.0, 4.0, 6.0],
            count: 3,
        }
    }

    #[test]
    fn quad_records_expand_in_suite_order() {
        let records = quad_records("gbreg", "n=500 b=8 d=3", &sample_avg());
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].algorithm, "SA");
        assert_eq!(records[1].algorithm, "CSA");
        assert_eq!(records[2].algorithm, "KL");
        assert_eq!(records[3].algorithm, "CKL");
        assert_eq!(records[2].mean_cut, 12.0);
        assert_eq!(records[0].total_time_s, 1.5);
        assert_eq!(records[3].graphs, 3);
    }

    #[test]
    fn report_serializes_valid_shape() {
        let report = BenchReport {
            profile: "quick".into(),
            seed: 1989,
            starts: 2,
            replicates: 3,
            threads: 4,
            wall_time_s: 12.25,
            records: quad_records("gbreg", "n=500", &sample_avg()),
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("]\n}\n"));
        assert!(json.contains("\"profile\": \"quick\""));
        assert!(json.contains("\"seed\": 1989"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"algorithm\": \"CKL\""));
        assert!(json.contains("\"mean_cut\": 9"));
        // Four records -> three separating commas inside the array.
        assert_eq!(json.matches("\"experiment\"").count(), 4);
    }

    #[test]
    fn empty_records_give_empty_array() {
        let report = BenchReport {
            profile: "smoke".into(),
            seed: 0,
            starts: 1,
            replicates: 1,
            threads: 1,
            wall_time_s: 0.0,
            records: vec![],
        };
        assert!(report.to_json().contains("\"records\": []"));
    }

    #[test]
    fn escape_handles_special_characters() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("a\\b"), "\"a\\\\b\"");
        assert_eq!(escape("a\nb"), "\"a\\nb\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(2.5), "2.5");
        assert_eq!(number(3.0), "3");
    }
}
