//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `matching/*` — random maximal vs heavy-edge vs edge-order matching
//!   inside CKL.
//! * `klpair/*` — sorted-pruning vs exhaustive pair selection in KL
//!   (identical outputs, different asymptotics).
//! * `samove/*` — swap moves vs single-flip-with-penalty SA.
//! * `multilevel/*` — one compaction level (the paper) vs a full
//!   multilevel V-cycle.

use criterion::{criterion_group, criterion_main, Criterion};

use bisect_core::bisector::Bisector;
use bisect_core::kl::{KernighanLin, PairSelection};
use bisect_core::pipeline::{EdgeOrderMatching, HeavyEdgeMatching, Pipeline};
use bisect_core::sa::{MoveKind, SimulatedAnnealing};
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, special};
use bisect_graph::Graph;
use rand::SeedableRng;

fn sparse_planted() -> Graph {
    let mut rng = LaggedFibonacci::seed_from_u64(1989);
    let params = gbreg::GbregParams::new(600, 6, 3).expect("valid parameters");
    gbreg::sample(&mut rng, &params).expect("construction succeeds")
}

fn bench_matching_kind(c: &mut Criterion) {
    let g = sparse_planted();
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    let variants = [
        ("random", Pipeline::ckl()),
        (
            "heavy-edge",
            Pipeline::ckl().with_coarsener(HeavyEdgeMatching),
        ),
        (
            "edge-order",
            Pipeline::ckl().with_coarsener(EdgeOrderMatching),
        ),
    ];
    for (name, algo) in variants {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(algo.bisect(&g, &mut rng).cut())
            });
        });
    }
    group.finish();
}

fn bench_kl_pair_selection(c: &mut Criterion) {
    let g = special::grid(18, 18);
    let mut group = c.benchmark_group("klpair");
    group.sample_size(10);
    for (name, selection) in [
        ("sorted-pruning", PairSelection::SortedPruning),
        ("exhaustive", PairSelection::Exhaustive),
    ] {
        let algo = KernighanLin::new().with_pair_selection(selection);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(algo.bisect(&g, &mut rng).cut())
            });
        });
    }
    group.finish();
}

fn bench_sa_move_kind(c: &mut Criterion) {
    let g = special::grid(16, 16);
    let mut group = c.benchmark_group("samove");
    group.sample_size(10);
    for (name, kind) in [
        ("swap", MoveKind::Swap),
        (
            "flip",
            MoveKind::Flip {
                imbalance_factor: 0.05,
            },
        ),
    ] {
        let algo = SimulatedAnnealing::quick().with_move_kind(kind);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(algo.bisect(&g, &mut rng).cut())
            });
        });
    }
    group.finish();
}

fn bench_compaction_depth(c: &mut Criterion) {
    let g = sparse_planted();
    let mut group = c.benchmark_group("multilevel");
    group.sample_size(10);
    let algos: Vec<(&str, Box<dyn Bisector>)> = vec![
        ("plain-KL", Box::new(KernighanLin::new())),
        ("one-level-CKL", Box::new(Pipeline::ckl())),
        (
            "full-multilevel",
            Box::new(Pipeline::multilevel(KernighanLin::new())),
        ),
    ];
    for (name, algo) in algos {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(algo.bisect(&g, &mut rng).cut())
            });
        });
    }
    group.finish();
}

fn bench_kl_pass_budget(c: &mut Criterion) {
    // The ladder finding of EXPERIMENTS.md: pass-limited KL (the
    // plausible 1989 operating point) vs fixpoint KL.
    let g = special::ladder(250);
    let mut group = c.benchmark_group("klbudget");
    group.sample_size(10);
    for (name, passes) in [("1-pass", 1usize), ("3-pass", 3), ("fixpoint", 64)] {
        let algo = KernighanLin::new().with_max_passes(passes);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(algo.bisect(&g, &mut rng).cut())
            });
        });
    }
    group.finish();
}

fn bench_hypergraph_vs_clique(c: &mut Criterion) {
    use bisect_core::netlist::NetlistFm;
    use bisect_graph::hypergraph::NetlistBuilder;
    use rand::seq::SliceRandom;
    use rand::Rng;

    // Block-structured netlist with 3-5 pin nets.
    let mut rng = LaggedFibonacci::seed_from_u64(11);
    let mut builder = NetlistBuilder::new(240);
    for block in 0..6 {
        let base = (block * 40) as u32;
        for _ in 0..50 {
            let size = rng.gen_range(3..=5usize);
            let mut pins: Vec<u32> = (base..base + 40).collect();
            pins.shuffle(&mut rng);
            builder.add_net(&pins[..size]).expect("pins valid");
        }
    }
    let nl = builder.build();
    let clique = nl.to_clique_graph();

    let mut group = c.benchmark_group("hypergraph");
    group.sample_size(10);
    group.bench_function("native-fm", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = LaggedFibonacci::seed_from_u64(seed);
            std::hint::black_box(NetlistFm::new().bisect(&nl, &mut rng).cut())
        });
    });
    group.bench_function("clique-kl", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = LaggedFibonacci::seed_from_u64(seed);
            std::hint::black_box(KernighanLin::new().bisect(&clique, &mut rng).cut())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matching_kind,
    bench_kl_pair_selection,
    bench_sa_move_kind,
    bench_compaction_depth,
    bench_kl_pass_budget,
    bench_hypergraph_vs_clique
);
criterion_main!(benches);
