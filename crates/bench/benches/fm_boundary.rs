//! Full-scan FM vs boundary-seeded FM passes (DESIGN.md §12).
//!
//! The scenario is the one the multilevel pipeline actually pays for:
//! re-refining a partition that is already *near-converged* — exactly
//! what projection through an uncoarsening level hands the refiner.
//! Each instance is refined to a fixpoint once, then perturbed by a few
//! balanced pair swaps, and the benches measure re-refinement from that
//! start. The full-scan pass seeds its gain buckets from every vertex
//! (`O(V + E)` per pass); `BoundaryFm` seeds only from the incrementally
//! tracked cut boundary (`O(boundary · deg)`).
//!
//! * `fm-repass/*` — re-refinement on `Gnp` across average degree 2–8.
//!   `Gnp`'s best cut is a constant *fraction* of the edges, so the
//!   boundary stays a constant fraction of `V` and the two refiners
//!   land within noise of each other (boundary pays its cache upkeep,
//!   saves little seeding).
//! * `fm-repass-planted/*` — re-refinement on `Gbreg` with a small
//!   planted cut: the boundary is tiny, and seeding from it is the
//!   measurable win. The full multilevel payoff (projection replacing
//!   every per-level `O(V + E)` rebuild) is measured end-to-end by
//!   `repro --huge-smoke`, not here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bisect_core::bisector::Refiner;
use bisect_core::fm::{BoundaryFm, FiducciaMattheyses};
use bisect_core::partition::Bisection;
use bisect_core::seed;
use bisect_core::workspace::Workspace;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, gnp};
use bisect_graph::Graph;
use rand::{RngCore, SeedableRng};

/// Refines a random balanced start to a fixpoint, then perturbs it by
/// `swaps` balanced pair swaps — a stand-in for the partition a
/// projection step hands the next level's refiner.
fn near_converged(g: &Graph, swaps: usize) -> Bisection {
    let mut rng = LaggedFibonacci::seed_from_u64(11);
    let init = seed::random_balanced(g, &mut rng);
    let refined = FiducciaMattheyses::new().refine(g, init, &mut rng);
    let mut sides = refined.sides().to_vec();
    let n = sides.len();
    let mut done = 0;
    while done < swaps {
        let a = (rng.next_u64() % n as u64) as usize;
        let b = (rng.next_u64() % n as u64) as usize;
        if sides[a] != sides[b] {
            sides.swap(a, b);
            done += 1;
        }
    }
    Bisection::from_sides(g, sides).expect("same length as the graph")
}

fn bench_repass<R: Refiner>(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: BenchmarkId,
    refiner: &R,
    g: &Graph,
    init: &Bisection,
) {
    group.bench_with_input(id, g, |b, g| {
        let mut ws = Workspace::new();
        b.iter(|| {
            let mut rng = LaggedFibonacci::seed_from_u64(1);
            std::hint::black_box(
                refiner
                    .refine_counted(g, init.clone(), &mut rng, &mut ws)
                    .0
                    .cut(),
            )
        });
    });
}

fn bench_fm_repass_by_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm-repass");
    group.sample_size(10);
    for degree in [2u32, 4, 8] {
        let params =
            gnp::GnpParams::with_average_degree(2000, degree as f64).expect("valid parameters");
        let mut grng = LaggedFibonacci::seed_from_u64(7);
        let g = gnp::sample(&mut grng, &params);
        let init = near_converged(&g, 10);
        bench_repass(
            &mut group,
            BenchmarkId::new("full-scan", degree),
            &FiducciaMattheyses::new(),
            &g,
            &init,
        );
        bench_repass(
            &mut group,
            BenchmarkId::new("boundary", degree),
            &BoundaryFm::new(),
            &g,
            &init,
        );
    }
    group.finish();
}

fn bench_fm_repass_planted(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm-repass-planted");
    group.sample_size(10);
    let params = gbreg::GbregParams::new(2000, 16, 4).expect("valid parameters");
    let mut grng = LaggedFibonacci::seed_from_u64(1989);
    let g = gbreg::sample(&mut grng, &params).expect("construction succeeds");
    let init = near_converged(&g, 10);
    bench_repass(
        &mut group,
        BenchmarkId::new("full-scan", 4),
        &FiducciaMattheyses::new(),
        &g,
        &init,
    );
    bench_repass(
        &mut group,
        BenchmarkId::new("boundary", 4),
        &BoundaryFm::new(),
        &g,
        &init,
    );
    group.finish();
}

criterion_group!(benches, bench_fm_repass_by_density, bench_fm_repass_planted);
criterion_main!(benches);
