//! Criterion timing of each bisection algorithm on fixed workloads.
//!
//! Complements the `repro` binary: `repro` reports the paper's
//! best-of-two cut/time protocol; these benches give statistically
//! robust per-algorithm timings used in EXPERIMENTS.md for the speed
//! claims (Observation 4: KL much faster than SA; Observation 2: CKL
//! faster than KL on sparse graphs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bisect_core::bisector::Bisector;
use bisect_core::fm::FiducciaMattheyses;
use bisect_core::greedy::GreedyGrowth;
use bisect_core::kl::KernighanLin;
use bisect_core::pipeline::Pipeline;
use bisect_core::sa::SimulatedAnnealing;
use bisect_core::spectral::SpectralBisector;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, special};
use bisect_graph::Graph;
use rand::SeedableRng;

fn workloads() -> Vec<(&'static str, Graph)> {
    let mut rng = LaggedFibonacci::seed_from_u64(1989);
    let params = gbreg::GbregParams::new(1000, 8, 3).expect("valid parameters");
    let planted = gbreg::sample(&mut rng, &params).expect("construction succeeds");
    vec![
        ("grid24", special::grid(24, 24)),
        ("ladder256", special::ladder(256)),
        ("btree510", special::binary_tree(510)),
        ("gbreg1000d3", planted),
    ]
}

fn algorithms() -> Vec<(&'static str, Box<dyn Bisector>)> {
    vec![
        ("KL", Box::new(KernighanLin::new())),
        ("FM", Box::new(FiducciaMattheyses::new())),
        ("SA", Box::new(SimulatedAnnealing::quick())),
        ("CKL", Box::new(Pipeline::ckl())),
        (
            "CSA",
            Box::new(Pipeline::compacted(SimulatedAnnealing::quick())),
        ),
        ("ML-KL", Box::new(Pipeline::multilevel(KernighanLin::new()))),
        ("Spectral", Box::new(SpectralBisector::new())),
        ("Greedy", Box::new(GreedyGrowth::new())),
    ]
}

fn bench_algorithms(c: &mut Criterion) {
    for (wname, g) in workloads() {
        let mut group = c.benchmark_group(wname);
        group.sample_size(10);
        for (aname, algo) in algorithms() {
            group.bench_with_input(BenchmarkId::from_parameter(aname), &g, |b, g| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = LaggedFibonacci::seed_from_u64(seed);
                    std::hint::black_box(algo.bisect(g, &mut rng).cut())
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
