//! SA hot-loop benches for the proposal-evaluation overhaul
//! (DESIGN.md §10): the cached path (incremental gain cache,
//! per-temperature `exp` table, monomorphized inner loop) against the
//! naive reference that recomputes every proposal's gain from
//! adjacency. Both paths are bit-identical in results
//! (`tests/sa_equivalence.rs`); these benches measure the speed gap.
//!
//! * `sa-eval/*` — full SA runs, swap moves, cached vs naive.
//! * `sa-eval-flip/*` — full SA runs, flip moves, cached vs naive.
//! * `sa-density/*` — cached vs naive across average degree (the
//!   naive path's per-proposal cost grows with degree; the cached
//!   path's rejected proposals stay O(1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bisect_core::bisector::Bisector;
use bisect_core::sa::{MoveKind, ProposalEval, SimulatedAnnealing};
use bisect_core::workspace::Workspace;
use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{gbreg, gnp};
use bisect_graph::Graph;
use rand::SeedableRng;

fn sparse_planted(n: usize) -> Graph {
    let mut rng = LaggedFibonacci::seed_from_u64(1989);
    let params = gbreg::GbregParams::new(n, 6, 3).expect("valid parameters");
    gbreg::sample(&mut rng, &params).expect("construction succeeds")
}

const EVALS: [(&str, ProposalEval); 2] = [
    ("cached", ProposalEval::Cached),
    ("naive", ProposalEval::Naive),
];

fn bench_eval_swap(c: &mut Criterion) {
    let g = sparse_planted(600);
    let mut group = c.benchmark_group("sa-eval");
    group.sample_size(10);
    for (name, eval) in EVALS {
        let algo = SimulatedAnnealing::quick().with_proposal_eval(eval);
        group.bench_function(name, |b| {
            let mut ws = Workspace::new();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(algo.bisect_in(&g, &mut rng, &mut ws).cut())
            });
        });
    }
    group.finish();
}

fn bench_eval_flip(c: &mut Criterion) {
    let g = sparse_planted(600);
    let mut group = c.benchmark_group("sa-eval-flip");
    group.sample_size(10);
    for (name, eval) in EVALS {
        let algo = SimulatedAnnealing::quick()
            .with_move_kind(MoveKind::Flip {
                imbalance_factor: 0.05,
            })
            .with_proposal_eval(eval);
        group.bench_function(name, |b| {
            let mut ws = Workspace::new();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(algo.bisect_in(&g, &mut rng, &mut ws).cut())
            });
        });
    }
    group.finish();
}

fn bench_eval_by_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa-density");
    group.sample_size(10);
    for degree in [4u32, 16, 48] {
        let params =
            gnp::GnpParams::with_average_degree(400, degree as f64).expect("valid parameters");
        let mut grng = LaggedFibonacci::seed_from_u64(7);
        let g = gnp::sample(&mut grng, &params);
        for (name, eval) in EVALS {
            let algo = SimulatedAnnealing::quick().with_proposal_eval(eval);
            group.bench_with_input(BenchmarkId::new(name, degree), &g, |b, g| {
                let mut ws = Workspace::new();
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let mut rng = LaggedFibonacci::seed_from_u64(seed);
                    std::hint::black_box(algo.bisect_in(g, &mut rng, &mut ws).cut())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eval_swap,
    bench_eval_flip,
    bench_eval_by_density
);
criterion_main!(benches);
