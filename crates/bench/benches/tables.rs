//! One Criterion bench per paper table: times a representative cell of
//! each table so that regressions in any experiment path are caught.
//! The full tables themselves are produced by the `repro` binary
//! (`cargo run -p bisect-bench --release --bin repro`).

use criterion::{criterion_group, criterion_main, Criterion};

use bisect_bench::experiments;
use bisect_bench::profile::Profile;

fn bench_tables(c: &mut Criterion) {
    let profile = Profile::smoke();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    for &id in experiments::ALL_IDS {
        group.bench_function(id, |b| {
            b.iter(|| {
                let result = experiments::run(id, &profile).expect("experiment ids are valid");
                std::hint::black_box(result.tables.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
