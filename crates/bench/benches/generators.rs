//! Criterion timing of the graph generators — the substrate cost of
//! the study (the paper generated 556 random graphs; these benches
//! check that regenerating the whole corpus stays cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bisect_gen::rng::LaggedFibonacci;
use bisect_gen::{g2set, gbreg, geometric, gnp};
use rand::SeedableRng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        group.bench_with_input(BenchmarkId::new("gnp-deg3", n), &n, |b, &n| {
            let params = gnp::GnpParams::with_average_degree(n, 3.0).expect("feasible");
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(gnp::sample(&mut rng, &params).num_edges())
            });
        });
        group.bench_with_input(BenchmarkId::new("g2set-deg3", n), &n, |b, &n| {
            let params = g2set::G2setParams::with_average_degree(n, 3.0, 16).expect("feasible");
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(g2set::sample(&mut rng, &params).num_edges())
            });
        });
        group.bench_with_input(BenchmarkId::new("gbreg-d3", n), &n, |b, &n| {
            let params = gbreg::GbregParams::new(n, 16, 3).expect("feasible");
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(
                    gbreg::sample(&mut rng, &params)
                        .expect("construction succeeds")
                        .num_edges(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("geometric-deg6", n), &n, |b, &n| {
            let params = geometric::GeometricParams::with_average_degree(n, 6.0).expect("feasible");
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = LaggedFibonacci::seed_from_u64(seed);
                std::hint::black_box(geometric::sample(&mut rng, &params).num_edges())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
