//! Full-scan vs boundary-seeded netlist FM re-passes (DESIGN.md §15).
//!
//! The hypergraph twin of `fm_boundary`: the scenario is re-refining a
//! netlist bisection that is already *near-converged* — what
//! projection through an uncoarsening level hands the refiner. Each
//! instance is refined to a fixpoint once, then perturbed by a few
//! balanced pair swaps, and the benches measure re-refinement from
//! that start. The full-scan variant
//! ([`NetlistFm::with_full_scan`]) seeds its gain buckets from every
//! cell (`O(cells + pins)` per pass); the default seeds only from the
//! incrementally tracked cut boundary (`O(boundary · pins)`).
//!
//! * `netlist-fm-repass/*` — 20k-cell Rent netlists across net-size
//!   exponent γ and pin locality. Locality-clustered instances
//!   (`loc5`) keep a small boundary, so boundary seeding wins there;
//!   global instances cut a constant fraction of the nets, and since
//!   the two seedings also commit different move sequences (full scans
//!   can chain interior zero-gain moves), either can come out ahead.
//! * `netlist-fm-repass-100k/*` — one 10^5-cell locality-clustered
//!   instance, the scale where the per-pass full scan dominates
//!   re-refinement cost outright. The full multilevel payoff
//!   (projection replacing every per-level cache rebuild) is measured
//!   end-to-end by `repro --huge-netlist-smoke`, not here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bisect_core::netlist::{NetlistBisection, NetlistFm, NetlistRefiner};
use bisect_core::workspace::Workspace;
use bisect_gen::netlist::{sample_streamed, RentNetlistParams};
use bisect_gen::rng::LaggedFibonacci;
use bisect_graph::hypergraph::Netlist;
use rand::{RngCore, SeedableRng};

/// Refines a random balanced start to a fixpoint, then perturbs it by
/// `swaps` balanced pair swaps — a stand-in for the bisection a
/// projection step hands the next level's refiner.
fn near_converged(nl: &Netlist, swaps: usize) -> NetlistBisection {
    let mut rng = LaggedFibonacci::seed_from_u64(11);
    let init = NetlistBisection::random_balanced(nl, &mut rng);
    let refined = NetlistFm::new().refine(nl, init);
    let mut sides = refined.sides().to_vec();
    let n = sides.len();
    let mut done = 0;
    while done < swaps {
        let a = (rng.next_u64() % n as u64) as usize;
        let b = (rng.next_u64() % n as u64) as usize;
        if sides[a] != sides[b] {
            sides.swap(a, b);
            done += 1;
        }
    }
    NetlistBisection::from_sides(nl, sides).expect("same length as the netlist")
}

fn rent_netlist(cells: usize, gamma: f64, locality: f64, seed: u64) -> Netlist {
    let params = RentNetlistParams::new(cells, cells * 14 / 10, 8, gamma, locality)
        .expect("valid parameters");
    sample_streamed(&mut LaggedFibonacci::seed_from_u64(seed), &params)
}

fn bench_repass(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: BenchmarkId,
    refiner: &NetlistFm,
    nl: &Netlist,
    init: &NetlistBisection,
) {
    group.bench_with_input(id, nl, |b, nl| {
        let mut ws = Workspace::new();
        b.iter(|| {
            let mut rng = LaggedFibonacci::seed_from_u64(1);
            std::hint::black_box(
                refiner
                    .refine_counted(nl, &[], init.clone(), &mut rng, &mut ws)
                    .0
                    .cut(),
            )
        });
    });
}

fn bench_netlist_repass_by_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist-fm-repass");
    group.sample_size(10);
    for (label, gamma, locality) in [
        ("g0-global", 0.0, 1.0),
        ("g1.8-global", 1.8, 1.0),
        ("g1.8-loc5", 1.8, 0.05),
        ("g3-loc5", 3.0, 0.05),
    ] {
        let nl = rent_netlist(20_000, gamma, locality, 7);
        let init = near_converged(&nl, 10);
        bench_repass(
            &mut group,
            BenchmarkId::new("full-scan", label),
            &NetlistFm::new().with_full_scan(),
            &nl,
            &init,
        );
        bench_repass(
            &mut group,
            BenchmarkId::new("boundary", label),
            &NetlistFm::new(),
            &nl,
            &init,
        );
    }
    group.finish();
}

fn bench_netlist_repass_100k(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist-fm-repass-100k");
    group.sample_size(10);
    let nl = rent_netlist(100_000, 1.8, 0.05, 1989);
    let init = near_converged(&nl, 10);
    bench_repass(
        &mut group,
        BenchmarkId::new("full-scan", "g1.8-loc5"),
        &NetlistFm::new().with_full_scan(),
        &nl,
        &init,
    );
    bench_repass(
        &mut group,
        BenchmarkId::new("boundary", "g1.8-loc5"),
        &NetlistFm::new(),
        &nl,
        &init,
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_netlist_repass_by_shape,
    bench_netlist_repass_100k
);
criterion_main!(benches);
