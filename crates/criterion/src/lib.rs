//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! report: each benchmark runs `sample_size` timed iterations after one
//! warm-up and prints min/mean/max wall-clock time per iteration.
//! There is no statistical analysis, HTML report, or saved baseline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered as
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once for warm-up and then `sample_size` timed
    /// iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.criterion.report(&self.name, &id, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        self.criterion.report(&self.name, &id, &bencher.samples);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// incremental).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    fn report(&mut self, group: &str, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        let min = samples.iter().min().expect("nonempty");
        let max = samples.iter().max().expect("nonempty");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{group}/{id}: [{} {} {}] ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        // warm-up + 5 samples
        assert_eq!(runs, 6);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("KL").to_string(), "KL");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
