//! The `G2set(2n, pA, pB, bis)` planted-cut model (§IV of the paper).
//!
//! The vertex set is split into halves `A = 0..n` and `B = n..2n`.
//! Within `A` each edge appears independently with probability `pA`,
//! within `B` with probability `pB`, and exactly `bis` cross edges are
//! placed uniformly at random (without repetition), so `bis` is an upper
//! bound on the bisection width.
//!
//! The paper notes the model's weakness that motivates `Gbreg`: at small
//! average degree the *actual* minimum bisection is often much smaller
//! than `bis` (degree < 2 usually gives bisection width 0). The planted
//! sides are recoverable from vertex ids (`v < n` ⇔ side A), which the
//! harness uses to report `b` alongside the cuts found.

use bisect_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

use crate::{gnp, GenError};

/// Parameters of the `G2set` model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct G2setParams {
    /// Total number of vertices (the paper's `2n`); must be even.
    pub num_vertices: usize,
    /// Edge probability within side A.
    pub p_a: f64,
    /// Edge probability within side B.
    pub p_b: f64,
    /// Exact number of cross edges (upper bound on bisection width).
    pub bis: usize,
}

impl G2setParams {
    /// Validates and constructs the parameters.
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidParameter`] if `num_vertices` is odd or zero,
    /// a probability leaves `[0, 1]`, or `bis > n²` (more cross edges
    /// than distinct cross pairs).
    pub fn new(
        num_vertices: usize,
        p_a: f64,
        p_b: f64,
        bis: usize,
    ) -> Result<G2setParams, GenError> {
        if num_vertices == 0 || !num_vertices.is_multiple_of(2) {
            return Err(GenError::InvalidParameter(format!(
                "number of vertices must be positive and even, got {num_vertices}"
            )));
        }
        for (name, p) in [("pA", p_a), ("pB", p_b)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(GenError::InvalidParameter(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        let n = num_vertices / 2;
        if bis > n * n {
            return Err(GenError::InvalidParameter(format!(
                "bis = {bis} exceeds the {} distinct cross pairs",
                n * n
            )));
        }
        Ok(G2setParams {
            num_vertices,
            p_a,
            p_b,
            bis,
        })
    }

    /// Parameters with `pA = pB` chosen so the *expected* overall
    /// average degree is `avg_degree` once the `bis` cross edges are
    /// counted — the parameterization the paper's appendix tables use
    /// ("`G2set(5000, pA, pB, b)` with average degree 2.5").
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidParameter`] if the implied probability leaves
    /// `[0, 1]` or the basic constraints of [`G2setParams::new`] fail.
    pub fn with_average_degree(
        num_vertices: usize,
        avg_degree: f64,
        bis: usize,
    ) -> Result<G2setParams, GenError> {
        if num_vertices < 4 || !num_vertices.is_multiple_of(2) {
            return Err(GenError::InvalidParameter(format!(
                "number of vertices must be even and at least 4, got {num_vertices}"
            )));
        }
        let n = (num_vertices / 2) as f64;
        // Expected edges: 2·C(n,2)·p + bis = (2n)·avg/2 = n·avg.
        let target_internal = n * avg_degree - bis as f64;
        if target_internal < 0.0 {
            return Err(GenError::InvalidParameter(format!(
                "bis = {bis} alone exceeds the edge budget of average degree {avg_degree}"
            )));
        }
        let p = target_internal / (n * (n - 1.0));
        G2setParams::new(num_vertices, p, p, bis)
    }

    /// Half the vertex count (side size `n`).
    pub fn side_size(&self) -> usize {
        self.num_vertices / 2
    }

    /// The expected average degree implied by the parameters.
    pub fn expected_average_degree(&self) -> f64 {
        let n = self.side_size() as f64;
        let internal = n * (n - 1.0) / 2.0 * (self.p_a + self.p_b);
        (internal + self.bis as f64) / n
    }
}

/// Samples a `G2set` graph. Side A is vertices `0..n`, side B is
/// `n..2n`.
// lint: allow(no-panic) — side/cross ids are < 2n by construction
pub fn sample<R: Rng + ?Sized>(rng: &mut R, params: &G2setParams) -> Graph {
    let n = params.side_size();
    let mut builder = GraphBuilder::new(params.num_vertices);
    // Expected edge count: both sides' internal edges plus the planted
    // cross edges (rounded up to absorb sampling variance).
    let pairs = (n * n.saturating_sub(1) / 2) as f64;
    let expected = (pairs * (params.p_a + params.p_b)).ceil() as usize + params.bis;
    builder.reserve_edges(expected + expected / 8);

    // Internal edges of each side, reusing the Gnp sampler on n vertices.
    let side_a = gnp::sample(
        rng,
        &gnp::GnpParams {
            num_vertices: n,
            p: params.p_a,
        },
    );
    for (u, v, _) in side_a.edges() {
        builder.add_edge(u, v).expect("side A edges valid");
    }
    let side_b = gnp::sample(
        rng,
        &gnp::GnpParams {
            num_vertices: n,
            p: params.p_b,
        },
    );
    for (u, v, _) in side_b.edges() {
        builder
            .add_edge(u + n as VertexId, v + n as VertexId)
            .expect("side B edges valid");
    }

    // Exactly `bis` distinct cross pairs. `bis` is far below n² in all
    // the paper's settings, so rejection sampling is cheap; fall back to
    // dense enumeration when `bis` approaches n².
    let total_pairs = n * n;
    if params.bis * 2 > total_pairs {
        // Dense: choose `bis` of all n² pairs via partial Fisher-Yates.
        let mut pairs: Vec<(VertexId, VertexId)> = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a as VertexId, (n + b) as VertexId)))
            .collect();
        for i in 0..params.bis {
            let j = rng.gen_range(i..pairs.len());
            pairs.swap(i, j);
            let (a, b) = pairs[i];
            builder.add_edge(a, b).expect("cross edges valid");
        }
    } else {
        // Membership-only (edges are emitted in draw order), but a
        // BTreeSet keeps hasher state out of the generator entirely.
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < params.bis {
            let a = rng.gen_range(0..n) as VertexId;
            let b = (n + rng.gen_range(0..n)) as VertexId;
            if chosen.insert((a, b)) {
                builder.add_edge(a, b).expect("cross edges valid");
            }
        }
    }
    builder.build()
}

/// The planted side assignment of a `G2set` (or `Gbreg`) instance on
/// `num_vertices` vertices: `false` for `v < n` (side A), `true`
/// otherwise.
pub fn planted_sides(num_vertices: usize) -> Vec<bool> {
    let n = num_vertices / 2;
    (0..num_vertices).map(|v| v >= n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cross_cut(g: &Graph) -> usize {
        let sides = planted_sides(g.num_vertices());
        g.edges()
            .filter(|&(u, v, _)| sides[u as usize] != sides[v as usize])
            .count()
    }

    #[test]
    fn params_reject_odd() {
        assert!(G2setParams::new(7, 0.1, 0.1, 0).is_err());
        assert!(G2setParams::new(0, 0.1, 0.1, 0).is_err());
    }

    #[test]
    fn params_reject_bad_probability() {
        assert!(G2setParams::new(10, 1.2, 0.1, 0).is_err());
        assert!(G2setParams::new(10, 0.1, -0.5, 0).is_err());
    }

    #[test]
    fn params_reject_excess_bis() {
        assert!(G2setParams::new(6, 0.1, 0.1, 10).is_err());
        assert!(G2setParams::new(6, 0.1, 0.1, 9).is_ok());
    }

    #[test]
    fn exact_cross_edge_count() {
        let params = G2setParams::new(60, 0.1, 0.1, 13).unwrap();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = sample(&mut rng, &params);
            assert_eq!(cross_cut(&g), 13, "seed {seed}");
        }
    }

    #[test]
    fn zero_bis_disconnects_sides() {
        let params = G2setParams::new(40, 0.3, 0.3, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let g = sample(&mut rng, &params);
        assert_eq!(cross_cut(&g), 0);
    }

    #[test]
    fn dense_bis_path() {
        // bis > n²/2 triggers the partial Fisher-Yates branch.
        let params = G2setParams::new(8, 0.0, 0.0, 14).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let g = sample(&mut rng, &params);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(cross_cut(&g), 14);
    }

    #[test]
    fn full_bipartite_when_bis_max() {
        let params = G2setParams::new(6, 0.0, 0.0, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let g = sample(&mut rng, &params);
        assert_eq!(g.num_edges(), 9);
    }

    #[test]
    fn with_average_degree_hits_target() {
        let params = G2setParams::with_average_degree(2000, 3.0, 32).unwrap();
        assert!((params.expected_average_degree() - 3.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(3);
        let g = sample(&mut rng, &params);
        assert!(
            (g.average_degree() - 3.0).abs() < 0.3,
            "avg {}",
            g.average_degree()
        );
    }

    #[test]
    fn with_average_degree_rejects_excess_bis() {
        assert!(G2setParams::with_average_degree(100, 1.0, 1000).is_err());
    }

    #[test]
    fn asymmetric_probabilities() {
        let params = G2setParams::new(200, 0.2, 0.0, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let g = sample(&mut rng, &params);
        let n = 100;
        let b_internal = g
            .edges()
            .filter(|&(u, v, _)| u as usize >= n && v as usize >= n)
            .count();
        assert_eq!(b_internal, 0);
        assert!(g.num_edges() > 5);
    }

    #[test]
    fn planted_sides_balanced() {
        let sides = planted_sides(10);
        assert_eq!(sides.iter().filter(|&&s| s).count(), 5);
        assert!(!sides[0] && sides[9]);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = G2setParams::with_average_degree(100, 2.5, 8).unwrap();
        let a = sample(&mut StdRng::seed_from_u64(1), &params);
        let b = sample(&mut StdRng::seed_from_u64(1), &params);
        assert_eq!(a, b);
    }
}
