//! Graph generators from the DAC'89 bisection study (§IV of the paper).
//!
//! Three random models are provided:
//!
//! * [`gnp`] — `Gnp(2n, p)`: every edge present independently with
//!   probability `p`. The paper notes its minimum bisection is close to
//!   a random bisection, so it discriminates heuristics poorly.
//! * [`g2set`] — `G2set(2n, pA, pB, bis)`: two independent `Gnp` blocks
//!   joined by exactly `bis` random cross edges (an upper bound on the
//!   bisection width).
//! * [`gbreg`] — `Gbreg(2n, b, d)` from Bui-Chaudhuri-Leighton-Sipser:
//!   d-regular graphs with exactly `b` edges crossing a planted
//!   bisection. This is the paper's primary test model.
//!
//! plus the special families used in Table 1 and the appendix
//! ([`special`]: grids, ladders, binary trees, …), a random regular
//! graph sampler ([`regular`]), a Rent's-rule-style random netlist
//! sampler for the hypergraph pipeline ([`netlist`]), and the
//! deterministic [lagged-Fibonacci RNG](rng) matching the paper's
//! choice of generator.
//!
//! All samplers take `&mut impl rand::Rng` and are deterministic given
//! the generator state, so every experiment is reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use bisect_gen::{gbreg, rng::LaggedFibonacci};
//! use rand::SeedableRng;
//!
//! let mut rng = LaggedFibonacci::seed_from_u64(1989);
//! let g = gbreg::sample(&mut rng, &gbreg::GbregParams::new(100, 4, 3).unwrap()).unwrap();
//! assert_eq!(g.num_vertices(), 100);
//! assert_eq!(g.regular_degree(), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod g2set;
pub mod gbreg;
pub mod geometric;
pub mod gnp;
pub mod netlist;
pub mod regular;
pub mod rng;
pub mod special;

pub use error::GenError;
