//! Deterministic special graph families.
//!
//! The paper tests compaction on grids, ladder graphs, and binary trees
//! (Table 1 and the appendix), and mentions the ladder graph as a case
//! where plain Kernighan-Lin "is known to fail badly". The other
//! families here (cycles, paths, tori, hypercubes, …) are used by the
//! test suite, the examples, and as additional sanity workloads — each
//! has a known bisection width to compare heuristics against.

use bisect_graph::{Graph, GraphBuilder, VertexId};

/// The path `P_n` on `n` vertices (`n − 1` edges). Bisection width 1
/// for even `n ≥ 2`.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as VertexId, i as VertexId)
            .expect("path edges valid");
    }
    b.build()
}

/// The cycle `C_n` on `n` vertices. Bisection width 2 for even `n ≥ 4`.
///
/// # Panics
///
/// Panics if `n < 3` (smaller cycles are not simple graphs).
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices, got {n}");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as VertexId, ((i + 1) % n) as VertexId)
            .expect("cycle edges valid");
    }
    b.build()
}

/// A disjoint union of `count` cycles of length `len` — the shape of
/// every degree-2 `Gbreg` instance ("a collection of chordless
/// cycles"). Bisection width 0 when `count·len` splits evenly across
/// whole cycles, at most 2 otherwise.
///
/// # Panics
///
/// Panics if `len < 3`.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn cycle_collection(count: usize, len: usize) -> Graph {
    assert!(len >= 3, "cycle length must be at least 3, got {len}");
    let mut b = GraphBuilder::new(count * len);
    for c in 0..count {
        let base = c * len;
        for i in 0..len {
            b.add_edge((base + i) as VertexId, (base + (i + 1) % len) as VertexId)
                .expect("cycle edges valid");
        }
    }
    b.build()
}

/// The `rows × cols` grid graph. For an `N × N` grid the bisection
/// width is `N` (cut down the middle), the value the appendix's grid
/// table compares against.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1))
                    .expect("grid edges valid");
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c))
                    .expect("grid edges valid");
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus (grid with wraparound). Bisection width
/// `2·min(rows, cols)` for even dimensions ≥ 3.
///
/// # Panics
///
/// Panics if either dimension is `< 3` (wraparound would create
/// parallel edges or self loops).
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus dimensions must be at least 3"
    );
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols))
                .expect("torus edges valid");
            b.add_edge(id(r, c), id((r + 1) % rows, c))
                .expect("torus edges valid");
        }
    }
    b.build()
}

/// The ladder graph `L_k = P_2 × P_k` on `2k` vertices — two rails of
/// `k` vertices joined by `k` rungs (the graph of Figure 3, on which
/// plain KL "is known to fail badly" while SA does well). Bisection
/// width 2 for even `k` (cut between two rungs), and the family of the
/// appendix's ladder table.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn ladder(k: usize) -> Graph {
    let mut b = GraphBuilder::new(2 * k);
    for i in 0..k {
        let top = i as VertexId;
        let bottom = (k + i) as VertexId;
        b.add_edge(top, bottom).expect("rung valid");
        if i + 1 < k {
            b.add_edge(top, top + 1).expect("rail valid");
            b.add_edge(bottom, bottom + 1).expect("rail valid");
        }
    }
    b.build()
}

/// The circular ladder (prism) `CL_k = C_k × P_2` on `2k` vertices:
/// a ladder whose rails wrap around. Bisection width 4 for even `k ≥ 4`.
///
/// # Panics
///
/// Panics if `k < 3`.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn circular_ladder(k: usize) -> Graph {
    assert!(k >= 3, "circular ladder needs k >= 3, got {k}");
    let mut b = GraphBuilder::new(2 * k);
    for i in 0..k {
        let top = i as VertexId;
        let bottom = (k + i) as VertexId;
        let next = (i + 1) % k;
        b.add_edge(top, bottom).expect("rung valid");
        b.add_edge(top, next as VertexId).expect("rail valid");
        b.add_edge(bottom, (k + next) as VertexId)
            .expect("rail valid");
    }
    b.build()
}

/// The complete binary tree on `n` vertices in heap order (vertex `i`
/// has children `2i+1`, `2i+2` when in range). The appendix's binary
/// tree table uses this family; trees are the worst case for plain KL
/// in the paper's tests (56% improvement from compaction).
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i as VertexId, ((i - 1) / 2) as VertexId)
            .expect("tree edges valid");
    }
    b.build()
}

/// The `dim`-dimensional hypercube on `2^dim` vertices. Bisection width
/// `2^(dim−1)`.
///
/// # Panics
///
/// Panics if `dim >= 31` (vertex ids would overflow).
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn hypercube(dim: u32) -> Graph {
    assert!(dim < 31, "hypercube dimension too large: {dim}");
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v as VertexId, u as VertexId)
                    .expect("hypercube edges valid");
            }
        }
    }
    b.build()
}

/// The complete graph `K_n`. Bisection width `⌊n/2⌋·⌈n/2⌉`.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId)
                .expect("complete edges valid");
        }
    }
    b.build()
}

/// The star `K_{1,n-1}`: vertex 0 joined to all others. Bisection width
/// `⌊n/2⌋` — every balanced split strands half the leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v as VertexId).expect("star edges valid");
    }
    b.build()
}

/// The wheel `W_n`: a cycle on `n − 1` vertices plus a hub joined to
/// all of them.
///
/// # Panics
///
/// Panics if `n < 4`.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs at least 4 vertices, got {n}");
    let rim = n - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..rim {
        b.add_edge(i as VertexId, ((i + 1) % rim) as VertexId)
            .expect("rim valid");
        b.add_edge(i as VertexId, rim as VertexId)
            .expect("spoke valid");
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` vertices with `legs` leaves
/// hanging off each spine vertex. `spine·(1 + legs)` vertices. Trees
/// with long paths and pendant clusters stress the same weakness of KL
/// that binary trees do.
///
/// # Panics
///
/// Panics if `spine == 0`.
// lint: allow(no-panic) — endpoints are in range by the constructor arithmetic
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "caterpillar needs a nonempty spine");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        b.add_edge((i - 1) as VertexId, i as VertexId)
            .expect("spine valid");
    }
    let mut next = spine;
    for i in 0..spine {
        for _ in 0..legs {
            b.add_edge(i as VertexId, next as VertexId)
                .expect("leg valid");
            next += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_graph::traversal;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn path_degenerate() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.regular_degree(), Some(2));
        assert!(traversal::bipartition(&g).is_some());
        assert!(traversal::bipartition(&cycle(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_too_small() {
        let _ = cycle(2);
    }

    #[test]
    fn cycle_collection_components() {
        let g = cycle_collection(3, 5);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.regular_degree(), Some(2));
        let (_, count) = traversal::connected_components(&g);
        assert_eq!(count, 3);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (row 1, col 1)
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn grid_degenerate() {
        assert_eq!(grid(1, 1).num_edges(), 0);
        assert_eq!(grid(1, 5).num_edges(), 4); // a path
        assert_eq!(grid(0, 5).num_vertices(), 0);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.regular_degree(), Some(4));
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn torus_too_small() {
        let _ = torus(2, 5);
    }

    #[test]
    fn ladder_shape() {
        let g = ladder(5);
        assert_eq!(g.num_vertices(), 10);
        // 5 rungs + 2 rails of 4 = 13 edges.
        assert_eq!(g.num_edges(), 13);
        assert_eq!(g.degree(0), 2); // end vertex: rung + rail
        assert_eq!(g.degree(2), 3); // middle vertex
        assert!(traversal::is_connected(&g));
        assert!(traversal::bipartition(&g).is_some());
    }

    #[test]
    fn ladder_degenerate() {
        assert_eq!(ladder(1).num_edges(), 1);
        assert_eq!(ladder(0).num_vertices(), 0);
    }

    #[test]
    fn circular_ladder_is_3_regular() {
        let g = circular_ladder(6);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.regular_degree(), Some(3));
        assert_eq!(g.num_edges(), 18);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn binary_tree_is_acyclic() {
        let g = binary_tree(31);
        assert_eq!(g.num_edges(), 30); // n-1 edges + connected = tree
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn binary_tree_degenerate() {
        assert_eq!(binary_tree(0).num_vertices(), 0);
        assert_eq!(binary_tree(1).num_edges(), 0);
        assert_eq!(binary_tree(2).num_edges(), 1);
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.regular_degree(), Some(4));
        assert_eq!(g.num_edges(), 32);
        assert!(traversal::bipartition(&g).is_some());
    }

    #[test]
    fn hypercube_dim_zero() {
        let g = hypercube(0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.regular_degree(), Some(5));
    }

    #[test]
    fn star_and_wheel() {
        let s = star(7);
        assert_eq!(s.degree(0), 6);
        assert_eq!(s.num_edges(), 6);
        let w = wheel(7);
        assert_eq!(w.degree(6), 6); // hub
        assert_eq!(w.num_edges(), 12);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 11);
        assert!(traversal::is_connected(&g));
        // Spine interior vertex: 2 spine edges + 2 legs.
        assert_eq!(g.degree(1), 4);
    }
}
