//! Synthetic netlists with a Rent's-rule-flavored structure — the
//! hypergraph counterpart of [`crate::geometric`] for placement-style
//! experiments.
//!
//! Real circuit netlists have two statistical signatures the graph
//! models in this crate lack:
//!
//! 1. **Power-law net sizes.** Most nets are 2–3 pins, a few fan out
//!    widely; the size histogram follows `P(k) ∝ k^(−γ)` truncated to
//!    `[2, max_net_size]` (γ ≈ 2–3 empirically).
//! 2. **Locality.** Rent's rule (`pins ∝ cells^p`, p < 1) implies
//!    connectivity is mostly short-range: a region's external pin count
//!    grows sublinearly in its cell count. We induce this by laying the
//!    cells on a line and drawing each net's pins from a window of
//!    `locality · num_cells` cells around a uniformly random anchor —
//!    small windows give grid-like separators, `locality = 1` degrades
//!    to uniform (Gnp-like) connectivity.
//!
//! Generation *streams*: nets are drawn and appended one at a time, so
//! the working set beyond the netlist under construction is O(max net
//! size). Sampling is deterministic given the RNG state.

use bisect_graph::hypergraph::{Netlist, NetlistBuilder};
use rand::Rng;

use crate::GenError;

/// Parameters of the Rent-style random netlist model.
#[derive(Debug, Clone, PartialEq)]
pub struct RentNetlistParams {
    /// Number of cells.
    pub num_cells: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Largest net size; sizes are drawn from `[2, max_net_size]`.
    pub max_net_size: usize,
    /// Net-size power-law exponent γ ≥ 0: `P(k) ∝ k^(−γ)`. Larger γ
    /// concentrates mass on 2-pin nets; `γ = 0` is uniform.
    pub gamma: f64,
    /// Pin window as a fraction of the cell count, in `(0, 1]`: each
    /// net's pins are drawn from `⌈locality · num_cells⌉` consecutive
    /// cells around a random anchor. `1.0` disables locality.
    pub locality: f64,
}

impl RentNetlistParams {
    /// Validates and constructs the parameters.
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidParameter`] if `num_cells < 2`,
    /// `max_net_size` falls outside `[2, num_cells]`, `gamma` is not a
    /// finite non-negative number, or `locality` is outside `(0, 1]`.
    pub fn new(
        num_cells: usize,
        num_nets: usize,
        max_net_size: usize,
        gamma: f64,
        locality: f64,
    ) -> Result<RentNetlistParams, GenError> {
        if num_cells < 2 {
            return Err(GenError::InvalidParameter(format!(
                "need at least 2 cells, got {num_cells}"
            )));
        }
        if max_net_size < 2 || max_net_size > num_cells {
            return Err(GenError::InvalidParameter(format!(
                "max net size must be in [2, {num_cells}], got {max_net_size}"
            )));
        }
        if !gamma.is_finite() || gamma < 0.0 {
            return Err(GenError::InvalidParameter(format!(
                "gamma must be finite and non-negative, got {gamma}"
            )));
        }
        if !locality.is_finite() || locality <= 0.0 || locality > 1.0 {
            return Err(GenError::InvalidParameter(format!(
                "locality must be in (0, 1], got {locality}"
            )));
        }
        Ok(RentNetlistParams {
            num_cells,
            num_nets,
            max_net_size,
            gamma,
            locality,
        })
    }
}

/// Size CDF and pin window derived from the parameters; shared by the
/// buffered and streaming samplers so they draw identically.
fn net_model(params: &RentNetlistParams) -> (Vec<f64>, f64, usize) {
    // Cumulative size distribution over [2, max_net_size]: sizes are
    // few (≤ n), so CDF inversion by linear scan is exact and cheap.
    let weights: Vec<f64> = (2..=params.max_net_size)
        .map(|k| (k as f64).powf(-params.gamma))
        .collect();
    let total: f64 = weights.iter().sum();
    // Pin window: at least max_net_size wide so every size fits, and
    // never wider than the netlist.
    let window = ((params.locality * params.num_cells as f64).ceil() as usize)
        .max(params.max_net_size)
        .min(params.num_cells);
    (weights, total, window)
}

/// Draws one net's distinct pins into `pins`, consuming exactly the
/// randomness the net needs (size draw, anchor, rejection attempts).
fn draw_net<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    weights: &[f64],
    total: f64,
    window: usize,
    max_net_size: usize,
    pins: &mut Vec<u32>,
) {
    // Net size by CDF inversion.
    let mut draw = rng.gen::<f64>() * total;
    let mut size = max_net_size;
    for (i, &w) in weights.iter().enumerate() {
        draw -= w;
        if draw < 0.0 {
            size = i + 2;
            break;
        }
    }
    // Window of `window` consecutive cells around a random anchor,
    // clamped inside [0, n).
    let anchor = rng.gen_range(0..n);
    let lo = anchor.saturating_sub(window / 2).min(n - window);
    // Distinct pins by rejection; windows are much larger than nets
    // in practice, so collisions are rare. A deterministic sweep
    // from the anchor finishes off pathological cases (tiny window,
    // near-full net) without risking an unbounded loop.
    pins.clear();
    let mut attempts = 0usize;
    while pins.len() < size && attempts < 16 * size {
        attempts += 1;
        let c = (lo + rng.gen_range(0..window)) as u32;
        if !pins.contains(&c) {
            pins.push(c);
        }
    }
    let mut sweep = 0usize;
    while pins.len() < size {
        let c = (lo + sweep) as u32;
        sweep += 1;
        if !pins.contains(&c) {
            pins.push(c);
        }
    }
}

/// Samples a Rent-style random netlist; see the [module docs](self)
/// for the model.
pub fn sample<R: Rng + ?Sized>(rng: &mut R, params: &RentNetlistParams) -> Netlist {
    let n = params.num_cells;
    let (weights, total, window) = net_model(params);
    let mut builder = NetlistBuilder::new(n);
    let mut pins: Vec<u32> = Vec::with_capacity(params.max_net_size);
    for _ in 0..params.num_nets {
        draw_net(
            rng,
            n,
            &weights,
            total,
            window,
            params.max_net_size,
            &mut pins,
        );
        builder
            .add_net(&pins)
            // lint: allow(no-panic) — pins are distinct in-range cells and size ≥ 2
            .expect("distinct in-range pins");
    }
    builder.build()
}

/// Samples the same distribution as [`sample`] but feeds nets through
/// [`NetlistBuilder::stream`], so peak memory beyond the finished CSR
/// is O(max net size) instead of the builder's per-net `Vec` of pin
/// lists. Bit-identical to [`sample`] for the same RNG state.
///
/// The counting pass replays a clone of the generator, so the caller's
/// generator advances exactly as far as [`sample`] would.
pub fn sample_streamed<R: Rng + Clone>(rng: &mut R, params: &RentNetlistParams) -> Netlist {
    let n = params.num_cells;
    let (weights, total, window) = net_model(params);
    let mut replay = rng.clone();
    let mut pass = 0usize;
    let mut pins: Vec<u32> = Vec::with_capacity(params.max_net_size);
    NetlistBuilder::stream(n, |sink| {
        pass += 1;
        let r: &mut R = if pass == 1 { &mut replay } else { &mut *rng };
        for _ in 0..params.num_nets {
            draw_net(
                r,
                n,
                &weights,
                total,
                window,
                params.max_net_size,
                &mut pins,
            );
            sink.net(&pins)?;
        }
        Ok(())
    })
    // lint: allow(no-panic) — both passes replay identical RNG state, so
    // the pin stream cannot mismatch and every net is valid
    .expect("replayed passes emit identical valid nets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(
        cells: usize,
        nets: usize,
        max: usize,
        gamma: f64,
        locality: f64,
    ) -> RentNetlistParams {
        RentNetlistParams::new(cells, nets, max, gamma, locality).unwrap()
    }

    #[test]
    fn params_validate() {
        assert!(RentNetlistParams::new(1, 5, 2, 2.0, 0.5).is_err());
        assert!(RentNetlistParams::new(10, 5, 1, 2.0, 0.5).is_err());
        assert!(RentNetlistParams::new(10, 5, 11, 2.0, 0.5).is_err());
        assert!(RentNetlistParams::new(10, 5, 4, -1.0, 0.5).is_err());
        assert!(RentNetlistParams::new(10, 5, 4, f64::NAN, 0.5).is_err());
        assert!(RentNetlistParams::new(10, 5, 4, 2.0, 0.0).is_err());
        assert!(RentNetlistParams::new(10, 5, 4, 2.0, 1.5).is_err());
        assert!(RentNetlistParams::new(10, 5, 4, 2.0, 1.0).is_ok());
    }

    #[test]
    fn shape_matches_parameters() {
        let p = params(100, 150, 6, 2.5, 0.2);
        let nl = sample(&mut StdRng::seed_from_u64(1), &p);
        assert_eq!(nl.num_cells(), 100);
        assert_eq!(nl.num_nets(), 150);
        for n in nl.net_ids() {
            let pins = nl.pins(n);
            assert!(pins.len() >= 2 && pins.len() <= 6, "size {}", pins.len());
            let mut sorted: Vec<u32> = pins.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pins.len(), "duplicate pin in net");
            assert!(sorted.iter().all(|&c| (c as usize) < 100));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = params(80, 120, 5, 2.0, 0.3);
        let a = sample(&mut StdRng::seed_from_u64(7), &p);
        let b = sample(&mut StdRng::seed_from_u64(7), &p);
        assert_eq!(a, b);
    }

    #[test]
    fn gamma_skews_sizes_small() {
        // γ = 3 should give a much smaller mean net size than γ = 0
        // (uniform over [2, 8]).
        let skewed = sample(
            &mut StdRng::seed_from_u64(2),
            &params(200, 400, 8, 3.0, 1.0),
        );
        let uniform = sample(
            &mut StdRng::seed_from_u64(2),
            &params(200, 400, 8, 0.0, 1.0),
        );
        assert!(
            skewed.average_net_size() + 1.0 < uniform.average_net_size(),
            "skewed {} vs uniform {}",
            skewed.average_net_size(),
            uniform.average_net_size()
        );
    }

    #[test]
    fn locality_bounds_net_span() {
        // Every net's pins fit inside one window of consecutive cells.
        let p = params(1000, 300, 4, 2.0, 0.05);
        let nl = sample(&mut StdRng::seed_from_u64(3), &p);
        let window = (0.05f64 * 1000.0).ceil() as u32;
        for n in nl.net_ids() {
            let pins = nl.pins(n);
            let span = pins.iter().max().unwrap() - pins.iter().min().unwrap();
            assert!(span < window, "span {span} exceeds window {window}");
        }
    }

    #[test]
    fn streamed_sample_is_byte_identical_to_buffered() {
        // Grid over γ and locality, including the degenerate corners
        // that exercise the rejection sweep.
        for &(cells, nets, max, gamma, locality) in &[
            (100usize, 150usize, 6usize, 2.5f64, 0.2f64),
            (80, 120, 5, 2.0, 0.3),
            (200, 400, 8, 0.0, 1.0),
            (1000, 300, 4, 3.0, 0.05),
            (8, 20, 8, 0.0, 0.1),
            (2, 3, 2, 2.0, 1.0),
        ] {
            let p = params(cells, nets, max, gamma, locality);
            for seed in 0..4u64 {
                let mut rng_a = StdRng::seed_from_u64(seed);
                let mut rng_b = StdRng::seed_from_u64(seed);
                let a = sample(&mut rng_a, &p);
                let b = sample_streamed(&mut rng_b, &p);
                assert_eq!(a, b, "netlists diverge at seed {seed}");
                // The caller's generator must advance identically too.
                assert_eq!(
                    rng_a.gen::<u64>(),
                    rng_b.gen::<u64>(),
                    "rng state diverges at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn streamed_sample_uses_compact_offsets() {
        let p = params(500, 800, 6, 2.5, 0.1);
        let nl = sample_streamed(&mut StdRng::seed_from_u64(11), &p);
        assert!(nl.uses_compact_offsets());
    }

    #[test]
    fn full_nets_on_tiny_windows_terminate() {
        // max_net_size == window size forces the deterministic sweep.
        let p = params(8, 20, 8, 0.0, 0.1);
        let nl = sample(&mut StdRng::seed_from_u64(4), &p);
        assert_eq!(nl.num_nets(), 20);
        for n in nl.net_ids() {
            assert!(nl.pins(n).len() <= 8);
        }
    }
}
