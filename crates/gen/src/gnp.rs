//! The `Gnp(2n, p)` Erdős–Rényi model (§IV of the paper).
//!
//! Every one of the `C(2n, 2)` possible edges is present independently
//! with probability `p`; the expected average degree is `(2n-1)p`. The
//! paper observes that for fixed `p` these graphs have minimum bisection
//! close to half the edges — a random bisection is near optimal — so the
//! model "may not distinguish good heuristics from mediocre ones". It is
//! still reproduced here because the appendix reports `Gnp(5000, p)` and
//! `Gnp(2000, p)` tables.
//!
//! Sampling skips over absent edges geometrically, so the cost is
//! `O(n + m)` rather than `O(n²)`.

use bisect_graph::{EdgeStream, Graph, GraphBuilder, GraphError, VertexId};
use rand::Rng;

use crate::GenError;

/// Parameters of the `Gnp` model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnpParams {
    /// Number of vertices (the paper's `2n`).
    pub num_vertices: usize,
    /// Edge probability in `[0, 1]`.
    pub p: f64,
}

impl GnpParams {
    /// Validates and constructs the parameters.
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidParameter`] if `p` is not in `[0, 1]` or not
    /// finite.
    pub fn new(num_vertices: usize, p: f64) -> Result<GnpParams, GenError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(GenError::InvalidParameter(format!(
                "edge probability must be in [0, 1], got {p}"
            )));
        }
        Ok(GnpParams { num_vertices, p })
    }

    /// Parameters whose *expected average degree* is `avg_degree`:
    /// `p = avg_degree / (num_vertices - 1)`.
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidParameter`] if the implied `p` leaves `[0, 1]`
    /// or `num_vertices < 2`.
    pub fn with_average_degree(
        num_vertices: usize,
        avg_degree: f64,
    ) -> Result<GnpParams, GenError> {
        if num_vertices < 2 {
            return Err(GenError::InvalidParameter(
                "need at least 2 vertices to target an average degree".into(),
            ));
        }
        GnpParams::new(num_vertices, avg_degree / (num_vertices as f64 - 1.0))
    }

    /// The expected average degree `(num_vertices - 1) * p`.
    pub fn expected_average_degree(&self) -> f64 {
        (self.num_vertices.saturating_sub(1)) as f64 * self.p
    }
}

/// Samples a `Gnp` graph.
// lint: allow(no-panic) — u < v < n by the loop bounds, and unrank_pair
// yields a < b < n for positions < C(n,2).
pub fn sample<R: Rng + ?Sized>(rng: &mut R, params: &GnpParams) -> Graph {
    let n = params.num_vertices;
    let p = params.p;
    let mut builder = GraphBuilder::new(n);
    if n < 2 || p <= 0.0 {
        return builder.build();
    }
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                builder.add_edge(u, v).expect("complete graph edges valid");
            }
        }
        return builder.build();
    }
    // Geometric skipping over the linearized strict upper triangle
    // (Batagelj-Brandes): jump ~Geom(p) positions between present edges.
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    // Pre-size for the expected edge count plus slack for variance.
    let expected = (total_pairs as f64 * p).ceil() as usize;
    builder.reserve_edges(expected + expected / 8);
    let mut position: u64 = 0;
    // First gap is also geometric; start from -1 conceptually.
    while let Some((a, b)) = next_present_pair(rng, &mut position, n as u64, total_pairs, p) {
        builder
            .add_edge(a as VertexId, b as VertexId)
            .expect("unranked pairs are valid distinct vertices");
    }
    builder.build()
}

/// Samples a `Gnp` graph without materializing an edge list: edges are
/// streamed twice (from a cloned generator, then the caller's) straight
/// into the counting-sorted CSR build of [`GraphBuilder::stream`]. The
/// result and the caller-visible generator state are identical to
/// [`sample`] — this path just halves peak memory during construction,
/// which is what makes the `huge` bench profile's 10^6-vertex instances
/// comfortable.
pub fn sample_streamed<R: Rng + Clone>(rng: &mut R, params: &GnpParams) -> Graph {
    let n = params.num_vertices;
    let p = params.p;
    if n < 2 || p <= 0.0 {
        return GraphBuilder::new(n).build();
    }
    if p >= 1.0 {
        // The complete-graph path draws nothing from the generator.
        return sample(rng, params);
    }
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let mut replay = rng.clone();
    let mut pass = 0usize;
    GraphBuilder::stream(n, |sink| {
        pass += 1;
        // The counting pass replays a clone, so the caller's generator
        // advances exactly once — ending in the same state as `sample`.
        let r: &mut R = if pass == 1 { &mut replay } else { rng };
        emit_present_pairs(r, n as u64, total_pairs, p, sink)
    })
    // lint: allow(no-panic) — both passes replay the same generator state,
    // so the emitted sequences are identical and every pair is valid
    .expect("replayed Gnp passes emit identical valid edges")
}

/// Streams every present pair of one full geometric-skipping sweep into
/// `sink`.
fn emit_present_pairs<R: Rng + ?Sized>(
    rng: &mut R,
    n: u64,
    total_pairs: u64,
    p: f64,
    sink: &mut EdgeStream<'_>,
) -> Result<(), GraphError> {
    let mut position: u64 = 0;
    while let Some((a, b)) = next_present_pair(rng, &mut position, n, total_pairs, p) {
        sink.edge(a as VertexId, b as VertexId)?;
    }
    Ok(())
}

/// Advances the geometric skip chain by one draw and returns the next
/// present pair, or `None` once the position leaves the triangle. Shared
/// verbatim by [`sample`] and [`sample_streamed`] so both consume the
/// generator identically.
fn next_present_pair<R: Rng + ?Sized>(
    rng: &mut R,
    position: &mut u64,
    n: u64,
    total_pairs: u64,
    p: f64,
) -> Option<(u64, u64)> {
    let log_q = (1.0 - p).ln();
    let u: f64 = rng.gen::<f64>();
    // Skip of k means k absent pairs before the next present one.
    let skip = if u <= 0.0 {
        total_pairs
    } else {
        (u.ln() / log_q).floor() as u64
    };
    *position = position.saturating_add(skip);
    if *position >= total_pairs {
        return None;
    }
    let pair = unrank_pair(*position, n);
    *position += 1;
    Some(pair)
}

/// Maps a linear index in `0..C(n,2)` to the pair `(a, b)` with `a < b`,
/// enumerating pairs row by row: (0,1), (0,2), …, (0,n-1), (1,2), ….
fn unrank_pair(index: u64, n: u64) -> (u64, u64) {
    // Row a starts at offset a*n - a*(a+1)/2 - a ... solve directly by
    // walking rows; rows shrink so use the quadratic formula.
    // Offset of row a is S(a) = a*(2n - a - 1)/2.
    // Find largest a with S(a) <= index.
    let fa = n as f64 - 0.5;
    let disc = fa * fa - 2.0 * index as f64;
    let mut a = (fa - disc.max(0.0).sqrt()).floor() as u64;
    // Guard against floating point off-by-one.
    while row_offset(a + 1, n) <= index {
        a += 1;
    }
    while a > 0 && row_offset(a, n) > index {
        a -= 1;
    }
    let b = a + 1 + (index - row_offset(a, n));
    debug_assert!(a < b && b < n);
    (a, b)
}

fn row_offset(a: u64, n: u64) -> u64 {
    a * (2 * n - a - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_validate_probability() {
        assert!(GnpParams::new(10, -0.1).is_err());
        assert!(GnpParams::new(10, 1.5).is_err());
        assert!(GnpParams::new(10, f64::NAN).is_err());
        assert!(GnpParams::new(10, 0.5).is_ok());
    }

    #[test]
    fn with_average_degree_computes_p() {
        let p = GnpParams::with_average_degree(101, 4.0).unwrap();
        assert!((p.p - 0.04).abs() < 1e-12);
        assert!((p.expected_average_degree() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn with_average_degree_rejects_infeasible() {
        assert!(GnpParams::with_average_degree(1, 2.0).is_err());
        assert!(GnpParams::with_average_degree(5, 10.0).is_err());
    }

    #[test]
    fn p_zero_gives_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = sample(&mut rng, &GnpParams::new(50, 0.0).unwrap());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn p_one_gives_complete() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = sample(&mut rng, &GnpParams::new(20, 1.0).unwrap());
        assert_eq!(g.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn tiny_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            sample(&mut rng, &GnpParams::new(0, 0.5).unwrap()).num_vertices(),
            0
        );
        assert_eq!(
            sample(&mut rng, &GnpParams::new(1, 0.5).unwrap()).num_edges(),
            0
        );
    }

    #[test]
    fn unrank_pair_enumerates_all() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n * (n - 1) / 2 {
            let (a, b) = unrank_pair(i, n);
            assert!(a < b && b < n, "index {i} gave ({a},{b})");
            assert!(seen.insert((a, b)), "duplicate pair at index {i}");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn unrank_pair_order() {
        assert_eq!(unrank_pair(0, 5), (0, 1));
        assert_eq!(unrank_pair(3, 5), (0, 4));
        assert_eq!(unrank_pair(4, 5), (1, 2));
        assert_eq!(unrank_pair(9, 5), (3, 4));
    }

    #[test]
    fn edge_count_near_expectation() {
        let params = GnpParams::new(400, 0.05).unwrap();
        let expected = 400.0 * 399.0 / 2.0 * 0.05;
        let mut total = 0usize;
        let trials = 20;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            total += sample(&mut rng, &params).num_edges();
        }
        let mean = total as f64 / trials as f64;
        // Std dev of one draw is ~sqrt(m*(1-p)) ≈ 61; mean of 20 draws
        // has std ≈ 14. Allow 5 sigma.
        assert!(
            (mean - expected).abs() < 70.0,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = sample(&mut rng, &GnpParams::new(100, 0.1).unwrap());
        assert!(g.is_unit_weighted());
        for v in g.vertices() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn deterministic_given_rng_state() {
        let params = GnpParams::new(60, 0.2).unwrap();
        let a = sample(&mut StdRng::seed_from_u64(4), &params);
        let b = sample(&mut StdRng::seed_from_u64(4), &params);
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_matches_edge_list_sample() {
        for &(nv, p) in &[(60usize, 0.2), (200, 0.03), (5, 1.0), (40, 0.0), (1, 0.5)] {
            let params = GnpParams::new(nv, p).unwrap();
            let mut rng_a = StdRng::seed_from_u64(4);
            let mut rng_b = StdRng::seed_from_u64(4);
            let a = sample(&mut rng_a, &params);
            let b = sample_streamed(&mut rng_b, &params);
            assert_eq!(a, b, "nv={nv} p={p}");
            // The caller-visible generator state must also agree.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "nv={nv} p={p}");
        }
    }

    #[test]
    fn average_degree_close_to_target() {
        let params = GnpParams::with_average_degree(2000, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let g = sample(&mut rng, &params);
        assert!(
            (g.average_degree() - 3.0).abs() < 0.3,
            "avg {}",
            g.average_degree()
        );
    }
}
