//! Random graphs with prescribed degree sequences (configuration /
//! pairing model with rewiring repair).
//!
//! This is the substrate for [`gbreg`](crate::gbreg): stubs (half-edges)
//! are paired uniformly at random, and the defects of the pairing —
//! self loops and parallel edges — are removed by random edge *swaps*
//! that preserve the degree sequence. For the sparse (degree ≤ 4)
//! sequences of the paper the repair converges almost immediately; if it
//! stalls, the whole pairing is redrawn, and after
//! [`MAX_ATTEMPTS`] redraws construction fails.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use bisect_graph::VertexId;

use crate::GenError;

/// Number of full pairing redraws before giving up.
pub const MAX_ATTEMPTS: usize = 64;

const MAX_REPAIR_ROUNDS: usize = 200;
const SWAP_TRIES_PER_BAD_PAIR: usize = 32;

/// Samples a uniformly-ish random simple graph edge list realizing
/// `degrees` (vertex `v` gets exactly `degrees[v]` incident edges).
///
/// The distribution is the configuration model conditioned on
/// simplicity, up to the small bias introduced by swap-based repair —
/// the standard practical compromise.
///
/// # Errors
///
/// [`GenError::InvalidParameter`] if the degree sum is odd or any degree
/// is `>= degrees.len()`; [`GenError::ConstructionFailed`] if no simple
/// realization was found after [`MAX_ATTEMPTS`] redraws (for instance
/// because the sequence is not graphical).
pub fn sample_degree_sequence<R: Rng + ?Sized>(
    rng: &mut R,
    degrees: &[usize],
) -> Result<Vec<(VertexId, VertexId)>, GenError> {
    let n = degrees.len();
    let sum: usize = degrees.iter().sum();
    if !sum.is_multiple_of(2) {
        return Err(GenError::InvalidParameter(format!(
            "degree sum must be even, got {sum}"
        )));
    }
    if let Some((v, &d)) = degrees.iter().enumerate().find(|&(_, &d)| d >= n.max(1)) {
        return Err(GenError::InvalidParameter(format!(
            "degree {d} of vertex {v} is too large for a simple graph on {n} vertices"
        )));
    }
    if sum == 0 {
        return Ok(Vec::new());
    }
    let mut stubs: Vec<VertexId> = Vec::with_capacity(sum);
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    for attempt in 0..MAX_ATTEMPTS {
        stubs.shuffle(rng);
        let pairs: Vec<(VertexId, VertexId)> =
            stubs.chunks_exact(2).map(|c| norm(c[0], c[1])).collect();
        if let Some(fixed) = repair(rng, pairs) {
            return Ok(fixed);
        }
        let _ = attempt;
    }
    Err(GenError::ConstructionFailed {
        attempts: MAX_ATTEMPTS,
    })
}

/// Samples a random simple `d`-regular graph on `n` vertices as an edge
/// list.
///
/// # Errors
///
/// [`GenError::InvalidParameter`] if `n·d` is odd or `d >= n`;
/// [`GenError::ConstructionFailed`] if construction keeps failing (only
/// plausible for extreme `d` close to `n`).
pub fn sample_regular<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    d: usize,
) -> Result<Vec<(VertexId, VertexId)>, GenError> {
    if n.checked_mul(d).is_none_or(|s| s % 2 != 0) {
        return Err(GenError::InvalidParameter(format!(
            "n·d must be even, got n = {n}, d = {d}"
        )));
    }
    sample_degree_sequence(rng, &vec![d; n])
}

/// Samples a random simple *bipartite* graph between left vertices
/// `0..left.len()` and right vertices `0..right.len()` (ids in each
/// side's own namespace), realizing the two degree sequences. Returns
/// `(l, r)` pairs. Self loops cannot occur; parallel edges are repaired
/// by swaps.
///
/// # Errors
///
/// [`GenError::InvalidParameter`] if the two degree sums differ, or a
/// left degree exceeds the right side size (or vice versa);
/// [`GenError::ConstructionFailed`] if repair keeps failing.
pub fn sample_bipartite<R: Rng + ?Sized>(
    rng: &mut R,
    left: &[usize],
    right: &[usize],
) -> Result<Vec<(VertexId, VertexId)>, GenError> {
    let sum_l: usize = left.iter().sum();
    let sum_r: usize = right.iter().sum();
    if sum_l != sum_r {
        return Err(GenError::InvalidParameter(format!(
            "left degree sum {sum_l} != right degree sum {sum_r}"
        )));
    }
    if left.iter().any(|&d| d > right.len()) || right.iter().any(|&d| d > left.len()) {
        return Err(GenError::InvalidParameter(
            "a degree exceeds the opposite side's size".into(),
        ));
    }
    if sum_l == 0 {
        return Ok(Vec::new());
    }
    let mut left_stubs: Vec<VertexId> = Vec::with_capacity(sum_l);
    for (v, &d) in left.iter().enumerate() {
        left_stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    let mut right_stubs: Vec<VertexId> = Vec::with_capacity(sum_r);
    for (v, &d) in right.iter().enumerate() {
        right_stubs.extend(std::iter::repeat_n(v as VertexId, d));
    }
    for _ in 0..MAX_ATTEMPTS {
        left_stubs.shuffle(rng);
        right_stubs.shuffle(rng);
        let pairs: Vec<(VertexId, VertexId)> = left_stubs
            .iter()
            .zip(right_stubs.iter())
            .map(|(&l, &r)| (l, r))
            .collect();
        if let Some(fixed) = repair_bipartite(rng, pairs) {
            return Ok(fixed);
        }
    }
    Err(GenError::ConstructionFailed {
        attempts: MAX_ATTEMPTS,
    })
}

fn norm(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

fn is_bad(pair: (VertexId, VertexId), counts: &BTreeMap<(VertexId, VertexId), u32>) -> bool {
    pair.0 == pair.1 || counts.get(&pair).copied().unwrap_or(0) > 1
}

fn dec(counts: &mut BTreeMap<(VertexId, VertexId), u32>, pair: (VertexId, VertexId)) {
    if let Some(c) = counts.get_mut(&pair) {
        *c -= 1;
        if *c == 0 {
            counts.remove(&pair);
        }
    }
}

fn inc(counts: &mut BTreeMap<(VertexId, VertexId), u32>, pair: (VertexId, VertexId)) {
    *counts.entry(pair).or_insert(0) += 1;
}

/// Swap-based repair for general (one-sided) pairings: eliminates self
/// loops and duplicates while preserving the degree sequence. Returns
/// `None` if it stalls.
fn repair<R: Rng + ?Sized>(
    rng: &mut R,
    mut pairs: Vec<(VertexId, VertexId)>,
) -> Option<Vec<(VertexId, VertexId)>> {
    let mut counts: BTreeMap<(VertexId, VertexId), u32> = BTreeMap::new();
    for &p in &pairs {
        inc(&mut counts, p);
    }
    for _round in 0..MAX_REPAIR_ROUNDS {
        let bad: Vec<usize> = (0..pairs.len())
            .filter(|&i| is_bad(pairs[i], &counts))
            .collect();
        if bad.is_empty() {
            return Some(pairs);
        }
        let mut progress = false;
        for &i in &bad {
            if !is_bad(pairs[i], &counts) {
                continue; // fixed by an earlier swap this round
            }
            for _ in 0..SWAP_TRIES_PER_BAD_PAIR {
                let j = rng.gen_range(0..pairs.len());
                if j == i {
                    continue;
                }
                let (u, v) = pairs[i];
                let (mut x, mut y) = pairs[j];
                if rng.gen::<bool>() {
                    std::mem::swap(&mut x, &mut y);
                }
                // Rewire (u,v),(x,y) -> (u,x),(v,y).
                if u == x || v == y {
                    continue;
                }
                let e1 = norm(u, x);
                let e2 = norm(v, y);
                if e1 == e2 {
                    continue;
                }
                dec(&mut counts, pairs[i]);
                dec(&mut counts, pairs[j]);
                if counts.contains_key(&e1) || counts.contains_key(&e2) {
                    inc(&mut counts, pairs[i]);
                    inc(&mut counts, pairs[j]);
                    continue;
                }
                inc(&mut counts, e1);
                inc(&mut counts, e2);
                pairs[i] = e1;
                pairs[j] = e2;
                progress = true;
                break;
            }
        }
        if !progress {
            return None;
        }
    }
    None
}

/// Swap-based repair for bipartite pairings `(l, r)`: eliminates
/// duplicate pairs while preserving both degree sequences.
fn repair_bipartite<R: Rng + ?Sized>(
    rng: &mut R,
    mut pairs: Vec<(VertexId, VertexId)>,
) -> Option<Vec<(VertexId, VertexId)>> {
    let mut counts: BTreeMap<(VertexId, VertexId), u32> = BTreeMap::new();
    for &p in &pairs {
        inc(&mut counts, p);
    }
    let dup = |p: (VertexId, VertexId), counts: &BTreeMap<_, u32>| {
        counts.get(&p).copied().unwrap_or(0) > 1
    };
    for _round in 0..MAX_REPAIR_ROUNDS {
        let bad: Vec<usize> = (0..pairs.len())
            .filter(|&i| dup(pairs[i], &counts))
            .collect();
        if bad.is_empty() {
            return Some(pairs);
        }
        let mut progress = false;
        for &i in &bad {
            if !dup(pairs[i], &counts) {
                continue;
            }
            for _ in 0..SWAP_TRIES_PER_BAD_PAIR {
                let j = rng.gen_range(0..pairs.len());
                if j == i {
                    continue;
                }
                let (l1, r1) = pairs[i];
                let (l2, r2) = pairs[j];
                // Swap right endpoints: (l1,r2), (l2,r1).
                let e1 = (l1, r2);
                let e2 = (l2, r1);
                if e1 == e2 {
                    continue;
                }
                dec(&mut counts, pairs[i]);
                dec(&mut counts, pairs[j]);
                if counts.contains_key(&e1) || counts.contains_key(&e2) {
                    inc(&mut counts, pairs[i]);
                    inc(&mut counts, pairs[j]);
                    continue;
                }
                inc(&mut counts, e1);
                inc(&mut counts, e2);
                pairs[i] = e1;
                pairs[j] = e2;
                progress = true;
                break;
            }
        }
        if !progress {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_simple(pairs: &[(VertexId, VertexId)]) {
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in pairs {
            assert_ne!(u, v, "self loop");
            assert!(seen.insert(norm(u, v)), "duplicate edge ({u},{v})");
        }
    }

    fn degrees_of(n: usize, pairs: &[(VertexId, VertexId)]) -> Vec<usize> {
        let mut deg = vec![0usize; n];
        for &(u, v) in pairs {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg
    }

    #[test]
    fn rejects_odd_degree_sum() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            sample_degree_sequence(&mut rng, &[1, 1, 1]),
            Err(GenError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rejects_degree_too_large() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_degree_sequence(&mut rng, &[3, 1, 1, 1]).is_ok());
        assert!(sample_degree_sequence(&mut rng, &[4, 1, 1, 2]).is_err());
    }

    #[test]
    fn zero_degrees_ok() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_degree_sequence(&mut rng, &[0, 0, 0])
            .unwrap()
            .is_empty());
        assert!(sample_degree_sequence(&mut rng, &[]).unwrap().is_empty());
    }

    #[test]
    fn realizes_degree_sequence() {
        let degrees = vec![3, 2, 2, 1, 2, 2];
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pairs = sample_degree_sequence(&mut rng, &degrees).unwrap();
            check_simple(&pairs);
            assert_eq!(degrees_of(6, &pairs), degrees, "seed {seed}");
        }
    }

    #[test]
    fn regular_graphs_are_regular_and_simple() {
        for &(n, d) in &[(10, 3), (20, 4), (8, 2), (50, 3), (9, 4)] {
            let mut rng = StdRng::seed_from_u64((n * 100 + d) as u64);
            let pairs = sample_regular(&mut rng, n, d).unwrap();
            check_simple(&pairs);
            assert_eq!(degrees_of(n, &pairs), vec![d; n], "n={n} d={d}");
        }
    }

    #[test]
    fn regular_rejects_odd_product() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_regular(&mut rng, 5, 3).is_err());
    }

    #[test]
    fn regular_rejects_degree_ge_n() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_regular(&mut rng, 4, 4).is_err());
    }

    #[test]
    fn near_complete_regular_succeeds() {
        // d = n-1 forces the complete graph, the hardest repair case.
        let mut rng = StdRng::seed_from_u64(12);
        let pairs = sample_regular(&mut rng, 8, 7).unwrap();
        check_simple(&pairs);
        assert_eq!(pairs.len(), 8 * 7 / 2);
    }

    #[test]
    fn large_sparse_regular_fast() {
        let mut rng = StdRng::seed_from_u64(1989);
        let pairs = sample_regular(&mut rng, 5000, 3).unwrap();
        check_simple(&pairs);
        assert_eq!(pairs.len(), 5000 * 3 / 2);
    }

    #[test]
    fn bipartite_rejects_mismatched_sums() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_bipartite(&mut rng, &[1, 1], &[1]).is_err());
    }

    #[test]
    fn bipartite_rejects_oversized_degree() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_bipartite(&mut rng, &[3], &[1, 1, 1]).is_ok());
        // Left degree 5 exceeds the 4 right vertices.
        assert!(sample_bipartite(&mut rng, &[5, 0], &[2, 1, 1, 1]).is_err());
    }

    #[test]
    fn bipartite_realizes_degrees_no_duplicates() {
        let left = vec![2, 1, 0, 3];
        let right = vec![1, 1, 2, 2];
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pairs = sample_bipartite(&mut rng, &left, &right).unwrap();
            let mut seen = std::collections::HashSet::new();
            let mut dl = vec![0usize; 4];
            let mut dr = vec![0usize; 4];
            for &(l, r) in &pairs {
                assert!(seen.insert((l, r)), "duplicate cross pair");
                dl[l as usize] += 1;
                dr[r as usize] += 1;
            }
            assert_eq!(dl, left);
            assert_eq!(dr, right);
        }
    }

    #[test]
    fn bipartite_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_bipartite(&mut rng, &[0, 0], &[0])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn bipartite_complete() {
        let mut rng = StdRng::seed_from_u64(3);
        let pairs = sample_bipartite(&mut rng, &[3, 3, 3], &[3, 3, 3]).unwrap();
        assert_eq!(pairs.len(), 9);
        let set: std::collections::HashSet<_> = pairs.into_iter().collect();
        assert_eq!(set.len(), 9);
    }
}
