//! The `Gbreg(2n, b, d)` model of Bui, Chaudhuri, Leighton & Sipser
//! (Combinatorica 1987) — the paper's primary test model (§IV).
//!
//! `Gbreg(2n, b, d)` is the class of simple `d`-regular graphs on `2n`
//! vertices with exactly `b` edges crossing the planted bisection
//! `A = 0..n` vs `B = n..2n`, so the bisection width is at most `b`.
//! For `b` well below the typical cut of a random regular graph, the
//! planted bisection is with high probability the unique minimum, which
//! is what makes the model useful: "this model overcomes the weakness of
//! `Gnp`" and, unlike `G2set`, can plant a *small* unique bisection in a
//! *small-degree* graph.
//!
//! Construction: distribute `b` cross stubs over each side (each vertex
//! at most `d`), realize the cross edges as a random simple bipartite
//! graph with those degrees, then realize each side's residual degree
//! sequence (`d` minus cross degree) as a random simple graph — both via
//! the repaired configuration model in [`crate::regular`].
//!
//! The paper notes degree-2 instances are disjoint unions of chordless
//! cycles with true optimum ≤ 2; tests below check that shape.

use bisect_graph::{Graph, GraphBuilder, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{regular, GenError};

/// Parameters of the `Gbreg` model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GbregParams {
    /// Total number of vertices (the paper's `2n`); must be even.
    pub num_vertices: usize,
    /// Exact number of planted cross edges (bisection width ≤ `b`).
    pub b: usize,
    /// Degree of every vertex.
    pub d: usize,
}

impl GbregParams {
    /// Validates and constructs the parameters.
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidParameter`] unless all of:
    /// `num_vertices` positive and even; `d < n` (so each side can be
    /// simple); `b ≤ n·d` (enough stubs) and `b ≤ n²` (enough distinct
    /// cross pairs); and `n·d − b` even (each side's residual degree sum
    /// must be even).
    pub fn new(num_vertices: usize, b: usize, d: usize) -> Result<GbregParams, GenError> {
        if num_vertices == 0 || !num_vertices.is_multiple_of(2) {
            return Err(GenError::InvalidParameter(format!(
                "number of vertices must be positive and even, got {num_vertices}"
            )));
        }
        let n = num_vertices / 2;
        if d >= n {
            return Err(GenError::InvalidParameter(format!(
                "degree d = {d} must be smaller than the side size n = {n}"
            )));
        }
        if b > n * d {
            return Err(GenError::InvalidParameter(format!(
                "b = {b} exceeds the {} cross stubs available per side (n·d)",
                n * d
            )));
        }
        if b > n * n {
            return Err(GenError::InvalidParameter(format!(
                "b = {b} exceeds the {} distinct cross pairs (n²)",
                n * n
            )));
        }
        if !(n * d).wrapping_sub(b).is_multiple_of(2) {
            return Err(GenError::InvalidParameter(format!(
                "n·d − b must be even (each side's internal degree sum), got n·d = {}, b = {b}",
                n * d
            )));
        }
        Ok(GbregParams { num_vertices, b, d })
    }

    /// Half the vertex count (side size `n`).
    pub fn side_size(&self) -> usize {
        self.num_vertices / 2
    }
}

/// Samples a `Gbreg` graph. Side A is `0..n`, side B is `n..2n`; the
/// planted bisection crosses exactly `b` edges.
///
/// # Errors
///
/// [`GenError::ConstructionFailed`] if the randomized construction
/// (including the per-side residual sequences, which can occasionally be
/// non-graphical) fails repeatedly. For the paper's parameter ranges
/// this is vanishingly rare.
pub fn sample<R: Rng + ?Sized>(rng: &mut R, params: &GbregParams) -> Result<Graph, GenError> {
    let n = params.side_size();
    let (b, d) = (params.b, params.d);
    let mut last_err = GenError::ConstructionFailed {
        attempts: regular::MAX_ATTEMPTS,
    };
    for _ in 0..regular::MAX_ATTEMPTS {
        // 1. Cross degrees: b stubs per side, each vertex at most d.
        //    Taking the first b entries of a shuffled list containing
        //    each vertex d times caps per-vertex cross degree at d.
        let cross_a = draw_cross_degrees(rng, n, d, b);
        let cross_b = draw_cross_degrees(rng, n, d, b);

        // 2. Cross edges: simple bipartite realization.
        let cross = match regular::sample_bipartite(rng, &cross_a, &cross_b) {
            Ok(pairs) => pairs,
            Err(e) => {
                last_err = e;
                continue;
            }
        };

        // 3. Internal edges of each side.
        let resid_a: Vec<usize> = cross_a.iter().map(|&c| d - c).collect();
        let resid_b: Vec<usize> = cross_b.iter().map(|&c| d - c).collect();
        let internal_a = match regular::sample_degree_sequence(rng, &resid_a) {
            Ok(pairs) => pairs,
            Err(e) => {
                last_err = e;
                continue;
            }
        };
        let internal_b = match regular::sample_degree_sequence(rng, &resid_b) {
            Ok(pairs) => pairs,
            Err(e) => {
                last_err = e;
                continue;
            }
        };

        // Stream the three staged pair lists straight into the CSR
        // build: the closure re-scans the same arrays on both passes, so
        // no `(u, v, w)` edge list is ever materialized on top of them.
        let g = GraphBuilder::stream(params.num_vertices, |sink| {
            for &(u, v) in &internal_a {
                sink.edge(u, v)?;
            }
            for &(u, v) in &internal_b {
                sink.edge(u + n as VertexId, v + n as VertexId)?;
            }
            for &(a, bb) in &cross {
                sink.edge(a, bb + n as VertexId)?;
            }
            Ok(())
        })
        // lint: allow(no-panic) — sampled half-ids are < n, shifts stay in range,
        // and both passes scan the same staged arrays
        .expect("staged Gbreg edges valid");
        debug_assert_eq!(g.regular_degree(), Some(d));
        return Ok(g);
    }
    Err(last_err)
}

/// Picks cross-degree counts for one side: `b` stubs spread over `n`
/// vertices with each vertex getting at most `d`, by taking the first
/// `b` entries of a shuffled list with `d` copies of each vertex.
fn draw_cross_degrees<R: Rng + ?Sized>(rng: &mut R, n: usize, d: usize, b: usize) -> Vec<usize> {
    let mut stubs: Vec<u32> = Vec::with_capacity(n * d);
    for v in 0..n as u32 {
        stubs.extend(std::iter::repeat_n(v, d));
    }
    stubs.shuffle(rng);
    let mut counts = vec![0usize; n];
    for &v in &stubs[..b] {
        counts[v as usize] += 1;
    }
    counts
}

/// The planted bisection width bound `b` of a `Gbreg` instance, i.e. the
/// cut of the planted sides. Provided for symmetry with the harness.
pub fn planted_cut(g: &Graph) -> u64 {
    let n = g.num_vertices() / 2;
    g.edges()
        .filter(|&(u, v, _)| ((u as usize) < n) != ((v as usize) < n))
        .map(|(_, _, w)| w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_reject_odd_vertices() {
        assert!(GbregParams::new(9, 2, 3).is_err());
        assert!(GbregParams::new(0, 0, 1).is_err());
    }

    #[test]
    fn params_reject_large_degree() {
        assert!(GbregParams::new(10, 1, 5).is_err());
        assert!(GbregParams::new(10, 2, 4).is_ok());
    }

    #[test]
    fn params_reject_parity_violation() {
        // n = 5, d = 3: n·d = 15 odd, so b must be odd.
        assert!(GbregParams::new(10, 2, 3).is_err());
        assert!(GbregParams::new(10, 3, 3).is_ok());
    }

    #[test]
    fn params_reject_excess_b() {
        // n = 4, d = 2: n·d = 8.
        assert!(GbregParams::new(8, 10, 2).is_err());
        assert!(GbregParams::new(8, 8, 2).is_ok());
    }

    #[test]
    fn sampled_graph_is_regular_with_exact_cut() {
        for &(nv, b, d) in &[(20, 2, 3), (20, 4, 4), (40, 6, 3), (100, 10, 4), (60, 0, 4)] {
            let params = GbregParams::new(nv, b, d).unwrap();
            for seed in 0..5 {
                let mut rng = StdRng::seed_from_u64(seed * 1000 + nv as u64);
                let g = sample(&mut rng, &params).unwrap();
                assert_eq!(g.num_vertices(), nv);
                assert_eq!(
                    g.regular_degree(),
                    Some(d),
                    "nv={nv} b={b} d={d} seed={seed}"
                );
                assert_eq!(planted_cut(&g), b as u64, "nv={nv} b={b} d={d} seed={seed}");
                assert!(g.is_unit_weighted());
            }
        }
    }

    #[test]
    fn degree_two_instances_are_unions_of_cycles() {
        let params = GbregParams::new(40, 4, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let g = sample(&mut rng, &params).unwrap();
        // Every vertex has degree 2 and the graph is simple, so each
        // component is a chordless cycle (the paper's remark).
        assert_eq!(g.regular_degree(), Some(2));
        for (comp, _) in bisect_graph::subgraph::split_components(&g).unwrap() {
            assert_eq!(comp.num_edges(), comp.num_vertices());
        }
    }

    #[test]
    fn zero_cross_edges_disconnect_sides() {
        let params = GbregParams::new(24, 0, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let g = sample(&mut rng, &params).unwrap();
        assert_eq!(planted_cut(&g), 0);
    }

    #[test]
    fn large_instance_matches_paper_scale() {
        // The appendix's largest setting: 5000 vertices, degree 3.
        let params = GbregParams::new(5000, 16, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1989);
        let g = sample(&mut rng, &params).unwrap();
        assert_eq!(g.regular_degree(), Some(3));
        assert_eq!(planted_cut(&g), 16);
        assert_eq!(g.num_edges(), 7500);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = GbregParams::new(50, 5, 3).unwrap();
        let a = sample(&mut StdRng::seed_from_u64(2), &params).unwrap();
        let b = sample(&mut StdRng::seed_from_u64(2), &params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let params = GbregParams::new(50, 5, 3).unwrap();
        let a = sample(&mut StdRng::seed_from_u64(2), &params).unwrap();
        let b = sample(&mut StdRng::seed_from_u64(3), &params).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn side_size_accessor() {
        let params = GbregParams::new(10, 1, 3).unwrap();
        assert_eq!(params.side_size(), 5);
    }

    #[test]
    fn max_cross_degree_respected() {
        // b = n·d forces every vertex to have all stubs crossing.
        let params = GbregParams::new(12, 12, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let g = sample(&mut rng, &params).unwrap();
        assert_eq!(planted_cut(&g), 12);
        // All edges cross: internal degree 0 everywhere.
        assert_eq!(g.num_edges(), 12);
    }
}
