//! Random geometric graphs — `n` points uniform in the unit square,
//! edges between pairs at distance ≤ `radius`.
//!
//! Not part of the paper's model zoo, but the natural synthetic stand-in
//! for placement-style instances (cells on a die, mostly-local
//! connectivity): geometric graphs have small separators like grids but
//! irregular degrees like netlists. Used by the placement example and
//! the extension benches.
//!
//! Sampling uses a uniform grid of buckets with cell side `radius`, so
//! the cost is `O(n + m)` in expectation rather than `O(n²)`.

use bisect_graph::{Graph, GraphBuilder, VertexId};
use rand::Rng;

use crate::GenError;

/// Parameters of the random geometric model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricParams {
    /// Number of points (vertices).
    pub num_vertices: usize,
    /// Connection radius in `(0, √2]`.
    pub radius: f64,
}

impl GeometricParams {
    /// Validates and constructs the parameters.
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidParameter`] if `radius` is not finite and
    /// positive.
    pub fn new(num_vertices: usize, radius: f64) -> Result<GeometricParams, GenError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(GenError::InvalidParameter(format!(
                "radius must be positive and finite, got {radius}"
            )));
        }
        Ok(GeometricParams {
            num_vertices,
            radius,
        })
    }

    /// Parameters whose *expected average degree* is approximately
    /// `avg_degree` (ignoring boundary effects):
    /// `radius = sqrt(avg_degree / (π (n−1)))`.
    ///
    /// # Errors
    ///
    /// [`GenError::InvalidParameter`] if `avg_degree` is not positive
    /// or `num_vertices < 2`.
    pub fn with_average_degree(
        num_vertices: usize,
        avg_degree: f64,
    ) -> Result<GeometricParams, GenError> {
        if num_vertices < 2 {
            return Err(GenError::InvalidParameter(
                "need at least 2 vertices to target an average degree".into(),
            ));
        }
        if !avg_degree.is_finite() || avg_degree <= 0.0 {
            return Err(GenError::InvalidParameter(format!(
                "average degree must be positive, got {avg_degree}"
            )));
        }
        let radius = (avg_degree / (std::f64::consts::PI * (num_vertices as f64 - 1.0))).sqrt();
        GeometricParams::new(num_vertices, radius)
    }
}

/// Samples a random geometric graph; returns the graph together with
/// the point coordinates (useful for plotting or placement demos).
pub fn sample_with_points<R: Rng + ?Sized>(
    rng: &mut R,
    params: &GeometricParams,
) -> (Graph, Vec<(f64, f64)>) {
    let n = params.num_vertices;
    let r = params.radius;
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut builder = GraphBuilder::new(n);
    if n == 0 {
        return (builder.build(), points);
    }
    // Bucket grid with cell side >= r: all neighbors of a point lie in
    // its own or the 8 adjacent cells.
    let cells = ((1.0 / r).floor() as usize).clamp(1, n.max(1));
    let cell_of = |x: f64| (((x * cells as f64) as usize).min(cells - 1)) as isize;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in points.iter().enumerate() {
        buckets[cell_of(y) as usize * cells + cell_of(x) as usize].push(i as VertexId);
    }
    let r2 = r * r;
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx >= cells as isize || ny >= cells as isize {
                    continue;
                }
                for &j in &buckets[ny as usize * cells + nx as usize] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = points[j as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        builder
                            .add_edge(i as VertexId, j)
                            // lint: allow(no-panic) — grid-bucket neighbors are distinct in-range points
                            .expect("distinct in-range ids");
                    }
                }
            }
        }
    }
    (builder.build(), points)
}

/// Samples a random geometric graph (coordinates discarded).
pub fn sample<R: Rng + ?Sized>(rng: &mut R, params: &GeometricParams) -> Graph {
    sample_with_points(rng, params).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_validate_radius() {
        assert!(GeometricParams::new(10, 0.0).is_err());
        assert!(GeometricParams::new(10, -1.0).is_err());
        assert!(GeometricParams::new(10, f64::NAN).is_err());
        assert!(GeometricParams::new(10, 0.3).is_ok());
    }

    #[test]
    fn with_average_degree_validates() {
        assert!(GeometricParams::with_average_degree(1, 3.0).is_err());
        assert!(GeometricParams::with_average_degree(100, 0.0).is_err());
        assert!(GeometricParams::with_average_degree(100, 4.0).is_ok());
    }

    #[test]
    fn edges_respect_radius_exactly() {
        let params = GeometricParams::new(200, 0.15).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (g, points) = sample_with_points(&mut rng, &params);
        // Every edge within radius; every non-edge beyond radius.
        let dist2 = |i: usize, j: usize| {
            let (xi, yi) = points[i];
            let (xj, yj) = points[j];
            (xi - xj) * (xi - xj) + (yi - yj) * (yi - yj)
        };
        for (u, v, _) in g.edges() {
            assert!(dist2(u as usize, v as usize) <= 0.15 * 0.15 + 1e-12);
        }
        for i in 0..200 {
            for j in (i + 1)..200 {
                if dist2(i, j) <= 0.15 * 0.15 {
                    assert!(g.has_edge(i as u32, j as u32), "missing edge ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn average_degree_near_target() {
        let params = GeometricParams::with_average_degree(2000, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let g = sample(&mut rng, &params);
        // Boundary effects push the realized degree below target.
        assert!(
            g.average_degree() > 3.0 && g.average_degree() < 7.5,
            "avg {}",
            g.average_degree()
        );
    }

    #[test]
    fn tiny_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, pts) = sample_with_points(&mut rng, &GeometricParams::new(0, 0.5).unwrap());
        assert_eq!(g.num_vertices(), 0);
        assert!(pts.is_empty());
        let g = sample(&mut rng, &GeometricParams::new(1, 0.5).unwrap());
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn huge_radius_gives_complete_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = sample(&mut rng, &GeometricParams::new(12, 1.5).unwrap());
        assert_eq!(g.num_edges(), 12 * 11 / 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = GeometricParams::new(100, 0.2).unwrap();
        let a = sample(&mut StdRng::seed_from_u64(9), &params);
        let b = sample(&mut StdRng::seed_from_u64(9), &params);
        assert_eq!(a, b);
    }
}
