use std::error::Error;
use std::fmt;

/// Errors from the graph generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GenError {
    /// A parameter combination is infeasible or out of range (message
    /// explains which constraint failed).
    InvalidParameter(String),
    /// Randomized construction failed to produce a simple graph after
    /// the configured number of restarts (can happen for extreme
    /// near-complete parameter choices).
    ConstructionFailed {
        /// How many full restarts were attempted.
        attempts: usize,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidParameter(message) => write!(f, "invalid parameter: {message}"),
            GenError::ConstructionFailed { attempts } => {
                write!(
                    f,
                    "randomized construction failed after {attempts} attempts"
                )
            }
        }
    }
}

impl Error for GenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = GenError::InvalidParameter("d must be < n".into());
        assert_eq!(e.to_string(), "invalid parameter: d must be < n");
    }

    #[test]
    fn display_construction_failed() {
        let e = GenError::ConstructionFailed { attempts: 40 };
        assert!(e.to_string().contains("40"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GenError>();
    }
}
