//! Property test for the streaming Rent netlist build: for any valid
//! parameters and seed, `sample_streamed` must produce a netlist
//! byte-identical to the buffered `sample`, and must leave the caller's
//! RNG in the same state.

use bisect_gen::netlist::{sample, sample_streamed, RentNetlistParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_is_byte_identical_to_builder(
        cells in 2usize..400,
        nets in 0usize..300,
        max_raw in 2usize..12,
        gamma_tenths in 0u32..35,
        locality_pct in 1u32..=100,
        seed in 0u64..1_000_000,
    ) {
        let max = max_raw.min(cells);
        let params = RentNetlistParams::new(
            cells,
            nets,
            max,
            f64::from(gamma_tenths) / 10.0,
            f64::from(locality_pct) / 100.0,
        )
        .expect("sampled parameters are valid by construction");
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let buffered = sample(&mut rng_a, &params);
        let streamed = sample_streamed(&mut rng_b, &params);
        prop_assert_eq!(&buffered, &streamed);
        prop_assert!(streamed.uses_compact_offsets());
        // The counting pass replays a clone, so the caller's generator
        // advances exactly once.
        prop_assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }
}
