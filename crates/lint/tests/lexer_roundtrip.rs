//! Property tests for the lexer's central guarantee: it partitions any
//! input — valid Rust or byte soup — into contiguous tokens whose
//! concatenation reproduces the source exactly, without panicking.

use bisect_lint::{lex, TokenKind};
use proptest::prelude::*;

/// Rust-ish fragments, including every literal form the lexer special-
/// cases and several deliberately malformed ones (unterminated string,
/// lone quote, unclosed block comment).
const FRAGMENTS: [&str; 28] = [
    "fn f() {",
    "}",
    "let x = 1_000u64;",
    "\"str \\\" esc\\n\"",
    "// line comment\n",
    "/* block /* nested */ */",
    "/* unclosed",
    "r#\"raw \" inner\"#",
    "br##\"bytes\"##",
    "r#type",
    "'a",
    "'x'",
    "b'\\n'",
    "0..10",
    "1.5e-3",
    "#[cfg(test)]",
    "::",
    ".unwrap()",
    "vec![1, 2]",
    "\"unterminated",
    "'",
    "\u{1F980}",
    "\n",
    "    ",
    "/* outer /* r##\"text\"## */ tail */",
    "/* a /* r#\" */ \"# */",
    "'static",
    "<'a>",
];

/// Asserts the partition invariant: tokens are contiguous, start at 0,
/// end at `src.len()`, and concatenate back to `src`.
fn check_partition(src: &str) -> Result<(), TestCaseError> {
    let tokens = lex(src);
    let mut pos = 0usize;
    let mut rebuilt = String::with_capacity(src.len());
    for t in &tokens {
        prop_assert_eq!(t.start, pos, "gap or overlap at byte {}", pos);
        prop_assert!(t.end > t.start, "empty token at byte {}", pos);
        pos = t.end;
        rebuilt.push_str(t.text(src));
    }
    prop_assert_eq!(pos, src.len());
    prop_assert_eq!(rebuilt.as_str(), src);
    // Reported lines never decrease along the stream.
    for w in tokens.windows(2) {
        prop_assert!(w[0].line <= w[1].line);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_lex_into_a_partition(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_partition(&src)?;
    }

    #[test]
    fn rust_fragment_soup_lexes_into_a_partition(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        check_partition(&src)?;
        // Lexing is a pure function of the input.
        prop_assert_eq!(lex(&src), lex(&src));
    }

    #[test]
    fn identifiers_never_surface_inside_literals_or_comments(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 1..20),
    ) {
        // Wrap the soup in a string literal: however adversarial the
        // contents, nothing inside may lex as an identifier, which is
        // what keeps the rules blind to names in strings.
        let inner: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i].replace(['"', '\\'], "_"))
            .collect();
        let src = format!("\"{inner}\"");
        let tokens = lex(&src);
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(tokens[0].kind, TokenKind::Str);
    }
}

/// The non-comment, non-whitespace kinds of `src`, with their text.
fn code_tokens(src: &str) -> Vec<(TokenKind, &str)> {
    lex(src)
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|t| (t.kind, t.text(src)))
        .collect()
}

#[test]
fn raw_string_hashes_inside_nested_block_comments_are_plain_text() {
    // Comment nesting does not understand string syntax (rustc
    // semantics): the `r##"…"##` is inert text, and the comment closes
    // on the second `*/` because the first closed the inner `/*`.
    let src = "/* outer /* r##\"text\"## */ tail */ fn f() {}";
    check_partition(src).expect("partition holds");
    let tokens = lex(src);
    assert_eq!(tokens[0].kind, TokenKind::BlockComment);
    assert_eq!(tokens[0].text(src), "/* outer /* r##\"text\"## */ tail */");
    assert_eq!(
        code_tokens(src),
        [
            (TokenKind::Ident, "fn"),
            (TokenKind::Ident, "f"),
            (TokenKind::Punct, "("),
            (TokenKind::Punct, ")"),
            (TokenKind::Punct, "{"),
            (TokenKind::Punct, "}"),
        ]
    );
}

#[test]
fn raw_string_containing_comment_close_still_closes_the_comment() {
    // A `*/` inside raw-string-looking text counts against the
    // nesting depth, exactly as rustc lexes it: the comment ends at
    // the `*/` after `"#`, leaving `rest */` as code.
    let src = "/* a /* r#\" */ \"# */ rest */";
    check_partition(src).expect("partition holds");
    let tokens = lex(src);
    assert_eq!(tokens[0].kind, TokenKind::BlockComment);
    assert_eq!(tokens[0].text(src), "/* a /* r#\" */ \"# */");
    assert_eq!(
        code_tokens(src),
        [
            (TokenKind::Ident, "rest"),
            (TokenKind::Punct, "*"),
            (TokenKind::Punct, "/"),
        ]
    );
}

#[test]
fn char_literals_and_lifetimes_disambiguate_and_round_trip() {
    let src = "fn f<'a>(x: &'a u8) -> u8 { let c = 'a'; *x }";
    check_partition(src).expect("partition holds");
    let quoted: Vec<(TokenKind, &str)> = code_tokens(src)
        .into_iter()
        .filter(|(k, _)| matches!(k, TokenKind::Lifetime | TokenKind::Char))
        .collect();
    // The same two characters `'a` lex as a lifetime in type position
    // and as part of the char literal `'a'` in expression position.
    assert_eq!(
        quoted,
        [
            (TokenKind::Lifetime, "'a"),
            (TokenKind::Lifetime, "'a"),
            (TokenKind::Char, "'a'"),
        ]
    );
    // Bare forms round-trip to a single token of the right kind.
    for (src, kind) in [
        ("'a'", TokenKind::Char),
        ("b'a'", TokenKind::Char),
        ("'a", TokenKind::Lifetime),
        ("'static", TokenKind::Lifetime),
    ] {
        check_partition(src).expect("partition holds");
        let tokens = lex(src);
        assert_eq!(tokens.len(), 1, "{src:?} must be one token");
        assert_eq!(tokens[0].kind, kind, "{src:?}");
    }
}
