//! Property tests for the lexer's central guarantee: it partitions any
//! input — valid Rust or byte soup — into contiguous tokens whose
//! concatenation reproduces the source exactly, without panicking.

use bisect_lint::{lex, TokenKind};
use proptest::prelude::*;

/// Rust-ish fragments, including every literal form the lexer special-
/// cases and several deliberately malformed ones (unterminated string,
/// lone quote, unclosed block comment).
const FRAGMENTS: [&str; 24] = [
    "fn f() {",
    "}",
    "let x = 1_000u64;",
    "\"str \\\" esc\\n\"",
    "// line comment\n",
    "/* block /* nested */ */",
    "/* unclosed",
    "r#\"raw \" inner\"#",
    "br##\"bytes\"##",
    "r#type",
    "'a",
    "'x'",
    "b'\\n'",
    "0..10",
    "1.5e-3",
    "#[cfg(test)]",
    "::",
    ".unwrap()",
    "vec![1, 2]",
    "\"unterminated",
    "'",
    "\u{1F980}",
    "\n",
    "    ",
];

/// Asserts the partition invariant: tokens are contiguous, start at 0,
/// end at `src.len()`, and concatenate back to `src`.
fn check_partition(src: &str) -> Result<(), TestCaseError> {
    let tokens = lex(src);
    let mut pos = 0usize;
    let mut rebuilt = String::with_capacity(src.len());
    for t in &tokens {
        prop_assert_eq!(t.start, pos, "gap or overlap at byte {}", pos);
        prop_assert!(t.end > t.start, "empty token at byte {}", pos);
        pos = t.end;
        rebuilt.push_str(t.text(src));
    }
    prop_assert_eq!(pos, src.len());
    prop_assert_eq!(rebuilt.as_str(), src);
    // Reported lines never decrease along the stream.
    for w in tokens.windows(2) {
        prop_assert!(w[0].line <= w[1].line);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_lex_into_a_partition(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_partition(&src)?;
    }

    #[test]
    fn rust_fragment_soup_lexes_into_a_partition(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..40),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        check_partition(&src)?;
        // Lexing is a pure function of the input.
        prop_assert_eq!(lex(&src), lex(&src));
    }

    #[test]
    fn identifiers_never_surface_inside_literals_or_comments(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 1..20),
    ) {
        // Wrap the soup in a string literal: however adversarial the
        // contents, nothing inside may lex as an identifier, which is
        // what keeps the rules blind to names in strings.
        let inner: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i].replace(['"', '\\'], "_"))
            .collect();
        let src = format!("\"{inner}\"");
        let tokens = lex(&src);
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(tokens[0].kind, TokenKind::Str);
    }
}
