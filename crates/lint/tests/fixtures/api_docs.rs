// Fixture: api-docs violations (warnings).

pub fn undocumented() {}

/// Documented — fine.
pub fn documented() {}

pub struct Bare;

/// A documented struct is fine, including with attributes between.
#[derive(Debug)]
pub struct Covered;

pub(crate) fn internal() {}

pub mod external;

pub use std::cmp::Ordering;

pub mod inline {
    pub fn inner() {}
}

#[cfg(test)]
mod tests {
    pub fn undocumented_in_tests_is_fine() {}
}
