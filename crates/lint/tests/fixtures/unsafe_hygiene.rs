// Fixture: unsafe-hygiene violations. The test config lists this file
// as a crate root, so the missing `#![forbid(unsafe_code)]` attribute
// is reported on line 1.

fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_is_fine() {
        let x = 5u32;
        let got = unsafe { *(&x as *const u32) };
        assert_eq!(got, 5);
    }
}
