// Fixture: lookalikes that must produce zero diagnostics even with
// every rule scoped to this file. This comment itself mentions
// unwrap(), panic!, HashMap, thread_rng, and Instant::now().

fn strings() -> &'static str {
    "call .unwrap() or panic!() via a HashMap seeded by thread_rng"
}

fn raw_string() -> &'static str {
    r#"vec![Box::new(Instant::now())] and OsRng and .collect()"#
}

/* block comment: SystemTime::now() .clone() from_entropy RandomState */

fn char_literal() -> char {
    '!'
}

fn field_access(d: &Diag) -> u32 {
    // `expect` and `unwrap` as field names are not method calls.
    d.expect + d.unwrap
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn violations_in_tests_are_invisible() {
        let mut m = HashMap::new();
        m.insert(1u32, vec![2u32]);
        let _ = m.get(&1).unwrap().clone();
        let _ = std::time::Instant::now();
        panic!("tests may panic");
    }
}
