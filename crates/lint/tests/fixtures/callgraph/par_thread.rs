//! Ad-hoc threading outside the sanctioned runtime.

/// Spawns directly instead of going through bisect-par.
pub fn fan_out() {
    let h = std::thread::spawn(|| 1u64);
    drop(h);
}
