//! Unguarded support crate: panics are legal here, but they make the
//! functions may-panic for guarded callers.

/// Folds the values; delegates to a panicking helper.
pub fn summarize(v: &[u64]) -> u64 {
    risky(v)
}

/// Panics on empty input.
pub fn risky(v: &[u64]) -> u64 {
    v.first().copied().unwrap()
}
