//! Guarded algorithm code calling across the crate boundary.

/// The helper it calls can panic two frames down.
pub fn run(v: &[u64]) -> u64 {
    summarize(v)
}
