//! Helpers the hot entry reaches — the allocation hides two calls
//! down, in a file the per-file hot-path rule never scans.

/// One call deep from the hot entry.
pub fn step(n: usize) -> usize {
    build(n).len()
}

/// Two calls deep: allocates.
pub fn build(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    out.resize(n, 0);
    out
}
