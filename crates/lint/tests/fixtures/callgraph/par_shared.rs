//! Aggregation helpers outside the consumer discipline — fine alone,
//! racy when reached from a parallel fan-out.

/// Accumulates through a lock.
pub fn tally(parts: usize) -> usize {
    let total = std::sync::Mutex::new(0usize);
    *total.lock().expect("poisoned") += parts;
    let v = *total.lock().expect("poisoned");
    v
}
