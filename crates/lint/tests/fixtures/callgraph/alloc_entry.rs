//! Hot entry point: must stay allocation-free transitively.

/// The steady-state entry point named in `alloc_roots`.
pub fn hot_entry(n: usize) -> usize {
    step(n)
}
