//! Guarded code pulling data from an unguarded table.

/// The call below leaks iteration order into guarded code.
pub fn ordered_ids() -> Vec<u64> {
    lookup()
}
