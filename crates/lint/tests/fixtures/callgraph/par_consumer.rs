//! Parallel consumer: fans out via the sanctioned entry point, then
//! tallies through shared state defined in another crate.

/// Fans work out and then tallies through a lock.
pub fn drive(n: usize) -> usize {
    let parts = par_map(n, work);
    tally(parts)
}

/// Disjoint-range worker.
pub fn work(i: usize) -> usize {
    i * 2
}
