//! Unguarded cache keyed by HashMap — legal where it sits, but the
//! iteration order is laundered through a plain `Vec` return type.

use std::collections::HashMap;

/// Returns values in `HashMap` iteration order.
pub fn lookup() -> Vec<u64> {
    let mut m = HashMap::new();
    m.insert(1u64, 2u64);
    let mut out = Vec::new();
    for (k, v) in &m {
        out.push(k + v);
    }
    out
}
