// Fixture: determinism-time violations.

use std::time::{Instant, SystemTime};

fn elapsed_toy() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

fn wall_clock() -> SystemTime {
    SystemTime::now()
}

// A bare mention of the type without `::now` is fine.
fn takes_instant(t: Instant) -> Instant {
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
