// Fixture: determinism-hash violations. Not compiled — lexed by the
// rule tests in ../rules.rs.

use std::collections::HashMap;

fn count_distinct(xs: &[u32]) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    seen.len()
}

fn histogram(xs: &[u32]) -> HashMap<u32, u32> {
    let mut h = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_containers_are_fine_in_tests() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.len(), 1);
    }
}
