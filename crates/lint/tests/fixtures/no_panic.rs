// Fixture: no-panic violations.

fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expects(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn macros(kind: u8) -> u32 {
    match kind {
        0 => panic!("zero"),
        1 => todo!(),
        2 => unimplemented!(),
        _ => unreachable!("checked"),
    }
}

// A free function named like the method is someone else's API.
fn expect(msg: &str) -> usize {
    msg.len()
}

fn calls_free_fn() -> usize {
    expect("not a method call")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        if false {
            panic!("tests may panic");
        }
    }
}
