// Fixture: determinism-entropy violations.

fn ambient() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn reseeded() -> StdRng {
    StdRng::from_entropy()
}

fn os_random(buf: &mut [u8]) {
    OsRng.fill_bytes(buf);
}

// Explicit seeding is the sanctioned pattern and must not flag.
fn seeded() -> StdRng {
    StdRng::seed_from_u64(42)
}

#[cfg(test)]
mod tests {
    #[test]
    fn entropy_in_tests_is_fine() {
        let _ = rand::thread_rng();
    }
}
