// Fixture: every violation below carries an inline suppression, so a
// scan with all rule scopes pointed here keeps nothing.

fn lookup_only() -> usize {
    // lint: allow(determinism-hash) — lookup-only, order never escapes
    let m: HashMap<u32, u32> = HashMap::default();
    m.len()
}

fn measured() -> u128 {
    let t = Instant::now(); // lint: allow(determinism-time) — measurement only
    t.elapsed().as_nanos()
}

fn checked(x: Option<u32>) -> u32 {
    // lint: allow(no-panic) — `x` is Some by the caller's contract
    x.unwrap()
}

fn warm_up() -> Vec<u64> {
    // lint: allow(determinism, zero-alloc) — family prefix covers -entropy
    vec![thread_rng().gen()]
}
