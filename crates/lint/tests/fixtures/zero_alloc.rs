// Fixture: zero-alloc violations.

fn allocates() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v
}

fn boxed() -> Box<u32> {
    Box::new(7)
}

fn literal() -> Vec<u32> {
    vec![1, 2, 3]
}

fn collected(xs: &[u32]) -> Vec<u32> {
    xs.iter().map(|x| x + 1).collect()
}

fn cloned(xs: &Vec<u32>) -> Vec<u32> {
    xs.clone()
}

// Pre-sized buffers and free functions named `clone` are not the
// allocator entry points this rule tracks.
fn reuses(buf: &mut Vec<u32>) {
    buf.clear();
    buf.push(1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn allocation_in_tests_is_fine() {
        let v: Vec<u32> = vec![1];
        let _ = v.clone();
    }
}
