//! The self-enforcement gate: the workspace at HEAD, linted under its
//! own `lint.toml`, produces zero non-suppressed diagnostics. CI runs
//! the `bisect-lint` binary for the same guarantee; this test keeps
//! `cargo test` sufficient to catch a regression locally.

use std::path::Path;

use bisect_lint::{lint_workspace, Config};

#[test]
fn workspace_is_lint_clean_under_its_own_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    let cfg = Config::from_toml(&toml).expect("parse lint.toml");
    let report = lint_workspace(&root, &cfg).expect("scan the workspace");
    assert!(
        report.is_clean(),
        "the workspace must lint clean at HEAD, found {} diagnostics:\n{:#?}",
        report.diagnostics.len(),
        report.diagnostics
    );
    // Guard against a config typo silently scanning nothing: the
    // workspace has ~100 Rust files and dozens of justified
    // suppressions, so near-zero counts mean the scan went wrong.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — include roots look wrong",
        report.files_scanned
    );
    assert!(
        report.suppressed > 20,
        "only {} suppressions hit — suppression matching looks broken",
        report.suppressed
    );
    // Every `lint: allow(...)` in the tree must certify at least one
    // finding: stale waivers hide regressions and rot the audit trail.
    assert!(
        report.unused_suppressions.is_empty(),
        "unused suppressions at HEAD (delete the stale allows):\n{:#?}",
        report.unused_suppressions
    );
}
