//! Call-graph analysis fixtures: each interprocedural rule catching a
//! transitive violation the per-file token rules cannot see, with
//! (rule, line)-exact assertions; certification semantics at the
//! boundary; crate-dependency direction; and a property test that the
//! call graph is invariant under item reordering.

use std::collections::BTreeSet;
use std::path::Path;

use bisect_lint::{check_sources, parse, CallGraph, Config, CrateDeps, Report, SourceFile};
use proptest::prelude::*;

const ALLOC_ENTRY: &str = include_str!("fixtures/callgraph/alloc_entry.rs");
const ALLOC_HELPER: &str = include_str!("fixtures/callgraph/alloc_helper.rs");
const PANIC_GUARDED: &str = include_str!("fixtures/callgraph/panic_guarded.rs");
const PANIC_HELPER: &str = include_str!("fixtures/callgraph/panic_helper.rs");
const TAINT_GUARDED: &str = include_str!("fixtures/callgraph/taint_guarded.rs");
const TAINT_HELPER: &str = include_str!("fixtures/callgraph/taint_helper.rs");
const PAR_CONSUMER: &str = include_str!("fixtures/callgraph/par_consumer.rs");
const PAR_SHARED: &str = include_str!("fixtures/callgraph/par_shared.rs");
const PAR_THREAD: &str = include_str!("fixtures/callgraph/par_thread.rs");

fn config(toml: &str) -> Config {
    Config::from_toml(toml).expect("fixture config parses")
}

/// The `(file, line, rule)` triples of a report, in report order.
fn sites(report: &Report) -> Vec<(String, u32, &'static str)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect()
}

#[test]
fn zero_alloc_reaches_an_allocation_two_calls_deep() {
    let cfg = config(
        r#"
        [zero_alloc]
        hot_paths = ["crates/core/src/kl.rs"]

        [reachability]
        alloc_roots = ["hot_entry"]
        "#,
    );
    let report = check_sources(
        &cfg,
        &[
            ("crates/core/src/kl.rs", ALLOC_ENTRY),
            ("crates/core/src/scratch.rs", ALLOC_HELPER),
        ],
    );
    // `build` lives outside every hot-path file, so the per-file rule
    // of PR 3 never sees it; only reachability from `hot_entry` does.
    assert_eq!(
        sites(&report),
        [("crates/core/src/scratch.rs".to_string(), 11, "zero-alloc")]
    );
    let msg = &report.diagnostics[0].message;
    assert!(
        msg.contains("reachable from a hot entry")
            && msg.contains("`hot_entry`")
            && msg.contains("`build`"),
        "message must carry the root and the call path, got: {msg}"
    );
}

#[test]
fn unresolved_alloc_root_is_a_config_error() {
    let cfg = config(
        r#"
        [reachability]
        alloc_roots = ["Missing::entry"]
        "#,
    );
    let report = check_sources(&cfg, &[("crates/core/src/kl.rs", ALLOC_ENTRY)]);
    assert_eq!(sites(&report), [("lint.toml".to_string(), 1, "zero-alloc")]);
    assert!(report.diagnostics[0]
        .message
        .contains("does not match any function"));
}

#[test]
fn no_panic_flags_the_boundary_call_into_a_panicking_helper() {
    let cfg = config(
        r#"
        [no_panic]
        paths = ["crates/core/src"]
        "#,
    );
    let report = check_sources(
        &cfg,
        &[
            ("crates/core/src/algo.rs", PANIC_GUARDED),
            ("crates/util/src/help.rs", PANIC_HELPER),
        ],
    );
    // The panic sits behind `summarize` in an unguarded crate; the
    // finding lands on the guarded call site, naming the real source.
    assert_eq!(
        sites(&report),
        [("crates/core/src/algo.rs".to_string(), 5, "no-panic")]
    );
    let msg = &report.diagnostics[0].message;
    assert!(
        msg.contains("call into `summarize` can panic")
            && msg.contains(".unwrap()")
            && msg.contains("crates/util/src/help.rs:11"),
        "message must point at the transitive panic site, got: {msg}"
    );
}

#[test]
fn certifying_the_panic_source_clears_the_boundary_finding() {
    let cfg = config(
        r#"
        [no_panic]
        paths = ["crates/core/src"]
        "#,
    );
    let certified = PANIC_HELPER.replace(
        "v.first().copied().unwrap()",
        "v.first().copied().unwrap() // lint: allow(no-panic) — callers pass non-empty slices",
    );
    let report = check_sources(
        &cfg,
        &[
            ("crates/core/src/algo.rs", PANIC_GUARDED),
            ("crates/util/src/help.rs", &certified),
        ],
    );
    // A certified site is not may-panic for its callers: suppression
    // stops the propagation, and the waiver counts as used.
    assert!(report.is_clean(), "found {:?}", report.diagnostics);
    assert_eq!(report.suppressed, 1);
    assert!(report.unused_suppressions.is_empty());
}

#[test]
fn determinism_taint_crosses_on_a_laundered_return_value() {
    let cfg = config(
        r#"
        [determinism]
        paths = ["crates/core/src"]
        "#,
    );
    let report = check_sources(
        &cfg,
        &[
            ("crates/core/src/order.rs", TAINT_GUARDED),
            ("crates/bench/src/table.rs", TAINT_HELPER),
        ],
    );
    // `lookup` returns a plain Vec, so no type mentions HashMap on the
    // guarded side — only the call edge carries the taint.
    assert_eq!(
        sites(&report),
        [(
            "crates/core/src/order.rs".to_string(),
            5,
            "determinism-taint"
        )]
    );
    let msg = &report.diagnostics[0].message;
    assert!(
        msg.contains("call into `lookup` leaks nondeterminism")
            && msg.contains("`HashMap` iteration order"),
        "message must name the source, got: {msg}"
    );
}

#[test]
fn par_safety_flags_shared_state_reachable_from_a_parallel_consumer() {
    let cfg = config(
        r#"
        [par_safety]
        sanctioned = ["crates/par/src"]
        consumer_paths = ["crates/core/src"]
        entry_points = ["par_map"]
        "#,
    );
    let report = check_sources(
        &cfg,
        &[
            ("crates/core/src/driver.rs", PAR_CONSUMER),
            ("crates/stats/src/agg.rs", PAR_SHARED),
        ],
    );
    // `tally` is outside both the consumer and sanctioned paths, so no
    // per-file rule covers it; it is flagged because `drive` calls the
    // parallel entry point and reaches it.
    assert_eq!(
        sites(&report),
        [("crates/stats/src/agg.rs".to_string(), 6, "par-safety-sync")]
    );
    let msg = &report.diagnostics[0].message;
    assert!(
        msg.contains("`Mutex`") && msg.contains("parallel consumer `drive`"),
        "message must name the consumer root, got: {msg}"
    );
}

#[test]
fn par_safety_without_an_entry_point_call_keeps_the_helper_legal() {
    let cfg = config(
        r#"
        [par_safety]
        sanctioned = ["crates/par/src"]
        consumer_paths = ["crates/core/src"]
        entry_points = ["par_map"]
        "#,
    );
    let sequential = PAR_CONSUMER.replace("let parts = par_map(n, work);", "let parts = n;");
    let report = check_sources(
        &cfg,
        &[
            ("crates/core/src/driver.rs", &sequential),
            ("crates/stats/src/agg.rs", PAR_SHARED),
        ],
    );
    assert!(report.is_clean(), "found {:?}", report.diagnostics);
}

#[test]
fn par_safety_flags_ad_hoc_threading_outside_the_runtime() {
    let cfg = config(
        r#"
        [par_safety]
        sanctioned = ["crates/par/src"]
        consumer_paths = ["crates/core/src"]
        entry_points = ["par_map"]
        "#,
    );
    let report = check_sources(&cfg, &[("crates/core/src/spawn.rs", PAR_THREAD)]);
    assert_eq!(
        sites(&report),
        [(
            "crates/core/src/spawn.rs".to_string(),
            5,
            "par-safety-thread"
        )]
    );
}

#[test]
fn same_file_candidates_shadow_same_crate_ones() {
    let files = vec![
        SourceFile::new(
            "crates/core/src/a.rs",
            "fn caller() { helper(); }\nfn helper() {}\n",
        ),
        SourceFile::new("crates/core/src/b.rs", "fn helper() {}\n"),
    ];
    let parsed: Vec<_> = files.iter().map(parse).collect();
    let graph = CallGraph::build(&files, &parsed, None);
    // Nodes are in (file, item) order: caller, a::helper, b::helper.
    assert_eq!(graph.edges[0].len(), 1);
    assert_eq!(graph.edges[0][0].callee, 1);
}

#[test]
fn crate_deps_point_along_dependency_direction() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let deps = CrateDeps::load(&root);
    // bench depends on core, never the reverse.
    assert!(deps.allows("bench", "core", false));
    assert!(!deps.allows("core", "bench", false));
    // proptest is a dev-dependency of graph: reachable from leaf files
    // (integration tests) only, not from library code.
    assert!(!deps.allows("graph", "proptest", false));
    assert!(deps.allows("graph", "proptest", true));
}

#[test]
fn cross_crate_edges_respect_the_dependency_map() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let deps = CrateDeps::load(&root);
    let files = vec![
        SourceFile::new("crates/core/src/x.rs", "fn caller() { helper(); }\n"),
        SourceFile::new("crates/bench/src/y.rs", "pub fn helper() {}\n"),
    ];
    let parsed: Vec<_> = files.iter().map(parse).collect();
    // core does not depend on bench: the name must not resolve.
    let constrained = CallGraph::build(&files, &parsed, Some(&deps));
    assert!(constrained.edges[0].is_empty());
    // Without the map the same call resolves permissively.
    let permissive = CallGraph::build(&files, &parsed, None);
    assert_eq!(permissive.edges[0].len(), 1);
}

/// Item bodies for the reordering property: a small web of free
/// functions calling each other by name.
const ITEMS: [&str; 6] = [
    "pub fn alpha() { beta(); gamma(); }\n",
    "pub fn beta() { delta(); }\n",
    "pub fn gamma() { beta(); }\n",
    "pub fn delta() {}\n",
    "pub fn epsilon() { alpha(); delta(); }\n",
    "pub fn zeta() { zeta(); }\n",
];

/// The call graph of `src`, as a name-level edge set.
fn name_edges(src: &str) -> BTreeSet<(String, String)> {
    let files = vec![SourceFile::new("crates/core/src/m.rs", src)];
    let parsed: Vec<_> = files.iter().map(parse).collect();
    let graph = CallGraph::build(&files, &parsed, None);
    let name = |id: usize| {
        let n = graph.nodes[id];
        parsed[n.file].fns[n.fn_idx].name.clone()
    };
    let mut out = BTreeSet::new();
    for (caller, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            out.insert((name(caller), name(e.callee)));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Resolution must depend on names and scopes, never on item
    /// order: any permutation of the items yields the same edges.
    #[test]
    fn call_graph_is_stable_under_item_reordering(
        keys in proptest::collection::vec(any::<u32>(), ITEMS.len()),
    ) {
        let baseline: String = ITEMS.concat();
        let mut order: Vec<usize> = (0..ITEMS.len()).collect();
        order.sort_by_key(|&i| (keys[i], i));
        let shuffled: String = order.iter().map(|&i| ITEMS[i]).collect();
        prop_assert_eq!(name_edges(&baseline), name_edges(&shuffled));
    }
}
