//! Per-rule fixture tests: each rule family has a fixture file under
//! `fixtures/` (excluded from the workspace scan by `lint.toml`) that
//! exercises its violations, its test-code exemptions, and the
//! lookalikes it must not flag. The tests drive [`check_source`] with
//! configs scoped to the fixture path, so each asserts exactly which
//! (rule, line) pairs fire.

use bisect_lint::{check_source, Config, Diagnostic, Severity};

fn paths(ps: &[&str]) -> Vec<String> {
    ps.iter().map(|s| s.to_string()).collect()
}

/// The (rule, line) pairs of `diags`, in report order.
fn hits(diags: &[Diagnostic]) -> Vec<(&str, u32)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn determinism_hash_flags_hash_containers_outside_tests() {
    let cfg = Config {
        determinism_paths: paths(&["fixtures"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/determinism_hash.rs");
    let (kept, suppressed) = check_source(&cfg, "fixtures/determinism_hash.rs", src);
    assert_eq!(suppressed, 0);
    assert_eq!(
        hits(&kept),
        vec![
            ("determinism-hash", 4),  // use std::collections::HashMap
            ("determinism-hash", 7),  // HashSet::new in a fn body
            ("determinism-hash", 14), // HashMap in a return type
            ("determinism-hash", 15), // HashMap::new
        ]
    );
    assert!(kept.iter().all(|d| d.severity == Severity::Error));
}

#[test]
fn determinism_hash_is_silent_out_of_scope() {
    let cfg = Config {
        determinism_paths: paths(&["crates/core"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/determinism_hash.rs");
    let (kept, _) = check_source(&cfg, "fixtures/determinism_hash.rs", src);
    assert!(kept.is_empty());
}

#[test]
fn determinism_time_flags_clock_reads() {
    let cfg = Config {
        timing_paths: paths(&["fixtures"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/determinism_time.rs");
    let (kept, _) = check_source(&cfg, "fixtures/determinism_time.rs", src);
    assert_eq!(
        hits(&kept),
        vec![
            ("determinism-time", 6),  // Instant::now
            ("determinism-time", 11), // SystemTime::now
        ]
    );
}

#[test]
fn determinism_time_respects_the_allow_list() {
    let cfg = Config {
        timing_paths: paths(&["fixtures"]),
        timing_allow: paths(&["fixtures/determinism_time.rs"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/determinism_time.rs");
    let (kept, _) = check_source(&cfg, "fixtures/determinism_time.rs", src);
    assert!(kept.is_empty());
}

#[test]
fn determinism_entropy_applies_everywhere_by_default() {
    let cfg = Config::default();
    let src = include_str!("fixtures/determinism_entropy.rs");
    let (kept, _) = check_source(&cfg, "fixtures/determinism_entropy.rs", src);
    assert_eq!(
        hits(&kept),
        vec![
            ("determinism-entropy", 4),  // thread_rng
            ("determinism-entropy", 9),  // from_entropy
            ("determinism-entropy", 13), // OsRng
        ]
    );
}

#[test]
fn determinism_entropy_respects_the_allow_list() {
    let cfg = Config {
        entropy_allow: paths(&["fixtures"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/determinism_entropy.rs");
    let (kept, _) = check_source(&cfg, "fixtures/determinism_entropy.rs", src);
    assert!(kept.is_empty());
}

#[test]
fn no_panic_flags_aborts_but_not_free_functions() {
    let cfg = Config {
        no_panic_paths: paths(&["fixtures"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/no_panic.rs");
    let (kept, _) = check_source(&cfg, "fixtures/no_panic.rs", src);
    assert_eq!(
        hits(&kept),
        vec![
            ("no-panic", 4),  // .unwrap()
            ("no-panic", 8),  // .expect(…)
            ("no-panic", 13), // panic!
            ("no-panic", 14), // todo!
            ("no-panic", 15), // unimplemented!
            ("no-panic", 16), // unreachable!
        ]
    );
}

#[test]
fn zero_alloc_flags_allocator_entry_points() {
    let cfg = Config {
        hot_paths: paths(&["fixtures"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/zero_alloc.rs");
    let (kept, _) = check_source(&cfg, "fixtures/zero_alloc.rs", src);
    assert_eq!(
        hits(&kept),
        vec![
            ("zero-alloc", 4),  // Vec::new
            ("zero-alloc", 10), // Box::new
            ("zero-alloc", 14), // vec!
            ("zero-alloc", 18), // .collect()
            ("zero-alloc", 22), // .clone()
        ]
    );
}

#[test]
fn unsafe_hygiene_checks_roots_and_safety_comments() {
    let cfg = Config {
        crate_roots: paths(&["fixtures/unsafe_hygiene.rs"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/unsafe_hygiene.rs");
    let (kept, _) = check_source(&cfg, "fixtures/unsafe_hygiene.rs", src);
    assert_eq!(
        hits(&kept),
        vec![
            ("unsafe-hygiene", 1), // missing #![forbid(unsafe_code)]
            ("unsafe-hygiene", 6), // unsafe without a SAFETY: comment
        ]
    );
}

#[test]
fn unsafe_hygiene_skips_the_root_check_for_non_roots() {
    let cfg = Config::default();
    let src = include_str!("fixtures/unsafe_hygiene.rs");
    let (kept, _) = check_source(&cfg, "fixtures/unsafe_hygiene.rs", src);
    assert_eq!(hits(&kept), vec![("unsafe-hygiene", 6)]);
}

#[test]
fn api_docs_warns_on_undocumented_public_items() {
    let cfg = Config {
        api_docs_paths: paths(&["fixtures"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/api_docs.rs");
    let (kept, _) = check_source(&cfg, "fixtures/api_docs.rs", src);
    assert_eq!(
        hits(&kept),
        vec![
            ("api-docs", 3),  // pub fn undocumented
            ("api-docs", 8),  // pub struct Bare
            ("api-docs", 20), // pub mod inline { … }
            ("api-docs", 21), // pub fn inner inside it
        ]
    );
    assert!(kept.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn suppressions_silence_each_family_and_are_counted() {
    let cfg = Config {
        determinism_paths: paths(&["fixtures"]),
        timing_paths: paths(&["fixtures"]),
        no_panic_paths: paths(&["fixtures"]),
        hot_paths: paths(&["fixtures"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/suppressed.rs");
    let (kept, suppressed) = check_source(&cfg, "fixtures/suppressed.rs", src);
    assert_eq!(hits(&kept), vec![]);
    // Two HashMaps, one Instant::now, one unwrap, one vec! and one
    // thread_rng (the last two under a single family-prefix comment).
    assert_eq!(suppressed, 6);
}

#[test]
fn lookalikes_in_strings_comments_and_tests_never_flag() {
    let cfg = Config {
        determinism_paths: paths(&["fixtures"]),
        timing_paths: paths(&["fixtures"]),
        no_panic_paths: paths(&["fixtures"]),
        hot_paths: paths(&["fixtures"]),
        api_docs_paths: paths(&["fixtures"]),
        ..Config::default()
    };
    let src = include_str!("fixtures/false_positive.rs");
    let (kept, suppressed) = check_source(&cfg, "fixtures/false_positive.rs", src);
    assert_eq!(hits(&kept), vec![]);
    assert_eq!(suppressed, 0);
}
