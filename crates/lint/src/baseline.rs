//! Baseline/diff mode: `bisect-lint --baseline lint_baseline.json`
//! fails only on findings that are *new* relative to a committed
//! snapshot, so a rule can tighten before every legacy violation is
//! paid off. The snapshot is a previous `lint.json` (written by
//! `--update-baseline`); findings are keyed by (rule, file, message)
//! with multiplicity — line numbers are deliberately excluded so
//! unrelated edits shifting a file do not resurrect baselined
//! findings. The committed baseline is expected to stay empty in CI
//! (the repo is at zero findings); the mechanism exists for rule
//! rollout and for downstream forks.

use std::collections::BTreeMap;

use crate::diag::Diagnostic;
use crate::engine::Report;
use crate::error::LintError;

/// A parsed baseline: finding multiplicities keyed by
/// (rule, file, message).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parses a baseline from a previous report's JSON text.
    ///
    /// The reader understands exactly the format [`Report::to_json`]
    /// writes (the workspace has no serde): it locates the
    /// `"diagnostics"` array and extracts the `rule`/`file`/`message`
    /// string fields of each record.
    ///
    /// # Errors
    ///
    /// [`LintError::Config`] when the text has no `"diagnostics"`
    /// array or a record is missing one of the key fields.
    pub fn from_json(text: &str) -> Result<Baseline, LintError> {
        let bad = |message: String| LintError::Config { line: 0, message };
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for (idx, obj) in diagnostic_objects(text)
            .ok_or_else(|| bad("baseline has no \"diagnostics\" array".into()))?
            .iter()
            .enumerate()
        {
            let field = |key: &str| {
                string_field(obj, key)
                    .ok_or_else(|| bad(format!("baseline diagnostic #{idx} is missing \"{key}\"")))
            };
            let key = (field("rule")?, field("file")?, field("message")?);
            *counts.entry(key).or_insert(0) += 1;
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline from a live report.
    pub fn from_report(report: &Report) -> Baseline {
        let mut counts: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for d in &report.diagnostics {
            let key = (d.rule.to_string(), d.file.clone(), d.message.clone());
            *counts.entry(key).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Total findings the baseline waives.
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether the baseline waives nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The diagnostics of `report` not covered by this baseline, in
    /// report order. Each baselined (rule, file, message) key absorbs
    /// at most its recorded multiplicity.
    pub fn new_findings(&self, report: &Report) -> Vec<Diagnostic> {
        let mut remaining = self.counts.clone();
        let mut new = Vec::new();
        for d in &report.diagnostics {
            let key = (d.rule.to_string(), d.file.clone(), d.message.clone());
            match remaining.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => new.push(d.clone()),
            }
        }
        new
    }
}

/// The `{…}` record substrings of the `"diagnostics"` array in `text`,
/// or `None` when the array is absent. String- and escape-aware, so
/// braces inside messages cannot derail the scan.
fn diagnostic_objects(text: &str) -> Option<Vec<&str>> {
    let at = text.find("\"diagnostics\"")?;
    let rest = &text[at..];
    let open = rest.find('[')?;
    let body = &rest[open + 1..];
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    objects.push(&body[start?..=i]);
                    start = None;
                }
            }
            ']' if depth == 0 => return Some(objects),
            _ => {}
        }
    }
    // Unterminated array: treat what was collected as the content.
    Some(objects)
}

/// Extracts and unescapes the string value of `"key": "…"` in `obj`.
fn string_field(obj: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\"");
    let at = obj.find(&marker)?;
    let rest = obj[at + marker.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn diag(rule: &'static str, file: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: file.into(),
            line,
            col: 1,
            message: message.into(),
            suggestion: None,
        }
    }

    fn report_with(diags: Vec<Diagnostic>) -> Report {
        Report {
            diagnostics: diags,
            suppressed: 0,
            files_scanned: 1,
            unused_suppressions: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_report_json() {
        let report = report_with(vec![
            diag("no-panic", "a.rs", 3, "`.unwrap()` in non-test code"),
            diag(
                "zero-alloc",
                "b.rs",
                9,
                "a \"quoted\" message with \\ and {braces}",
            ),
        ]);
        let parsed = Baseline::from_json(&report.to_json()).expect("parses own output");
        assert_eq!(parsed, Baseline::from_report(&report));
        assert_eq!(parsed.len(), 2);
        assert!(parsed.new_findings(&report).is_empty());
    }

    #[test]
    fn new_findings_respect_multiplicity_not_lines() {
        let old = report_with(vec![diag("no-panic", "a.rs", 3, "m")]);
        let base = Baseline::from_report(&old);
        // Same finding moved to another line: still baselined.
        let moved = report_with(vec![diag("no-panic", "a.rs", 30, "m")]);
        assert!(base.new_findings(&moved).is_empty());
        // A second instance of the same key is new.
        let doubled = report_with(vec![
            diag("no-panic", "a.rs", 3, "m"),
            diag("no-panic", "a.rs", 4, "m"),
        ]);
        let new = base.new_findings(&doubled);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 4);
    }

    #[test]
    fn empty_baseline_passes_everything_through() {
        let base = Baseline::from_json(&report_with(vec![]).to_json()).expect("empty");
        assert!(base.is_empty());
        let report = report_with(vec![diag("no-panic", "a.rs", 1, "m")]);
        assert_eq!(base.new_findings(&report).len(), 1);
    }

    #[test]
    fn rejects_json_without_a_diagnostics_array() {
        assert!(Baseline::from_json("{}").is_err());
        assert!(Baseline::from_json("").is_err());
    }
}
