//! `lint.toml` configuration: which paths each rule family governs.
//!
//! The workspace has no TOML dependency, so [`Config::from_toml`]
//! parses the small subset the config needs — `[section]` headers,
//! `key = "string"`, and `key = [ "string", ... ]` arrays (single- or
//! multi-line) with `#` comments — in the same hand-rolled spirit as
//! `bisect_bench::json`. Unknown sections or keys are errors, so a
//! typo cannot silently disable a rule.

use crate::error::LintError;

/// Scope configuration for every rule family. All paths are
/// workspace-relative, `/`-separated prefixes (a directory prefix
/// covers the whole subtree; a full file path covers one file).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Config {
    /// Directories to scan for `.rs` files.
    pub include: Vec<String>,
    /// Path prefixes to skip entirely (e.g. the lint fixtures).
    pub exclude: Vec<String>,
    /// Where `HashMap`/`HashSet` are banned (`determinism-hash`).
    pub determinism_paths: Vec<String>,
    /// Where wall-clock reads are banned (`determinism-time`) …
    pub timing_paths: Vec<String>,
    /// … except these sanctioned timing modules.
    pub timing_allow: Vec<String>,
    /// The only paths allowed to touch entropy sources
    /// (`determinism-entropy` covers everything else).
    pub entropy_allow: Vec<String>,
    /// Where `unwrap`/`expect`/`panic!` are banned (`no-panic`).
    pub no_panic_paths: Vec<String>,
    /// Hot-path modules where allocation is banned (`zero-alloc`).
    pub hot_paths: Vec<String>,
    /// Crate roots that must carry `#![forbid(unsafe_code)]`
    /// (`unsafe-hygiene`).
    pub crate_roots: Vec<String>,
    /// Where public items must be documented (`api-docs`).
    pub api_docs_paths: Vec<String>,
    /// Hot-path entry points (`fn` or `Type::fn`) that seed the
    /// zero-alloc reachability analysis. Empty ⇒ every function in
    /// `hot_paths` files is a root (the per-file PR-3 semantics).
    pub alloc_roots: Vec<String>,
    /// Files whose allocations are sanctioned even when reachable
    /// (the `Workspace` arena boundary).
    pub alloc_allow: Vec<String>,
    /// Whether `x[i]` indexing counts as a panic site for the
    /// no-panic analysis (off by default: the partitioners index
    /// invariant-backed adjacency arrays everywhere).
    pub index_panics: bool,
    /// The only paths allowed to own parallelism primitives
    /// (`par-safety-thread`) and shared-state types.
    pub par_sanctioned: Vec<String>,
    /// Paths held to the parallel-consumer discipline: no interior
    /// mutability, parallelism only via the sanctioned entry points
    /// (`par-safety-sync`).
    pub par_consumers: Vec<String>,
    /// The sanctioned parallel entry-point names (`par_map`, …);
    /// calling one makes a consumer's reachable set subject to the
    /// shared-state check.
    pub par_entry_points: Vec<String>,
}

/// Whether `path` equals one of `prefixes` or sits beneath one.
pub fn path_in(path: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| path == p || path.starts_with(&format!("{p}/")))
}

impl Config {
    /// Parses the configuration text.
    ///
    /// # Errors
    ///
    /// [`LintError::Config`] for syntax errors, unknown sections, or
    /// unknown keys.
    pub fn from_toml(text: &str) -> Result<Config, LintError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| LintError::Config {
                    line: line_no,
                    message: format!("unterminated section header `{raw}`"),
                })?;
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| LintError::Config {
                line: line_no,
                message: format!("expected `key = value`, got `{raw}`"),
            })?;
            let key = key.trim();
            let mut value = value.trim().to_string();
            // A multi-line array: keep consuming lines until the `]`.
            while value.starts_with('[') && !value.ends_with(']') {
                let (_, next) = lines.next().ok_or_else(|| LintError::Config {
                    line: line_no,
                    message: format!("unterminated array for key `{key}`"),
                })?;
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            cfg.assign(&section, key, &value, line_no)?;
        }
        Ok(cfg)
    }

    fn assign(
        &mut self,
        section: &str,
        key: &str,
        raw: &str,
        line: usize,
    ) -> Result<(), LintError> {
        // Boolean keys take bare `true`/`false`.
        if (section, key) == ("reachability", "index_panics") {
            self.index_panics = match raw {
                "true" => true,
                "false" => false,
                other => {
                    return Err(LintError::Config {
                        line,
                        message: format!("expected `true` or `false` for `{key}`, got `{other}`"),
                    })
                }
            };
            return Ok(());
        }
        let value = parse_value(raw, line)?;
        let slot = match (section, key) {
            ("scan", "include") => &mut self.include,
            ("scan", "exclude") => &mut self.exclude,
            ("determinism", "paths") => &mut self.determinism_paths,
            ("determinism", "timing_paths") => &mut self.timing_paths,
            ("determinism", "timing_allow") => &mut self.timing_allow,
            ("determinism", "entropy_allow") => &mut self.entropy_allow,
            ("no_panic", "paths") => &mut self.no_panic_paths,
            ("zero_alloc", "hot_paths") => &mut self.hot_paths,
            ("unsafe_hygiene", "crate_roots") => &mut self.crate_roots,
            ("api_docs", "paths") => &mut self.api_docs_paths,
            ("reachability", "alloc_roots") => &mut self.alloc_roots,
            ("reachability", "alloc_allow") => &mut self.alloc_allow,
            ("par_safety", "sanctioned") => &mut self.par_sanctioned,
            ("par_safety", "consumer_paths") => &mut self.par_consumers,
            ("par_safety", "entry_points") => &mut self.par_entry_points,
            _ => {
                return Err(LintError::Config {
                    line,
                    message: format!("unknown key `{key}` in section `[{section}]`"),
                })
            }
        };
        *slot = value;
        Ok(())
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"a"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str, line: usize) -> Result<Vec<String>, LintError> {
    let bad = |message: String| LintError::Config { line, message };
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| bad(format!("unterminated array `{value}`")))?;
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            out.push(parse_string(part).ok_or_else(|| {
                bad(format!(
                    "array elements must be quoted strings, got `{part}`"
                ))
            })?);
        }
        Ok(out)
    } else {
        Ok(vec![parse_string(value).ok_or_else(|| {
            bad(format!("expected a quoted string, got `{value}`"))
        })?])
    }
}

fn parse_string(text: &str) -> Option<String> {
    text.strip_prefix('"')?
        .strip_suffix('"')
        .map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let cfg = Config::from_toml(
            r#"
# top comment
[scan]
include = ["crates", "src"] # trailing comment
exclude = ["crates/lint/tests/fixtures"]

[no_panic]
paths = [
    "crates/core/src",
    "crates/graph/src", # with a comment
]

[zero_alloc]
hot_paths = ["crates/core/src/kl.rs"]
"#,
        )
        .expect("valid config");
        assert_eq!(cfg.include, vec!["crates", "src"]);
        assert_eq!(cfg.exclude, vec!["crates/lint/tests/fixtures"]);
        assert_eq!(
            cfg.no_panic_paths,
            vec!["crates/core/src", "crates/graph/src"]
        );
        assert_eq!(cfg.hot_paths, vec!["crates/core/src/kl.rs"]);
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let err = Config::from_toml("[scan]\nincluded = [\"x\"]\n").unwrap_err();
        match err {
            LintError::Config { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("included"));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::from_toml("[scan\n").is_err());
        assert!(Config::from_toml("[scan]\ninclude [\"x\"]\n").is_err());
        assert!(Config::from_toml("[scan]\ninclude = [x]\n").is_err());
        assert!(Config::from_toml("[scan]\ninclude = [\"a\"\n").is_err());
    }

    #[test]
    fn single_string_values_are_one_element_lists() {
        let cfg = Config::from_toml("[scan]\ninclude = \"crates\"\n").expect("valid");
        assert_eq!(cfg.include, vec!["crates"]);
    }

    #[test]
    fn path_in_matches_prefixes_not_substrings() {
        let prefixes = vec!["crates/core/src".to_string()];
        assert!(path_in("crates/core/src", &prefixes));
        assert!(path_in("crates/core/src/kl.rs", &prefixes));
        assert!(!path_in("crates/core/srcx/kl.rs", &prefixes));
        assert!(!path_in("crates/core", &prefixes));
    }
}
