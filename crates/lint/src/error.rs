//! The linter's own typed error.

use std::error::Error;
use std::fmt;

/// Errors from loading configuration or walking the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LintError {
    /// An I/O failure, with the path that failed (stringified;
    /// `std::io::Error` is not `Clone`).
    Io {
        /// The file or directory involved.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// A malformed `lint.toml`, with the 1-based line of the problem.
    Config {
        /// Line of the malformed directive.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A malformed command line.
    InvalidArgument(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            LintError::Config { line, message } => {
                write!(f, "config error at line {line}: {message}")
            }
            LintError::InvalidArgument(message) => write!(f, "invalid argument: {message}"),
        }
    }
}

impl Error for LintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_location() {
        let err = LintError::Config {
            line: 4,
            message: "unknown key `paths2`".into(),
        };
        assert_eq!(
            err.to_string(),
            "config error at line 4: unknown key `paths2`"
        );
        let err = LintError::Io {
            path: "lint.toml".into(),
            message: "missing".into(),
        };
        assert!(err.to_string().contains("lint.toml"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LintError>();
    }
}
