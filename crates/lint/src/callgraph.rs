//! The workspace call graph: one node per non-test `fn`, edges from
//! heuristic name resolution over the [`crate::parse`] output.
//!
//! Resolution is tiered — same module, same file, same crate, then
//! dependency-allowed workspace crates — and links a call to *every*
//! candidate in the first non-empty tier. That over-approximates
//! (several `impl` blocks may define a `gain` method), which is the
//! right direction for the reachability rules: a spurious edge can at
//! worst demand a justified suppression, while a missing edge would
//! let a real violation hide behind a call. The crate-dependency map
//! parsed from the workspace `Cargo.toml`s keeps cross-crate edges
//! pointed along actual dependency direction, so a `bench` helper
//! cannot taint `core` through a name collision.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::parse::{CallTarget, ParsedFile};
use crate::source::SourceFile;

/// One call-graph node: a function, addressed by file and item index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Index into the scanned file list.
    pub file: usize,
    /// Index into that file's [`ParsedFile::fns`].
    pub fn_idx: usize,
}

/// One resolved call edge with its source position.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// The callee node id.
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// The assembled graph. Node ids index both `nodes` and `edges`; the
/// order is (file, item) order, so graphs over the same inputs are
/// identical across runs.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every non-test function, in (file, item) order.
    pub nodes: Vec<NodeRef>,
    /// Outgoing edges per node, deduplicated, in callee-id order.
    pub edges: Vec<Vec<Edge>>,
    ids: BTreeMap<(usize, usize), usize>,
}

/// Which workspace crates each crate may call into, from the
/// `Cargo.toml` dependency declarations (transitively closed).
/// Dev-dependencies only extend the reach of leaf files (integration
/// tests, examples, benches) — library code cannot grow an edge into a
/// crate its `[dependencies]` never named.
#[derive(Debug, Default, Clone)]
pub struct CrateDeps {
    normal: BTreeMap<String, BTreeSet<String>>,
    with_dev: BTreeMap<String, BTreeSet<String>>,
}

/// The crate key of a workspace-relative path: `crates/graph/src/…` is
/// `graph`, everything else (`src`, `tests`, `examples`) is the root
/// package, keyed `""`.
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// Whether a path holds integration tests, examples, or benches —
/// leaves of the dependency graph that library code never calls into.
fn is_leaf_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.starts_with("benches/")
        || path.contains("/tests/")
        || path.contains("/examples/")
        || path.contains("/benches/")
}

impl CrateDeps {
    /// Parses the dependency direction from the workspace manifests
    /// under `root`. Missing or unparseable manifests degrade to an
    /// empty map, which [`CrateDeps::allows`] treats permissively.
    pub fn load(root: &Path) -> CrateDeps {
        let read = |p: &Path| std::fs::read_to_string(p).unwrap_or_default();
        // `[workspace.dependencies]` maps dep names to paths.
        let root_toml = read(&root.join("Cargo.toml"));
        let mut name_to_key: BTreeMap<String, String> = BTreeMap::new();
        for (name, entry) in section_entries(&root_toml, "workspace.dependencies") {
            if let Some(path) = toml_path_value(&entry) {
                name_to_key.insert(name, crate_of(&path).to_string());
            }
        }
        let mut deps = CrateDeps::default();
        let mut manifests = vec![(String::new(), root_toml.clone())];
        if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
            let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
            dirs.sort();
            for dir in dirs {
                let toml = dir.join("Cargo.toml");
                if toml.exists() {
                    let key = dir
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default();
                    manifests.push((key, read(&toml)));
                }
            }
        }
        for (key, toml) in &manifests {
            for (map, sections) in [
                (&mut deps.normal, &["dependencies"][..]),
                (
                    &mut deps.with_dev,
                    &["dependencies", "dev-dependencies"][..],
                ),
            ] {
                let mut allowed: BTreeSet<String> = BTreeSet::new();
                allowed.insert(key.clone());
                for section in sections {
                    for (name, entry) in section_entries(toml, section) {
                        let dep_key = match toml_path_value(&entry) {
                            Some(path) => crate_of(&path).to_string(),
                            None => match name_to_key.get(&name) {
                                Some(k) => k.clone(),
                                None => continue,
                            },
                        };
                        allowed.insert(dep_key);
                    }
                }
                map.insert(key.clone(), allowed);
            }
        }
        // Transitive closure: a dev-dependency's own reach is its
        // normal one (its tests are not linked in).
        close(&mut deps.normal, None);
        let normal = deps.normal.clone();
        close(&mut deps.with_dev, Some(&normal));
        deps
    }

    /// Whether code in crate `caller` may depend on crate `callee`.
    /// Leaf callers (integration tests, examples, benches) also reach
    /// dev-dependencies. Crates absent from the map (fixture files,
    /// ad-hoc tests) are unconstrained.
    pub fn allows(&self, caller: &str, callee: &str, caller_is_leaf: bool) -> bool {
        let map = if caller_is_leaf {
            &self.with_dev
        } else {
            &self.normal
        };
        caller == callee
            || match map.get(caller) {
                Some(set) => set.contains(callee),
                None => true,
            }
    }
}

/// Transitively closes a dependency relation in place. Indirect hops
/// resolve through `via` when given (dev-deps close over normal deps),
/// otherwise through the map itself.
fn close(
    map: &mut BTreeMap<String, BTreeSet<String>>,
    via: Option<&BTreeMap<String, BTreeSet<String>>>,
) {
    loop {
        let mut grew = false;
        let keys: Vec<String> = map.keys().cloned().collect();
        for key in &keys {
            let reachable: BTreeSet<String> = {
                let lookup = via.unwrap_or(&*map);
                map[key]
                    .iter()
                    .filter_map(|d| lookup.get(d))
                    .flatten()
                    .cloned()
                    .collect()
            };
            let set = map.get_mut(key).expect("key from keys()");
            for r in reachable {
                grew |= set.insert(r);
            }
        }
        if !grew {
            return;
        }
    }
}

/// `key = value` entries of a `[section]` in a TOML text, tolerant of
/// anything it does not understand.
fn section_entries(toml: &str, section: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for line in toml.lines() {
        let line = line.trim();
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            in_section = header.trim() == section;
            continue;
        }
        if !in_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            // `bisect-graph.workspace = true` keys carry a dotted
            // suffix; the dep name is the first segment.
            let name = key.trim().split('.').next().unwrap_or("").to_string();
            if !name.is_empty() {
                out.push((name, value.trim().to_string()));
            }
        }
    }
    out
}

/// Extracts `path = "…"` from an inline-table dependency value.
fn toml_path_value(entry: &str) -> Option<String> {
    let at = entry.find("path")?;
    let rest = entry[at + "path".len()..].trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// A resolution-time view of one node.
struct NodeInfo<'a> {
    name: &'a str,
    self_type: Option<&'a str>,
    module: &'a [String],
    file: usize,
    krate: &'a str,
    leaf: bool,
}

impl CallGraph {
    /// Builds the graph over every non-test function of `parsed`.
    /// `deps` restricts cross-crate edges to dependency direction;
    /// `None` leaves them unconstrained (single-file and fixture use).
    pub fn build(
        files: &[SourceFile],
        parsed: &[ParsedFile],
        deps: Option<&CrateDeps>,
    ) -> CallGraph {
        let mut graph = CallGraph::default();
        for (file, p) in parsed.iter().enumerate() {
            for (fn_idx, f) in p.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id = graph.nodes.len();
                graph.nodes.push(NodeRef { file, fn_idx });
                graph.ids.insert((file, fn_idx), id);
            }
        }
        let infos: Vec<NodeInfo> = graph
            .nodes
            .iter()
            .map(|n| {
                let f = &parsed[n.file].fns[n.fn_idx];
                NodeInfo {
                    name: &f.name,
                    self_type: f.self_type.as_deref(),
                    module: &f.module,
                    file: n.file,
                    krate: crate_of(&files[n.file].path),
                    leaf: is_leaf_path(&files[n.file].path),
                }
            })
            .collect();
        // Name → node-id indexes, candidate lists in node-id order.
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (id, info) in infos.iter().enumerate() {
            match info.self_type {
                None => free_by_name.entry(info.name).or_default().push(id),
                Some(ty) => {
                    methods_by_name.entry(info.name).or_default().push(id);
                    typed.entry((ty, info.name)).or_default().push(id);
                }
            }
        }
        graph.edges = vec![Vec::new(); graph.nodes.len()];
        for caller in 0..graph.nodes.len() {
            let n = graph.nodes[caller];
            let caller_info = &infos[caller];
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            for call in &parsed[n.file].fns[n.fn_idx].calls {
                let candidates: &[usize] = match &call.target {
                    CallTarget::Free(name) => {
                        free_by_name.get(name.as_str()).map_or(&[], Vec::as_slice)
                    }
                    CallTarget::Method(name) => methods_by_name
                        .get(name.as_str())
                        .map_or(&[], Vec::as_slice),
                    CallTarget::Qualified(q, name) => {
                        let ty = if q == "Self" {
                            caller_info.self_type.unwrap_or(q.as_str())
                        } else {
                            q.as_str()
                        };
                        match typed.get(&(ty, name.as_str())) {
                            Some(c) => c.as_slice(),
                            // A module-qualified free call: `special::path(…)`.
                            None => free_by_name.get(name.as_str()).map_or(&[], Vec::as_slice),
                        }
                    }
                    CallTarget::Macro(_) => &[],
                };
                let resolved = resolve_tiered(caller, caller_info, candidates, &infos, deps);
                for callee in resolved {
                    if callee != caller && seen.insert(callee) {
                        graph.edges[caller].push(Edge {
                            callee,
                            line: call.line,
                            col: call.col,
                        });
                    }
                }
            }
            graph.edges[caller].sort_by_key(|e| e.callee);
        }
        graph
    }

    /// The node id of `(file, fn_idx)`, when it is in the graph.
    pub fn node_id(&self, file: usize, fn_idx: usize) -> Option<usize> {
        self.ids.get(&(file, fn_idx)).copied()
    }

    /// Forward reachability from `roots`: `parent[n]` is `Some(n)` for
    /// a root, `Some(p)` for a node first reached from `p`, `None` for
    /// unreached nodes. BFS in node-id order keeps parents (and so
    /// diagnostic paths) deterministic.
    pub fn reach_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if parent[r].is_none() {
                parent[r] = Some(r);
                queue.push(r);
            }
        }
        let mut at = 0usize;
        while at < queue.len() {
            let n = queue[at];
            at += 1;
            for e in &self.edges[n] {
                if parent[e.callee].is_none() {
                    parent[e.callee] = Some(n);
                    queue.push(e.callee);
                }
            }
        }
        parent
    }

    /// The root-to-`node` call chain under a [`CallGraph::reach_from`]
    /// parent map, as function names.
    pub fn path_to<'a>(
        &self,
        parsed: &'a [ParsedFile],
        parent: &[Option<usize>],
        node: usize,
    ) -> Vec<&'a str> {
        let mut chain = Vec::new();
        let mut at = node;
        loop {
            let n = self.nodes[at];
            chain.push(parsed[n.file].fns[n.fn_idx].name.as_str());
            match parent[at] {
                Some(p) if p != at && chain.len() <= self.nodes.len() => at = p,
                _ => break,
            }
        }
        chain.reverse();
        chain
    }
}

/// Applies the resolution tiers to a candidate list: same file + same
/// module, same file, same crate, then dependency-allowed crates. All
/// candidates of the first non-empty tier are returned.
fn resolve_tiered(
    caller: usize,
    caller_info: &NodeInfo<'_>,
    candidates: &[usize],
    infos: &[NodeInfo<'_>],
    deps: Option<&CrateDeps>,
) -> Vec<usize> {
    let _ = caller;
    let allowed = |id: usize| -> bool {
        if infos[id].leaf && !caller_info.leaf {
            return false;
        }
        match deps {
            Some(d) => d.allows(caller_info.krate, infos[id].krate, caller_info.leaf),
            None => true,
        }
    };
    let same_file = |id: usize| infos[id].file == caller_info.file;
    let same_crate = |id: usize| infos[id].krate == caller_info.krate && !infos[id].leaf;
    let tiers: [&dyn Fn(usize) -> bool; 4] = [
        &|id| same_file(id) && infos[id].module == caller_info.module && allowed(id),
        &|id| same_file(id) && allowed(id),
        &|id| same_crate(id) && allowed(id),
        &|id| allowed(id),
    ];
    for tier in tiers {
        let hits: Vec<usize> = candidates.iter().copied().filter(|&id| tier(id)).collect();
        if !hits.is_empty() {
            return hits;
        }
    }
    Vec::new()
}
