//! Machine-readable output: `lint.json` and the suppressions report,
//! hand-rolled in the same flat-record style as `bisect_bench::json`
//! writes `BENCH_results.json` (the workspace has no serde).

use crate::engine::Report;

impl Report {
    /// Serializes the report as pretty-printed JSON. This is also the
    /// baseline format ([`crate::baseline::Baseline::from_json`] reads
    /// the `diagnostics` array back).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"bisect-lint\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", escape(d.rule)));
            out.push_str(&format!("\"severity\": {}, ", escape(d.severity.name())));
            out.push_str(&format!("\"file\": {}, ", escape(&d.file)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"col\": {}, ", d.col));
            out.push_str(&format!("\"message\": {}, ", escape(&d.message)));
            match &d.suggestion {
                Some(s) => out.push_str(&format!("\"suggestion\": {}", escape(s))),
                None => out.push_str("\"suggestion\": null"),
            }
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"unused_suppressions\": [");
        push_unused(&mut out, self);
        out.push_str("]\n}\n");
        out
    }

    /// Serializes the suppression audit: how many findings inline
    /// suppressions absorbed and which comments never fired.
    pub fn suppressions_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"bisect-lint-suppressions\",\n");
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!(
            "  \"unused_count\": {},\n",
            self.unused_suppressions.len()
        ));
        out.push_str("  \"unused\": [");
        push_unused(&mut out, self);
        out.push_str("]\n}\n");
        out
    }
}

fn push_unused(out: &mut String, report: &Report) {
    for (i, u) in report.unused_suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"file\": {}, ", escape(&u.file)));
        out.push_str(&format!("\"line\": {}, ", u.line));
        let rules: Vec<String> = u.rules.iter().map(|r| escape(r)).collect();
        out.push_str(&format!("\"rules\": [{}]", rules.join(", ")));
        out.push('}');
    }
    if !report.unused_suppressions.is_empty() {
        out.push_str("\n  ");
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, Severity};
    use crate::suppress::UnusedSuppression;

    #[test]
    fn empty_report_serializes_cleanly() {
        let report = Report {
            diagnostics: vec![],
            suppressed: 3,
            files_scanned: 12,
            unused_suppressions: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\"tool\": \"bisect-lint\""));
        assert!(json.contains("\"files_scanned\": 12"));
        assert!(json.contains("\"suppressed\": 3"));
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"unused_suppressions\": []"));
    }

    #[test]
    fn diagnostics_carry_all_fields() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "no-panic",
                severity: Severity::Error,
                file: "crates/core/src/kl.rs".into(),
                line: 9,
                col: 4,
                message: "a \"quoted\" message".into(),
                suggestion: None,
            }],
            suppressed: 0,
            files_scanned: 1,
            unused_suppressions: vec![],
        };
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.contains("\"line\": 9"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"suggestion\": null"));
    }

    #[test]
    fn suppressions_report_lists_unused_entries() {
        let report = Report {
            diagnostics: vec![],
            suppressed: 7,
            files_scanned: 2,
            unused_suppressions: vec![UnusedSuppression {
                file: "crates/core/src/kl.rs".into(),
                line: 41,
                rules: vec!["no-panic".into(), "zero-alloc".into()],
            }],
        };
        let json = report.suppressions_json();
        assert!(json.contains("\"tool\": \"bisect-lint-suppressions\""));
        assert!(json.contains("\"suppressed\": 7"));
        assert!(json.contains("\"unused_count\": 1"));
        assert!(json.contains("\"line\": 41"));
        assert!(json.contains("[\"no-panic\", \"zero-alloc\"]"));
        let full = report.to_json();
        assert!(full.contains("\"unused_suppressions\": [\n    {\"file\""));
    }
}
