//! A lightweight item-level parser on top of the loss-free lexer.
//!
//! The call-graph rules (DESIGN.md §14) need to know which functions a
//! file defines, which impl/mod scopes they sit in, what they call, and
//! which invariant-relevant constructs (allocation, panics, entropy,
//! interior mutability, …) appear in each body. None of that needs a
//! full expression grammar: a single forward walk over the token stream
//! with a brace-matched scope stack recovers items and call sites with
//! line-exact positions, and degrades gracefully on malformed input —
//! like the lexer, it never panics and never errors.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// The invariant-relevant construct classes a function body can
/// contain. Rules select the classes they care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// An allocator entry point (`Vec::new`, `vec!`, `Box::new`,
    /// `.collect()`, `.clone()`).
    Alloc,
    /// A panicking construct (`.unwrap()`, `.expect(…)`, `panic!` and
    /// friends).
    Panic,
    /// A slice/array index expression (`x[i]`), which panics when out
    /// of range. Reported only when `index_panics` is enabled.
    Index,
    /// A randomly seeded hash container (`HashMap`/`HashSet`).
    Hash,
    /// A wall-clock read (`Instant::now`, `SystemTime::now`).
    Time,
    /// An ambient entropy source (`thread_rng`, `OsRng`, …).
    Entropy,
    /// A shared-state / interior-mutability type (`RefCell`, `Mutex`,
    /// atomics, `static mut`). `thread_local!` bodies are exempt —
    /// per-thread state is not shared.
    InteriorMut,
    /// An ad-hoc threading primitive (`thread::spawn`, `thread::scope`,
    /// `thread::Builder`).
    ThreadSpawn,
}

/// One invariant-relevant construct at a precise position.
#[derive(Debug, Clone)]
pub struct Effect {
    /// Which class of construct.
    pub kind: EffectKind,
    /// Human-readable spelling for diagnostics (e.g. `Vec::new`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// How a call site names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `foo(…)` — an unqualified call.
    Free(String),
    /// `Seg::foo(…)` — the last qualifying segment plus the name
    /// (`Seg` may be a type, a module, or `Self`).
    Qualified(String, String),
    /// `.foo(…)` — a method call on an unknown receiver.
    Method(String),
    /// `foo!(…)` — a macro invocation.
    Macro(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// What the call names.
    pub target: CallTarget,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One `fn` item: its identity, scope, body extent, and everything the
/// analyses need to know about its body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The self type of the enclosing `impl` block, when any (the
    /// first path segment of the implemented type).
    pub self_type: Option<String>,
    /// The in-file `mod` nesting the item sits under.
    pub module: Vec<String>,
    /// Whether the item lies in `#[cfg(test)]` code.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index where the item starts (first leading attribute or
    /// visibility token), for attaching item-scope suppressions.
    pub item_start: usize,
    /// 1-based line range `[first, last]` covered by the item,
    /// including its body.
    pub line_range: (u32, u32),
    /// Call sites inside the body, in source order.
    pub calls: Vec<Call>,
    /// Invariant-relevant constructs inside the body, in source order.
    pub effects: Vec<Effect>,
}

/// A parsed file: its functions plus constructs outside any function
/// (const/static initializers, macro definitions).
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Effects found outside any `fn` body.
    pub top_effects: Vec<Effect>,
}

/// Keywords that look like call targets when followed by `(` but are
/// control flow or binding forms.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "static", "struct", "super", "trait", "true", "type", "union",
    "unsafe", "use", "where", "while", "yield",
];

/// Identifiers that signal ambient entropy (mirrors the determinism
/// rule family).
pub const ENTROPY_SOURCES: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "RandomState",
    "OsRng",
    "getrandom",
];

/// Interior-mutability / shared-state type names for the par-safety
/// family.
const INTERIOR_MUT: &[&str] = &[
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "Mutex",
    "RwLock",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];

/// The panicking macros (mirrors the no-panic rule).
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

struct Scope {
    /// Brace depth at which this scope was opened.
    depth: usize,
    kind: ScopeKind,
}

enum ScopeKind {
    Module(String),
    Impl(Option<String>),
    Fn { fn_idx: usize },
    Block,
}

/// Parses `file` into items, calls, and effects.
pub fn parse(file: &SourceFile) -> ParsedFile {
    let tl_ranges = macro_body_ranges(file, "thread_local");
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth = 0usize;
    // `fn` items whose signature has started but whose body `{` has
    // not yet been seen: (fn index, brace depth of the enclosing scope).
    let mut pending_fn: Option<usize> = None;
    let mut pending_mod: Option<String> = None;
    let mut pending_impl: Option<Option<String>> = None;

    let mut i = 0usize;
    while i < file.tokens.len() {
        let t = file.tokens[i];
        if t.is_trivia() {
            i += 1;
            continue;
        }
        let text = file.tok(i);
        match (t.kind, text) {
            (TokenKind::Punct, "{") => {
                depth += 1;
                let kind = if let Some(fn_idx) = pending_fn.take() {
                    ScopeKind::Fn { fn_idx }
                } else if let Some(name) = pending_mod.take() {
                    ScopeKind::Module(name)
                } else if let Some(ty) = pending_impl.take() {
                    ScopeKind::Impl(ty)
                } else {
                    ScopeKind::Block
                };
                scopes.push(Scope { depth, kind });
            }
            (TokenKind::Punct, "}") => {
                if scopes.last().is_some_and(|s| s.depth == depth) {
                    if let Some(Scope {
                        kind: ScopeKind::Fn { fn_idx },
                        ..
                    }) = scopes.pop()
                    {
                        out.fns[fn_idx].line_range.1 = t.line;
                    }
                }
                depth = depth.saturating_sub(1);
            }
            (TokenKind::Punct, ";") => {
                // `fn f(…);` (trait method declaration) or `mod m;`:
                // the pending item has no body in this file.
                if let Some(fn_idx) = pending_fn.take() {
                    out.fns[fn_idx].line_range.1 = t.line;
                }
                pending_mod = None;
            }
            (TokenKind::Ident, "mod") => {
                if let Some(n) = file.next_code(i + 1) {
                    if file.tokens[n].kind == TokenKind::Ident {
                        pending_mod = Some(file.tok(n).to_string());
                        i = n + 1;
                        continue;
                    }
                }
            }
            (TokenKind::Ident, "impl") => {
                // Scan the header up to its `{` to find the self type:
                // the first identifier after a top-level `for` when one
                // exists, otherwise the first identifier after the
                // (possibly generic-bracketed) `impl` keyword.
                let mut ty: Option<String> = None;
                let mut after_for = false;
                let mut saw_for = false;
                let mut j = i + 1;
                let mut angle = 0i32;
                while let Some(k) = file.next_code(j) {
                    let s = file.tok(k);
                    match s {
                        "{" | ";" => break,
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "for" if angle == 0 => {
                            saw_for = true;
                            after_for = true;
                            ty = None;
                        }
                        _ if file.tokens[k].kind == TokenKind::Ident
                            && angle == 0
                            && ty.is_none()
                            && (!saw_for || after_for)
                            && !matches!(s, "dyn" | "mut" | "const" | "unsafe") =>
                        {
                            ty = Some(s.to_string());
                        }
                        _ => {}
                    }
                    j = k + 1;
                }
                pending_impl = Some(ty);
            }
            (TokenKind::Ident, "fn") => {
                if let Some(n) = file.next_code(i + 1) {
                    if file.tokens[n].kind == TokenKind::Ident {
                        let module = scopes
                            .iter()
                            .filter_map(|s| match &s.kind {
                                ScopeKind::Module(m) => Some(m.clone()),
                                _ => None,
                            })
                            .collect();
                        let self_type = scopes.iter().rev().find_map(|s| match &s.kind {
                            ScopeKind::Impl(ty) => Some(ty.clone()),
                            _ => None,
                        });
                        let item_start = item_start(file, i);
                        let fn_idx = out.fns.len();
                        out.fns.push(FnItem {
                            name: file.tok(n).to_string(),
                            self_type: self_type.flatten(),
                            module,
                            is_test: file.in_test_code(i),
                            line: t.line,
                            item_start,
                            line_range: (file.tokens[item_start].line, t.line),
                            calls: Vec::new(),
                            effects: Vec::new(),
                        });
                        pending_fn = Some(fn_idx);
                        i = n + 1;
                        continue;
                    }
                }
            }
            _ => {
                let current_fn = scopes.iter().rev().find_map(|s| match s.kind {
                    ScopeKind::Fn { fn_idx } => Some(fn_idx),
                    _ => None,
                });
                scan_token(file, i, &tl_ranges, &mut out, current_fn);
            }
        }
        i += 1;
    }
    // Unterminated items run to the end of the file.
    while let Some(scope) = scopes.pop() {
        if let ScopeKind::Fn { fn_idx } = scope.kind {
            if let Some(last) = file.tokens.last() {
                out.fns[fn_idx].line_range.1 = last.line;
            }
        }
    }
    out
}

/// Walks back from the `fn` keyword over attributes, visibility, and
/// modifiers to the first token of the item.
fn item_start(file: &SourceFile, fn_kw: usize) -> usize {
    let mut start = fn_kw;
    let mut j = fn_kw;
    while let Some(k) = file.prev_code(j) {
        let s = file.tok(k);
        match s {
            "pub" | "const" | "async" | "unsafe" | "extern" => {
                start = k;
                j = k;
            }
            ")" => {
                // The `(crate)` of `pub(crate)`; walk to its `(`.
                let mut depth = 0usize;
                let mut m = k;
                loop {
                    match file.tok(m) {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    match file.prev_code(m) {
                        Some(p) => m = p,
                        None => break,
                    }
                }
                start = m;
                j = m;
            }
            "]" => {
                // A `#[…]` attribute; walk to its `#`.
                let mut depth = 0usize;
                let mut m = k;
                loop {
                    match file.tok(m) {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    match file.prev_code(m) {
                        Some(p) => m = p,
                        None => break,
                    }
                }
                match file.prev_code(m) {
                    Some(h) if file.tok(h) == "#" => {
                        start = h;
                        j = h;
                    }
                    _ => break,
                }
            }
            _ if file.tokens[k].kind == TokenKind::Str => {
                // The ABI string of `extern "C"`.
                j = k;
            }
            _ => break,
        }
    }
    start
}

/// Detects calls and effects at token `i`, appending to the enclosing
/// function (or the file's top-level effects).
fn scan_token(
    file: &SourceFile,
    i: usize,
    tl_ranges: &[(usize, usize)],
    out: &mut ParsedFile,
    current_fn: Option<usize>,
) {
    // Test code is out of scope for every analysis (test `fn` items
    // are also excluded from the call graph).
    if file.in_test_code(i) {
        return;
    }
    let t = file.tokens[i];
    let (line, col) = (t.line, t.col);
    let mut effects: Vec<Effect> = Vec::new();
    let mut calls: Vec<Call> = Vec::new();
    let push_effect = |effects: &mut Vec<Effect>, kind: EffectKind, what: &str| {
        effects.push(Effect {
            kind,
            what: what.to_string(),
            line,
            col,
        });
    };

    if t.kind == TokenKind::Punct && file.tok(i) == "[" {
        // An index expression: `expr[…]`. The previous code token of an
        // index is the tail of an expression — an identifier, a closing
        // bracket, or `?`. Types (`[u32; 4]`), attributes (`#[…]`), and
        // slice literals follow other tokens.
        if let Some(p) = file.prev_code(i) {
            let prev = file.tok(p);
            let is_expr_tail = (file.tokens[p].kind == TokenKind::Ident
                && !KEYWORDS.contains(&prev))
                || prev == ")"
                || prev == "]"
                || prev == "?";
            if is_expr_tail {
                push_effect(&mut effects, EffectKind::Index, "indexing `[…]`");
            }
        }
    }

    if t.kind == TokenKind::Ident {
        let name = file.tok(i);
        let called = is_called(file, i);
        let is_method = called && file.prev_code(i).is_some_and(|p| file.tok(p) == ".");
        let qualifier = if is_method { None } else { qualifier(file, i) };
        let is_macro = macro_bang(file, i);

        // Effects.
        match name {
            "Vec" | "Box" if file.matches_seq(i, &[name, ":", ":", "new"]).is_some() => {
                push_effect(
                    &mut effects,
                    EffectKind::Alloc,
                    if name == "Vec" {
                        "Vec::new"
                    } else {
                        "Box::new"
                    },
                );
            }
            "vec" if is_macro => push_effect(&mut effects, EffectKind::Alloc, "vec!"),
            "collect" | "clone" if is_method => {
                push_effect(
                    &mut effects,
                    EffectKind::Alloc,
                    if name == "collect" {
                        ".collect()"
                    } else {
                        ".clone()"
                    },
                );
            }
            "unwrap" | "expect" if is_method => {
                push_effect(&mut effects, EffectKind::Panic, &format!(".{name}()"));
            }
            _ if PANIC_MACROS.contains(&name) && is_macro => {
                push_effect(&mut effects, EffectKind::Panic, &format!("{name}!"));
            }
            "HashMap" | "HashSet" => push_effect(&mut effects, EffectKind::Hash, name),
            "Instant" | "SystemTime" if file.matches_seq(i, &[name, ":", ":", "now"]).is_some() => {
                push_effect(&mut effects, EffectKind::Time, &format!("{name}::now"));
            }
            "thread" => {
                if let Some(m) = ["spawn", "scope", "Builder"]
                    .iter()
                    .copied()
                    .find(|m| file.matches_seq(i, &["thread", ":", ":", m]).is_some())
                {
                    push_effect(
                        &mut effects,
                        EffectKind::ThreadSpawn,
                        &format!("thread::{m}"),
                    );
                }
            }
            "static" if file.matches_seq(i, &["static", "mut"]).is_some() => {
                push_effect(&mut effects, EffectKind::InteriorMut, "static mut");
            }
            _ if ENTROPY_SOURCES.contains(&name) => {
                push_effect(&mut effects, EffectKind::Entropy, name);
            }
            _ if INTERIOR_MUT.contains(&name) => {
                let in_thread_local = tl_ranges.iter().any(|&(s, e)| i >= s && i < e);
                // Importing a type is not using it; the construction
                // site gets flagged instead.
                if !in_thread_local && !in_use_decl(file, i) {
                    push_effect(&mut effects, EffectKind::InteriorMut, name);
                }
            }
            _ => {}
        }

        // Calls.
        if is_macro {
            calls.push(Call {
                target: CallTarget::Macro(name.to_string()),
                line,
                col,
            });
        } else if called && !KEYWORDS.contains(&name) {
            let target = if is_method {
                CallTarget::Method(name.to_string())
            } else if let Some(q) = qualifier {
                CallTarget::Qualified(q, name.to_string())
            } else {
                CallTarget::Free(name.to_string())
            };
            calls.push(Call { target, line, col });
        }
    }

    match current_fn {
        Some(f) => {
            out.fns[f].effects.append(&mut effects);
            out.fns[f].calls.append(&mut calls);
        }
        None => out.top_effects.append(&mut effects),
    }
}

/// Whether token `i` sits inside a `use` declaration, walking back to
/// the statement head. A `{` continues the walk only as the group of a
/// `use a::{B, C}` import (preceded by `:`), so the scan never leaves
/// the enclosing statement.
fn in_use_decl(file: &SourceFile, i: usize) -> bool {
    let mut j = i;
    for _ in 0..64 {
        let Some(p) = file.prev_code(j) else {
            return false;
        };
        match file.tok(p) {
            "use" => return true,
            ";" | "}" => return false,
            "{" => {
                let before = file.prev_code(p);
                if before.is_none_or(|b| file.tok(b) != ":") {
                    return false;
                }
                j = p;
            }
            _ => j = p,
        }
    }
    false
}

/// Whether the identifier at `i` is directly invoked: followed by `(`,
/// optionally with a `::<…>` turbofish in between.
fn is_called(file: &SourceFile, i: usize) -> bool {
    let Some(a) = file.next_code(i + 1) else {
        return false;
    };
    if file.tok(a) == "(" {
        return true;
    }
    // `name::<T>(…)`.
    if file.tok(a) != ":" {
        return false;
    }
    let Some(b) = file.next_code(a + 1) else {
        return false;
    };
    if file.tok(b) != ":" {
        return false;
    }
    let Some(c) = file.next_code(b + 1) else {
        return false;
    };
    if file.tok(c) != "<" {
        return false;
    }
    let mut angle = 0i32;
    let mut j = c;
    for _ in 0..64 {
        match file.tok(j) {
            "<" => angle += 1,
            ">" => {
                angle -= 1;
                if angle == 0 {
                    return file.next_code(j + 1).is_some_and(|k| file.tok(k) == "(");
                }
            }
            _ => {}
        }
        match file.next_code(j + 1) {
            Some(k) => j = k,
            None => return false,
        }
    }
    false
}

/// The `Seg` of `Seg::name` at the identifier `i` holding `name`, when
/// the call is path-qualified.
fn qualifier(file: &SourceFile, i: usize) -> Option<String> {
    let a = file.prev_code(i)?;
    if file.tok(a) != ":" {
        return None;
    }
    let b = file.prev_code(a)?;
    if file.tok(b) != ":" {
        return None;
    }
    let q = file.prev_code(b)?;
    (file.tokens[q].kind == TokenKind::Ident).then(|| file.tok(q).to_string())
}

/// Whether the identifier at `i` is a macro name (followed by `!` that
/// is not part of `!=`).
fn macro_bang(file: &SourceFile, i: usize) -> bool {
    let Some(a) = file.next_code(i + 1) else {
        return false;
    };
    if file.tok(a) != "!" {
        return false;
    }
    // `!=` lexes as `!` then `=` with nothing between.
    !(a + 1 < file.tokens.len() && file.tok(a + 1) == "=")
}

/// Token ranges of `name! { … }` / `name! ( … )` macro bodies, for
/// exempting `thread_local!` declarations from shared-state effects.
fn macro_body_ranges(file: &SourceFile, name: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    for i in 0..file.tokens.len() {
        if file.tokens[i].kind != TokenKind::Ident || file.tok(i) != name || !macro_bang(file, i) {
            continue;
        }
        let Some(bang) = file.next_code(i + 1) else {
            continue;
        };
        let Some(open) = file.next_code(bang + 1) else {
            continue;
        };
        let (o, c) = match file.tok(open) {
            "{" => ("{", "}"),
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => continue,
        };
        let mut depth = 0usize;
        let mut j = open;
        loop {
            let s = file.tok(j);
            if s == o {
                depth += 1;
            } else if s == c {
                depth -= 1;
                if depth == 0 {
                    ranges.push((i, j + 1));
                    break;
                }
            }
            match file.next_code(j + 1) {
                Some(k) => j = k,
                None => {
                    ranges.push((i, file.tokens.len()));
                    break;
                }
            }
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> ParsedFile {
        parse(&SourceFile::new("x.rs", src))
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}` in {:?}", p.fns))
    }

    #[test]
    fn finds_fns_with_impl_and_module_scopes() {
        let src = r#"
fn free() {}
struct Foo;
impl Foo {
    pub fn method(&self) {}
}
impl Clone for Foo {
    fn clone(&self) -> Foo { Foo }
}
mod inner {
    pub fn nested() {}
}
"#;
        let p = parsed(src);
        assert_eq!(fn_named(&p, "free").self_type, None);
        assert_eq!(fn_named(&p, "method").self_type.as_deref(), Some("Foo"));
        assert_eq!(fn_named(&p, "clone").self_type.as_deref(), Some("Foo"));
        assert_eq!(fn_named(&p, "nested").module, vec!["inner"]);
    }

    #[test]
    fn collects_calls_of_every_shape() {
        let src = r#"
fn caller() {
    helper();
    Foo::build();
    x.method();
    it.collect::<Vec<u32>>();
    log!("hi");
    if cond() { loop {} }
}
"#;
        let p = parsed(src);
        let calls = &fn_named(&p, "caller").calls;
        let targets: Vec<&CallTarget> = calls.iter().map(|c| &c.target).collect();
        assert!(targets.contains(&&CallTarget::Free("helper".into())));
        assert!(targets.contains(&&CallTarget::Qualified("Foo".into(), "build".into())));
        assert!(targets.contains(&&CallTarget::Method("method".into())));
        assert!(targets.contains(&&CallTarget::Method("collect".into())));
        assert!(targets.contains(&&CallTarget::Macro("log".into())));
        assert!(targets.contains(&&CallTarget::Free("cond".into())));
        // Control-flow keywords are not calls.
        assert!(!targets
            .iter()
            .any(|t| matches!(t, CallTarget::Free(n) if n == "if" || n == "loop")));
    }

    #[test]
    fn collects_effects_with_positions() {
        let src = "fn f(o: Option<u32>, s: &[u32]) -> u32 {\n    let v = Vec::<u32>::new();\n    o.unwrap() + s[0]\n}\n";
        let p = parsed(src);
        let f = fn_named(&p, "f");
        let kinds: Vec<(EffectKind, u32)> = f.effects.iter().map(|e| (e.kind, e.line)).collect();
        assert!(kinds.contains(&(EffectKind::Panic, 3)));
        assert!(kinds.contains(&(EffectKind::Index, 3)));
    }

    #[test]
    fn index_effects_skip_types_attributes_and_literals() {
        let src = r#"
#[derive(Debug)]
struct S { a: [u32; 4] }
fn f(s: &S, i: usize) -> u32 {
    let lit = [1, 2, 3];
    let slice: &[u32] = &lit;
    s.a[i] + slice[0]
}
"#;
        let p = parsed(src);
        let f = fn_named(&p, "f");
        let idx: Vec<u32> = f
            .effects
            .iter()
            .filter(|e| e.kind == EffectKind::Index)
            .map(|e| e.line)
            .collect();
        assert_eq!(idx, vec![7, 7]);
        assert!(p.top_effects.is_empty());
    }

    #[test]
    fn thread_local_interior_mutability_is_exempt() {
        let src = r#"
thread_local! {
    static W: RefCell<u32> = RefCell::new(0);
}
fn shared() {
    let m = Mutex::new(0);
}
"#;
        let p = parsed(src);
        assert!(p
            .top_effects
            .iter()
            .all(|e| e.kind != EffectKind::InteriorMut));
        let f = fn_named(&p, "shared");
        assert_eq!(f.effects.len(), 1);
        assert_eq!(f.effects[0].what, "Mutex");
    }

    #[test]
    fn test_code_is_marked() {
        let src = r#"
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn check() {}
}
"#;
        let p = parsed(src);
        assert!(!fn_named(&p, "live").is_test);
        assert!(fn_named(&p, "check").is_test);
    }

    #[test]
    fn line_ranges_cover_attributes_and_bodies() {
        let src = "\n#[inline]\npub fn f() {\n    body();\n}\n";
        let p = parsed(src);
        let f = fn_named(&p, "f");
        assert_eq!(f.line_range, (2, 5));
    }

    #[test]
    fn survives_malformed_input() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "fn f( {",
            "mod m { fn g() {",
            "}}}",
            "fn f() { x[ }",
        ] {
            let _ = parsed(src);
        }
    }
}
