//! The api-docs rule: public items of the algorithm crate carry doc
//! comments, matching its `#![warn(missing_docs)]` promise.

use crate::config::{path_in, Config};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Item keywords that introduce a documentable public item.
const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

/// Flags `pub` items (functions, types, traits, consts, modules) in
/// the configured paths that have no doc comment. `pub(crate)` and
/// `pub(super)` items, `pub use` re-exports, and struct fields are out
/// of scope — this mirrors what `missing_docs` would warn about while
/// staying a purely lexical check.
pub struct ApiDocs;

impl Rule for ApiDocs {
    fn id(&self) -> &'static str {
        "api-docs"
    }

    fn applies(&self, cfg: &Config, path: &str) -> bool {
        path_in(path, &cfg.api_docs_paths)
    }

    fn check(&self, _cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident
                || file.tok(i) != "pub"
                || file.in_test_code(i)
            {
                continue;
            }
            // Skip restricted visibility: `pub(crate)`, `pub(in …)`.
            let Some(mut j) = file.next_code(i + 1) else {
                continue;
            };
            if file.tok(j) == "(" {
                continue;
            }
            // Skip modifiers (`const fn`, `async fn`, `extern "C" fn`)
            // until the item keyword. `const` doubles as an item
            // keyword, so it only counts as a modifier when followed
            // by `fn`.
            let mut keyword = None;
            for _ in 0..4 {
                let word = file.tok(j);
                let next = file.next_code(j + 1);
                if word == "const" && next.is_some_and(|n| file.tok(n) == "fn") {
                    j = match next {
                        Some(n) => n,
                        None => break,
                    };
                    continue;
                }
                if ITEM_KEYWORDS.contains(&word) {
                    keyword = Some(word.to_string());
                    break;
                }
                if matches!(word, "async" | "extern" | "unsafe") {
                    j = match next {
                        Some(n) => n,
                        None => break,
                    };
                    continue;
                }
                break; // a field or something else — not an item
            }
            let Some(keyword) = keyword else { continue };
            let name_idx = file.next_code(j + 1);
            // `pub mod name;` declares an external module whose docs
            // live as `//!` inner comments in the module's own file —
            // that satisfies `missing_docs`, so it is in scope only in
            // its inline `pub mod name { … }` form.
            if keyword == "mod"
                && name_idx
                    .and_then(|n| file.next_code(n + 1))
                    .is_some_and(|s| file.tok(s) == ";")
            {
                continue;
            }
            if has_doc(file, i) {
                continue;
            }
            let item_name = name_idx
                .map(|n| file.tok(n).to_string())
                .unwrap_or_default();
            let (line, col) = file.position(i);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Warning,
                file: file.path.clone(),
                line,
                col,
                message: format!("public {keyword} `{item_name}` has no doc comment"),
                suggestion: Some("add a `///` doc comment describing the item".into()),
            });
        }
    }
}

/// Walks backwards from the `pub` token over attributes and plain
/// comments, looking for a doc comment (`///`, `/**`, or a `#[doc…]`
/// attribute) attached to the item.
fn has_doc(file: &SourceFile, pub_idx: usize) -> bool {
    let mut j = pub_idx;
    loop {
        let Some(k) = prev_meaningful(file, j) else {
            return false;
        };
        let t = &file.tokens[k];
        match t.kind {
            TokenKind::LineComment => {
                let text = file.tok(k);
                if text.starts_with("///") {
                    return true;
                }
                j = k; // a plain comment (e.g. a lint suppression)
            }
            TokenKind::BlockComment => {
                let text = file.tok(k);
                if text.starts_with("/**") {
                    return true;
                }
                j = k;
            }
            _ if file.tok(k) == "]" => {
                // Walk back over one `#[…]` attribute.
                let Some(open) = match_backward(file, k) else {
                    return false;
                };
                let Some(hash) = prev_meaningful(file, open) else {
                    return false;
                };
                if file.tok(hash) != "#" {
                    // `#![…]` inner attributes have `!` here: the item
                    // scan has reached the top of a module — no doc.
                    return false;
                }
                if file
                    .next_code(open + 1)
                    .is_some_and(|d| file.tok(d) == "doc")
                {
                    return true;
                }
                j = hash;
            }
            _ => return false,
        }
    }
}

/// The previous token that is not whitespace, strictly before `i`.
fn prev_meaningful(file: &SourceFile, i: usize) -> Option<usize> {
    (0..i)
        .rev()
        .find(|&j| file.tokens[j].kind != TokenKind::Whitespace)
}

/// Given the index of a `]`, the index of its matching `[`.
fn match_backward(file: &SourceFile, close: usize) -> Option<usize> {
    let mut depth = 0usize;
    for j in (0..=close).rev() {
        if file.tokens[j].is_trivia() {
            continue;
        }
        match file.tok(j) {
            "]" => depth += 1,
            "[" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}
