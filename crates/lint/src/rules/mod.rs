//! The per-file rule set. Each rule decides which files it governs
//! from the [`Config`] and walks the token stream of a [`SourceFile`],
//! pushing [`Diagnostic`]s for violations in non-test code.
//!
//! This module holds only the *local* rules — the ones a single file
//! decides. The interprocedural rules (`no-panic`, `zero-alloc`,
//! `determinism-taint`, `par-safety-*`) live in [`crate::taint`] and
//! run over the workspace call graph instead.
//!
//! To add a local rule: implement [`Rule`], give it a unique
//! kebab-case id (share a family prefix — `determinism-*` — when it
//! belongs to an existing family so family-wide suppressions cover
//! it), register it in [`all_rules`], scope it in `lint.toml`, and add
//! a failing fixture under `crates/lint/tests/fixtures/`.

mod api_docs;
mod determinism;
mod unsafe_hygiene;

pub use api_docs::ApiDocs;
pub use determinism::{DeterminismEntropy, DeterminismHash, DeterminismTime};
pub use unsafe_hygiene::UnsafeHygiene;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// A single per-file static check.
pub trait Rule {
    /// The rule's stable kebab-case id, used in output and in
    /// `// lint: allow(<id>)` suppressions.
    fn id(&self) -> &'static str;

    /// Whether the rule runs on the file at `path` under `cfg`.
    fn applies(&self, cfg: &Config, path: &str) -> bool;

    /// Checks one file, appending findings to `out`.
    fn check(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// Every shipped per-file rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(DeterminismHash),
        Box::new(DeterminismTime),
        Box::new(DeterminismEntropy),
        Box::new(UnsafeHygiene),
        Box::new(ApiDocs),
    ]
}
