//! The determinism family: the reproduction's results must be a pure
//! function of the seed, so randomly seeded containers, wall-clock
//! reads, and ambient entropy are confined to sanctioned modules.

use crate::config::{path_in, Config};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Bans `std::collections::HashMap`/`HashSet` in determinism-critical
/// code: their iteration order is seeded per process (`RandomState`),
/// which silently breaks run-to-run reproducibility the moment the
/// order escapes (and a linter cannot prove it never does).
pub struct DeterminismHash;

impl Rule for DeterminismHash {
    fn id(&self) -> &'static str {
        "determinism-hash"
    }

    fn applies(&self, cfg: &Config, path: &str) -> bool {
        path_in(path, &cfg.determinism_paths)
    }

    fn check(&self, _cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident || file.in_test_code(i) {
                continue;
            }
            let name = file.tok(i);
            if name != "HashMap" && name != "HashSet" {
                continue;
            }
            let (line, col) = file.position(i);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                file: file.path.clone(),
                line,
                col,
                message: format!(
                    "`{name}` iterates in a per-process random order in determinism-critical code"
                ),
                suggestion: Some(
                    "use BTreeMap/BTreeSet or sort before iterating; if the container is \
                     provably lookup-only, suppress with `// lint: allow(determinism-hash)`"
                        .into(),
                ),
            });
        }
    }
}

/// Bans wall-clock reads (`Instant::now`, `SystemTime::now`) outside
/// the sanctioned timing modules: timing that leaks into results or
/// control flow makes runs machine- and load-dependent.
pub struct DeterminismTime;

impl Rule for DeterminismTime {
    fn id(&self) -> &'static str {
        "determinism-time"
    }

    fn applies(&self, cfg: &Config, path: &str) -> bool {
        path_in(path, &cfg.timing_paths) && !path_in(path, &cfg.timing_allow)
    }

    fn check(&self, _cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident || file.in_test_code(i) {
                continue;
            }
            let name = file.tok(i);
            if name != "Instant" && name != "SystemTime" {
                continue;
            }
            if file.matches_seq(i, &[name, ":", ":", "now"]).is_none() {
                continue;
            }
            let (line, col) = file.position(i);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                file: file.path.clone(),
                line,
                col,
                message: format!("`{name}::now()` outside the sanctioned timing modules"),
                suggestion: Some(
                    "route timing through the bench runner/criterion shim, or suppress with \
                     `// lint: allow(determinism-time)` for measurement-only code"
                        .into(),
                ),
            });
        }
    }
}

/// Identifiers whose presence means ambient entropy is being drawn.
const ENTROPY_SOURCES: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "RandomState",
    "OsRng",
    "getrandom",
];

/// Bans ambient entropy outside the vendored `rand` shim: every random
/// stream must descend from an explicit, logged seed.
pub struct DeterminismEntropy;

impl Rule for DeterminismEntropy {
    fn id(&self) -> &'static str {
        "determinism-entropy"
    }

    fn applies(&self, cfg: &Config, path: &str) -> bool {
        !path_in(path, &cfg.entropy_allow)
    }

    fn check(&self, _cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident || file.in_test_code(i) {
                continue;
            }
            let name = file.tok(i);
            if !ENTROPY_SOURCES.contains(&name) {
                continue;
            }
            let (line, col) = file.position(i);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                file: file.path.clone(),
                line,
                col,
                message: format!("entropy source `{name}` outside the rand shim"),
                suggestion: Some(
                    "derive randomness from an explicit seed (SeedableRng / SeedSequence)".into(),
                ),
            });
        }
    }
}
