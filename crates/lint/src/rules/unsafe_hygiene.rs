//! The unsafe-hygiene rule: every crate root forbids `unsafe_code`,
//! and any future relaxation must justify each block with a
//! `// SAFETY:` comment.

use crate::config::Config;
use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Checks two things: configured crate roots carry
/// `#![forbid(unsafe_code)]`, and every `unsafe` keyword anywhere in
/// scanned non-test code is immediately preceded by a comment
/// containing `SAFETY:`.
pub struct UnsafeHygiene;

impl Rule for UnsafeHygiene {
    fn id(&self) -> &'static str {
        "unsafe-hygiene"
    }

    fn applies(&self, _cfg: &Config, _path: &str) -> bool {
        true
    }

    fn check(&self, cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if cfg.crate_roots.contains(&file.path) && !has_forbid_unsafe(file) {
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                file: file.path.clone(),
                line: 1,
                col: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
                suggestion: Some(
                    "add `#![forbid(unsafe_code)]` to the crate root; if unsafe is truly \
                     needed, relax to `#![deny(unsafe_code)]` and justify each block with \
                     a `// SAFETY:` comment"
                        .into(),
                ),
            });
        }
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident
                || file.tok(i) != "unsafe"
                || file.in_test_code(i)
            {
                continue;
            }
            // The string `unsafe_code` inside the forbid attribute is a
            // distinct ident and never matches; this is the keyword.
            if preceded_by_safety_comment(file, i) {
                continue;
            }
            let (line, col) = file.position(i);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                file: file.path.clone(),
                line,
                col,
                message: "`unsafe` without an immediately preceding `// SAFETY:` comment".into(),
                suggestion: Some(
                    "document why the invariants hold in a `// SAFETY:` comment directly \
                     above the unsafe block"
                        .into(),
                ),
            });
        }
    }
}

/// Whether the file contains `#![forbid(unsafe_code)]` (possibly with
/// additional lints in the same attribute).
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    for i in 0..file.tokens.len() {
        if file.tokens[i].kind != TokenKind::Ident || file.tok(i) != "forbid" {
            continue;
        }
        let Some(open) = file.next_code(i + 1) else {
            continue;
        };
        if file.tok(open) != "(" {
            continue;
        }
        let mut j = open + 1;
        while let Some(k) = file.next_code(j) {
            match file.tok(k) {
                ")" => break,
                "unsafe_code" => return true,
                _ => j = k + 1,
            }
        }
    }
    false
}

/// Whether the nearest preceding non-whitespace token is a comment
/// whose text contains `SAFETY:`.
fn preceded_by_safety_comment(file: &SourceFile, i: usize) -> bool {
    for j in (0..i).rev() {
        match file.tokens[j].kind {
            TokenKind::Whitespace => continue,
            TokenKind::LineComment | TokenKind::BlockComment => {
                return file.tok(j).contains("SAFETY:");
            }
            _ => return false,
        }
    }
    false
}
