//! The zero-alloc rule: the KL/FM/SA inner loops run out of
//! `Workspace` arenas (PR 1) and must stay allocation-free after
//! warm-up.

use crate::config::{path_in, Config};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Bans the common allocator entry points — `Vec::new`, `vec!`,
/// `Box::new`, `.collect()`, `.clone()` — in the configured hot-path
/// modules. One-time warm-up sites (constructors, first-run arena
/// population) carry `// lint: allow(zero-alloc)` suppressions.
pub struct ZeroAlloc;

impl Rule for ZeroAlloc {
    fn id(&self) -> &'static str {
        "zero-alloc"
    }

    fn applies(&self, cfg: &Config, path: &str) -> bool {
        path_in(path, &cfg.hot_paths)
    }

    fn check(&self, _cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident || file.in_test_code(i) {
                continue;
            }
            let name = file.tok(i);
            let found: Option<&str> = match name {
                "Vec" | "Box" if file.matches_seq(i, &[name, ":", ":", "new"]).is_some() => {
                    Some(if name == "Vec" {
                        "Vec::new"
                    } else {
                        "Box::new"
                    })
                }
                "vec" if file.matches_seq(i, &["vec", "!"]).is_some() => Some("vec!"),
                "collect" | "clone"
                    if file.prev_code(i).is_some_and(|p| file.tok(p) == ".")
                        && file.matches_seq(i, &[name, "("]).is_some() =>
                {
                    Some(if name == "collect" {
                        ".collect()"
                    } else {
                        ".clone()"
                    })
                }
                _ => None,
            };
            let Some(what) = found else { continue };
            let (line, col) = file.position(i);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                file: file.path.clone(),
                line,
                col,
                message: format!("`{what}` in a zero-alloc hot path"),
                suggestion: Some(
                    "reuse a Workspace arena buffer; for one-time warm-up allocation, \
                     suppress with `// lint: allow(zero-alloc)`"
                        .into(),
                ),
            });
        }
    }
}
