//! The no-panic rule: library crates surface typed errors, not panics.

use crate::config::{path_in, Config};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Panicking macros banned in no-panic crates.
const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// Bans `.unwrap()`, `.expect(…)`, and the panicking macros in
/// non-test code of the configured crates: PR 2 threaded typed
/// `GraphError`/`BisectError` paths end to end, and this rule keeps
/// future refactors from reintroducing aborts. Invariant-backed sites
/// (a value populated two lines up, a documented panicking API)
/// carry `// lint: allow(no-panic)` suppressions with their reasons.
pub struct NoPanic;

impl Rule for NoPanic {
    fn id(&self) -> &'static str {
        "no-panic"
    }

    fn applies(&self, cfg: &Config, path: &str) -> bool {
        path_in(path, &cfg.no_panic_paths)
    }

    fn check(&self, _cfg: &Config, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for i in 0..file.tokens.len() {
            if file.tokens[i].kind != TokenKind::Ident || file.in_test_code(i) {
                continue;
            }
            let name = file.tok(i);
            let found: Option<String> = if name == "unwrap" || name == "expect" {
                // Only the method-call form `.name(`: a field or free
                // function of the same name is someone else's API.
                let is_method = file.prev_code(i).is_some_and(|p| file.tok(p) == ".")
                    && file.matches_seq(i, &[name, "("]).is_some();
                is_method.then(|| format!("`.{name}()` in non-test code"))
            } else if PANIC_MACROS.contains(&name) {
                file.matches_seq(i, &[name, "!"])
                    .is_some()
                    .then(|| format!("`{name}!` in non-test code"))
            } else {
                None
            };
            let Some(message) = found else { continue };
            let (line, col) = file.position(i);
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                file: file.path.clone(),
                line,
                col,
                message,
                suggestion: Some(
                    "return a typed error (GraphError/BisectError/GenError); for an \
                     invariant that cannot fail, suppress with `// lint: allow(no-panic)` \
                     and state the invariant"
                        .into(),
                ),
            });
        }
    }
}
