//! A lightweight, loss-free Rust tokenizer.
//!
//! The rules only need to tell *code* apart from *comments and string
//! literals* and to see identifier/punctuation sequences with accurate
//! positions, so this lexer is deliberately simpler than rustc's: every
//! byte of the input ends up in exactly one token (whitespace and
//! comments included), which makes the token stream a partition of the
//! source — [`lex`] round-trips any input, valid Rust or not, and never
//! panics. Malformed constructs (unterminated strings or block
//! comments) extend to the end of the input instead of erroring.

/// What a token is. Comments and literals carry enough classification
/// for the rules to skip them reliably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace characters.
    Whitespace,
    /// A `//` comment up to (not including) the newline. Doc comments
    /// (`///`, `//!`) are line comments whose text says so.
    LineComment,
    /// A `/* ... */` comment, nesting-aware; unterminated ones run to
    /// the end of the input.
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime such as `'a` (the quote is part of the token).
    Lifetime,
    /// A string literal: `"..."`, `b"..."`, or a raw form
    /// (`r"..."`, `r#"..."#`, `br#"..."#`); prefix and hashes included.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (integer or float, suffixes included).
    Number,
    /// Any other single character (operators, brackets, stray bytes).
    Punct,
}

/// One token: a classified byte range of the source plus its 1-based
/// line and column (columns count characters, not bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether the token is whitespace or a comment.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Tokenizes `src` completely. The concatenation of the returned
/// tokens' texts equals `src` exactly.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while lx.pos < src.len() {
        tokens.push(lx.next_token());
    }
    tokens
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer<'_> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, byte_offset: usize) -> Option<char> {
        self.src.get(self.pos + byte_offset..)?.chars().next()
    }

    /// Consumes one character, maintaining line/column bookkeeping.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }

    fn token(&self, kind: TokenKind, start: usize, line: u32, col: u32) -> Token {
        Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        }
    }

    fn next_token(&mut self) -> Token {
        let (start, line, col) = (self.pos, self.line, self.col);
        let c = match self.peek() {
            Some(c) => c,
            // `next_token` is only called while input remains.
            None => {
                return self.token(TokenKind::Whitespace, start, line, col);
            }
        };
        let kind = if c.is_whitespace() {
            self.bump_while(char::is_whitespace);
            TokenKind::Whitespace
        } else if c == '/' && self.peek_at(1) == Some('/') {
            self.bump_while(|c| c != '\n');
            TokenKind::LineComment
        } else if c == '/' && self.peek_at(1) == Some('*') {
            self.block_comment()
        } else if is_ident_start(c) {
            self.ident_or_prefixed_literal()
        } else if c == '\'' {
            self.char_or_lifetime()
        } else if c.is_ascii_digit() {
            self.number()
        } else if c == '"' {
            self.string()
        } else {
            self.bump();
            TokenKind::Punct
        };
        self.token(kind, start, line, col)
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: runs to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// An identifier — or, when the identifier is a literal prefix
    /// (`r`, `b`, `br`, `rb`) directly followed by a quote or `#`s and
    /// a quote, the whole prefixed literal.
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let ident_start = self.pos;
        self.bump_while(is_ident_continue);
        let ident = &self.src[ident_start..self.pos];
        match ident {
            "r" | "br" | "rb" => {
                // Raw identifier `r#name` (only for plain `r`).
                if ident == "r"
                    && self.peek() == Some('#')
                    && self.peek_at(1).is_some_and(is_ident_start)
                {
                    self.bump(); // '#'
                    self.bump_while(is_ident_continue);
                    return TokenKind::Ident;
                }
                // Raw string `r"…"`, `r#"…"#`, `br##"…"##`, …
                let mut hashes = 0usize;
                while self.peek_at(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek_at(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.bump(); // opening quote
                    self.raw_string_body(hashes);
                    return TokenKind::Str;
                }
                TokenKind::Ident
            }
            "b" => match self.peek() {
                Some('"') => {
                    self.bump();
                    self.escaped_string_body('"');
                    TokenKind::Str
                }
                Some('\'') => {
                    self.bump();
                    self.escaped_string_body('\'');
                    TokenKind::Char
                }
                _ => TokenKind::Ident,
            },
            _ => TokenKind::Ident,
        }
    }

    /// Body of a raw string after the opening quote: runs until a quote
    /// followed by `hashes` `#` characters (or EOF).
    fn raw_string_body(&mut self, hashes: usize) {
        loop {
            match self.peek() {
                None => return,
                Some('"') => {
                    let mut all = true;
                    for i in 0..hashes {
                        if self.peek_at(1 + i) != Some('#') {
                            all = false;
                            break;
                        }
                    }
                    self.bump();
                    if all {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return;
                    }
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Body of an escape-aware literal after its opening delimiter.
    fn escaped_string_body(&mut self, close: char) {
        loop {
            match self.peek() {
                None => return,
                Some('\\') => {
                    self.bump();
                    self.bump(); // the escaped character, if any
                }
                Some(c) => {
                    self.bump();
                    if c == close {
                        return;
                    }
                }
            }
        }
    }

    /// Disambiguates `'a` (lifetime) from `'x'` (char literal).
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // opening quote
        match self.peek() {
            Some('\\') => {
                self.escaped_string_body('\'');
                TokenKind::Char
            }
            Some(c) if c != '\'' => {
                // `'x'` is a char; `'x` with no closing quote right
                // after one character is a lifetime (or stray quote).
                let after = self.peek_at(c.len_utf8());
                if after == Some('\'') {
                    self.bump();
                    self.bump();
                    TokenKind::Char
                } else if is_ident_start(c) {
                    self.bump_while(is_ident_continue);
                    TokenKind::Lifetime
                } else {
                    TokenKind::Punct
                }
            }
            // `''` or a quote at EOF: treat the quote as punctuation.
            _ => TokenKind::Punct,
        }
    }

    fn number(&mut self) -> TokenKind {
        // Integer part, suffixes, hex/octal/binary, underscores.
        self.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        // One fractional part, only when `.` is followed by a digit
        // (so `0..n` stays three tokens).
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            self.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
        // Signed exponent (`1e-3`): the `e` was consumed above.
        if self.src[..self.pos].ends_with(['e', 'E'])
            && matches!(self.peek(), Some('+') | Some('-'))
            && self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            self.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
        TokenKind::Number
    }

    fn string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        self.escaped_string_body('"');
        TokenKind::Str
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    fn code_kinds(src: &str) -> Vec<(TokenKind, &str)> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| {
                !matches!(
                    k,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect()
    }

    fn assert_round_trip(src: &str) {
        let tokens = lex(src);
        let mut rebuilt = String::new();
        let mut expected_start = 0usize;
        for t in &tokens {
            assert_eq!(t.start, expected_start, "gap/overlap in {src:?}");
            expected_start = t.end;
            rebuilt.push_str(t.text(src));
        }
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn round_trips_ordinary_code() {
        let src = "fn main() { let x = vec![1, 2]; println!(\"{x:?}\"); }\n";
        assert_round_trip(src);
    }

    #[test]
    fn classifies_comments_and_strings() {
        let src = "// line\n/* block /* nested */ */ \"str \\\" quote\" 'c' 'a ";
        let got = kinds(src);
        assert!(got.contains(&(TokenKind::LineComment, "// line")));
        assert!(got.contains(&(TokenKind::BlockComment, "/* block /* nested */ */")));
        assert!(got.contains(&(TokenKind::Str, "\"str \\\" quote\"")));
        assert!(got.contains(&(TokenKind::Char, "'c'")));
        assert!(got.contains(&(TokenKind::Lifetime, "'a")));
        assert_round_trip(src);
    }

    #[test]
    fn raw_strings_and_raw_identifiers() {
        let src = "r#\"raw \" inner\"# r\"plain\" br##\"bytes\"## r#type b\"b\" b'x'";
        let got = code_kinds(src);
        assert_eq!(
            got,
            vec![
                (TokenKind::Str, "r#\"raw \" inner\"#"),
                (TokenKind::Str, "r\"plain\""),
                (TokenKind::Str, "br##\"bytes\"##"),
                (TokenKind::Ident, "r#type"),
                (TokenKind::Str, "b\"b\""),
                (TokenKind::Char, "b'x'"),
            ]
        );
        assert_round_trip(src);
    }

    #[test]
    fn banned_names_inside_literals_are_not_idents() {
        let src = "let s = \".unwrap()\"; // also .unwrap() here\n";
        let idents: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "0..10 1.5e-3 0x_ff 1_000u64";
        let got = code_kinds(src);
        assert_eq!(
            got,
            vec![
                (TokenKind::Number, "0"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Number, "10"),
                (TokenKind::Number, "1.5e-3"),
                (TokenKind::Number, "0x_ff"),
                (TokenKind::Number, "1_000u64"),
            ]
        );
        assert_round_trip(src);
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let src = "ab\n  cd";
        let tokens: Vec<Token> = lex(src).into_iter().filter(|t| !t.is_trivia()).collect();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn survives_malformed_input() {
        for src in [
            "\"unterminated",
            "/* never closed",
            "'",
            "''",
            "'\\",
            "r###\"open",
            "b'",
            "\u{1F980} let",
            "ident'",
        ] {
            assert_round_trip(src);
        }
    }
}
