//! The `bisect-lint` binary: lint the workspace against `lint.toml`,
//! print human-readable findings, optionally write JSON reports, diff
//! against a committed baseline, and exit nonzero when anything
//! actionable remains.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use bisect_lint::{Baseline, Config, LintError, Report};

const HELP: &str = "bisect-lint — workspace invariant enforcement

USAGE:
    bisect-lint [--root DIR] [--config FILE] [--json [FILE]]
                [--baseline FILE] [--update-baseline [FILE]]
                [--suppressions [FILE]]

OPTIONS:
    --root DIR        Workspace root to lint (default: .)
    --config FILE     Configuration file, relative to the root
                      (default: lint.toml)
    --json [FILE]     Also write a JSON report (default path: lint.json)
    --baseline FILE   Fail only on findings not present in a committed
                      baseline report (keyed by rule/file/message)
    --update-baseline [FILE]
                      Write the current findings as the new baseline
                      (default path: lint_baseline.json)
    --suppressions [FILE]
                      Write the suppression audit (default path:
                      suppressions.json) and fail on unused
                      suppressions
    -h, --help        Show this help

EXIT STATUS:
    0  no findings        1  findings reported        2  usage/io error
";

struct Options {
    root: PathBuf,
    config: PathBuf,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: Option<PathBuf>,
    suppressions: Option<PathBuf>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Option<Options>, LintError> {
    let mut args = args.into_iter().peekable();
    let mut opts = Options {
        root: PathBuf::from("."),
        config: PathBuf::from("lint.toml"),
        json: None,
        baseline: None,
        update_baseline: None,
        suppressions: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--root" => {
                opts.root =
                    PathBuf::from(args.next().ok_or_else(|| {
                        LintError::InvalidArgument("--root needs a value".into())
                    })?);
            }
            "--config" => {
                opts.config =
                    PathBuf::from(args.next().ok_or_else(|| {
                        LintError::InvalidArgument("--config needs a value".into())
                    })?);
            }
            "--json" => opts.json = Some(optional_path(&mut args, "lint.json")),
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or_else(|| {
                    LintError::InvalidArgument("--baseline needs a value".into())
                })?));
            }
            "--update-baseline" => {
                opts.update_baseline = Some(optional_path(&mut args, "lint_baseline.json"));
            }
            "--suppressions" => {
                opts.suppressions = Some(optional_path(&mut args, "suppressions.json"));
            }
            other => {
                return Err(LintError::InvalidArgument(format!(
                    "unknown option `{other}` (see --help)"
                )));
            }
        }
    }
    Ok(Some(opts))
}

/// `--flag [PATH]` with the operand optional, like repro's --json.
fn optional_path<I: Iterator<Item = String>>(
    args: &mut std::iter::Peekable<I>,
    default: &str,
) -> PathBuf {
    match args.peek() {
        Some(next) if !next.starts_with('-') => PathBuf::from(args.next().unwrap_or_default()),
        _ => PathBuf::from(default),
    }
}

fn write(path: &PathBuf, text: String) -> Result<(), LintError> {
    std::fs::write(path, text).map_err(|e| LintError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

fn run(opts: &Options) -> Result<(Report, Option<Baseline>), LintError> {
    let config_path = opts.root.join(&opts.config);
    let text = std::fs::read_to_string(&config_path).map_err(|e| LintError::Io {
        path: config_path.display().to_string(),
        message: e.to_string(),
    })?;
    let cfg = Config::from_toml(&text)?;
    let report = bisect_lint::lint_workspace(&opts.root, &cfg)?;
    if let Some(json_path) = &opts.json {
        write(json_path, report.to_json())?;
    }
    if let Some(path) = &opts.update_baseline {
        write(path, report.to_json())?;
    }
    if let Some(path) = &opts.suppressions {
        write(path, report.suppressions_json())?;
    }
    let baseline = match &opts.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| LintError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            Some(Baseline::from_json(&text)?)
        }
        None => None,
    };
    Ok((report, baseline))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("bisect-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let started = Instant::now();
    match run(&opts) {
        Ok((report, baseline)) => {
            let actionable = match &baseline {
                Some(base) => base.new_findings(&report),
                None => report.diagnostics.clone(),
            };
            for d in &actionable {
                println!("{d}");
            }
            let (errors, warnings) = report.counts();
            println!(
                "bisect-lint: {} diagnostic{} ({errors} error{}, {warnings} warning{}), \
                 {} suppressed, {} files scanned",
                report.diagnostics.len(),
                plural(report.diagnostics.len()),
                plural(errors),
                plural(warnings),
                report.suppressed,
                report.files_scanned,
            );
            if let Some(base) = &baseline {
                println!(
                    "bisect-lint: baseline waives {} finding{}, {} new",
                    base.len(),
                    plural(base.len()),
                    actionable.len(),
                );
            }
            let mut failed = !actionable.is_empty();
            if opts.suppressions.is_some() && !report.unused_suppressions.is_empty() {
                for u in &report.unused_suppressions {
                    println!(
                        "{}:{}: unused suppression: allow({})",
                        u.file,
                        u.line,
                        u.rules.join(", "),
                    );
                }
                println!(
                    "bisect-lint: {} unused suppression{} (delete the stale allows)",
                    report.unused_suppressions.len(),
                    plural(report.unused_suppressions.len()),
                );
                failed = true;
            }
            println!(
                "bisect-lint: wall time {:.2}s",
                started.elapsed().as_secs_f64()
            );
            if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("bisect-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
