//! The `bisect-lint` binary: lint the workspace against `lint.toml`,
//! print human-readable findings, optionally write a JSON report, and
//! exit nonzero when any non-suppressed diagnostic remains.

use std::path::PathBuf;
use std::process::ExitCode;

use bisect_lint::{Config, LintError, Report};

const HELP: &str = "bisect-lint — workspace invariant enforcement

USAGE:
    bisect-lint [--root DIR] [--config FILE] [--json [FILE]]

OPTIONS:
    --root DIR      Workspace root to lint (default: .)
    --config FILE   Configuration file, relative to the root
                    (default: lint.toml)
    --json [FILE]   Also write a JSON report (default path: lint.json)
    -h, --help      Show this help

EXIT STATUS:
    0  no findings        1  findings reported        2  usage/io error
";

struct Options {
    root: PathBuf,
    config: PathBuf,
    json: Option<PathBuf>,
}

fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Option<Options>, LintError> {
    let mut args = args.into_iter().peekable();
    let mut opts = Options {
        root: PathBuf::from("."),
        config: PathBuf::from("lint.toml"),
        json: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--root" => {
                opts.root =
                    PathBuf::from(args.next().ok_or_else(|| {
                        LintError::InvalidArgument("--root needs a value".into())
                    })?);
            }
            "--config" => {
                opts.config =
                    PathBuf::from(args.next().ok_or_else(|| {
                        LintError::InvalidArgument("--config needs a value".into())
                    })?);
            }
            "--json" => {
                // The path operand is optional, like repro's --json.
                opts.json = Some(match args.peek() {
                    Some(next) if !next.starts_with('-') => {
                        PathBuf::from(args.next().unwrap_or_default())
                    }
                    _ => PathBuf::from("lint.json"),
                });
            }
            other => {
                return Err(LintError::InvalidArgument(format!(
                    "unknown option `{other}` (see --help)"
                )));
            }
        }
    }
    Ok(Some(opts))
}

fn run(opts: &Options) -> Result<Report, LintError> {
    let config_path = opts.root.join(&opts.config);
    let text = std::fs::read_to_string(&config_path).map_err(|e| LintError::Io {
        path: config_path.display().to_string(),
        message: e.to_string(),
    })?;
    let cfg = Config::from_toml(&text)?;
    let report = bisect_lint::lint_workspace(&opts.root, &cfg)?;
    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, report.to_json()).map_err(|e| LintError::Io {
            path: json_path.display().to_string(),
            message: e.to_string(),
        })?;
    }
    Ok(report)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("bisect-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            let (errors, warnings) = report.counts();
            println!(
                "bisect-lint: {} diagnostic{} ({errors} error{}, {warnings} warning{}), \
                 {} suppressed, {} files scanned",
                report.diagnostics.len(),
                plural(report.diagnostics.len()),
                plural(errors),
                plural(warnings),
                report.suppressed,
                report.files_scanned,
            );
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("bisect-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
