//! The diagnostics model: what a rule reports and how it prints.

use std::fmt;

/// How serious a diagnostic is. Both levels fail the build — the
/// distinction is presentational (warnings flag style-tier findings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A hygiene finding.
    Warning,
    /// An invariant violation.
    Error,
}

impl Severity {
    /// The lowercase name used in output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: a rule, a location, what is wrong, and (usually) what
/// to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The reporting rule's id (e.g. `no-panic`).
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix or legitimately suppress it, when known.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}:{}: {}",
            self.severity.name(),
            self.rule,
            self.file,
            self.line,
            self.col,
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_help() {
        let d = Diagnostic {
            rule: "no-panic",
            severity: Severity::Error,
            file: "crates/core/src/kl.rs".into(),
            line: 7,
            col: 13,
            message: "`.unwrap()` in non-test code".into(),
            suggestion: Some("return a typed error".into()),
        };
        let text = d.to_string();
        assert!(text.starts_with("error[no-panic] crates/core/src/kl.rs:7:13:"));
        assert!(text.contains("help: return a typed error"));
    }

    #[test]
    fn severity_names() {
        assert_eq!(Severity::Error.name(), "error");
        assert_eq!(Severity::Warning.name(), "warning");
    }
}
