//! `bisect-lint` — the workspace's invariant-enforcement engine.
//!
//! PR 1 made every experiment bit-identical at any thread count and
//! PR 2 replaced panics with typed errors; this crate *enforces* those
//! invariants statically, in the spirit of the assertion/sanitizer
//! tiers of the large partitioner codebases (METIS, KaHyPar). It is
//! fully self-contained — a hand-rolled lexer, item parser, config
//! parser, and JSON writer, like the workspace's
//! rand/proptest/criterion shims — and ships six rule families:
//!
//! | family        | rules                                          | analysis |
//! |---------------|------------------------------------------------|----------|
//! | determinism   | `determinism-hash`, `determinism-time`, `determinism-entropy` | per-file |
//! | determinism   | `determinism-taint`                            | call graph |
//! | no-panic      | `no-panic`                                     | call graph |
//! | zero-alloc    | `zero-alloc`                                   | call graph |
//! | par-safety    | `par-safety-sync`, `par-safety-thread`         | call graph |
//! | unsafe        | `unsafe-hygiene`                               | per-file |
//! | API hygiene   | `api-docs`                                     | per-file |
//!
//! The call-graph rules ([`taint`]) run over a workspace call graph
//! ([`callgraph`]) assembled from a lightweight item parser
//! ([`parse`]): allocation and panics are banned *transitively* from
//! the hot-path entry points, nondeterminism may not leak into the
//! guarded crates through a return value, and `crates/par` consumers
//! may not smuggle in shared state or ad-hoc threads.
//!
//! Scopes come from `lint.toml` at the workspace root; individual
//! findings are silenced inline with `// lint: allow(<rule>) — reason`
//! (see [`suppress`]), which for the call-graph rules also *certifies*
//! the site so the property stops propagating to callers. Unused
//! suppressions are reported (and `--suppressions` fails on them), and
//! `--baseline` diffs findings against a committed snapshot
//! ([`baseline`]). The `bisect-lint` binary exits nonzero on anything
//! actionable:
//!
//! ```text
//! cargo run -p bisect-lint -- --json lint.json --suppressions \
//!     --baseline lint_baseline.json
//! ```
//!
//! See DESIGN.md §9 for the rule catalogue and §14 for the call-graph
//! architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod diag;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod source;
pub mod suppress;
pub mod taint;

pub use baseline::Baseline;
pub use callgraph::{CallGraph, CrateDeps};
pub use config::Config;
pub use diag::{Diagnostic, Severity};
pub use engine::{check_source, check_sources, lint_files, lint_workspace, Report};
pub use error::LintError;
pub use lexer::{lex, Token, TokenKind};
pub use parse::{parse, ParsedFile};
pub use source::SourceFile;
pub use suppress::{Suppressions, UnusedSuppression};
