//! `bisect-lint` — the workspace's invariant-enforcement engine.
//!
//! PR 1 made every experiment bit-identical at any thread count and
//! PR 2 replaced panics with typed errors; this crate *enforces* those
//! invariants statically, in the spirit of the assertion/sanitizer
//! tiers of the large partitioner codebases (METIS, KaHyPar). It is
//! fully self-contained — a hand-rolled lexer, config parser, and JSON
//! writer, like the workspace's rand/proptest/criterion shims — and
//! ships five rule families:
//!
//! | family        | rules                                                   |
//! |---------------|---------------------------------------------------------|
//! | determinism   | `determinism-hash`, `determinism-time`, `determinism-entropy` |
//! | no-panic      | `no-panic`                                              |
//! | zero-alloc    | `zero-alloc`                                            |
//! | unsafe        | `unsafe-hygiene`                                        |
//! | API hygiene   | `api-docs`                                              |
//!
//! Scopes come from `lint.toml` at the workspace root; individual
//! findings are silenced inline with `// lint: allow(<rule>) — reason`
//! (see [`suppress`]). The `bisect-lint` binary exits nonzero on any
//! non-suppressed diagnostic:
//!
//! ```text
//! cargo run -p bisect-lint -- --json lint.json
//! ```
//!
//! See DESIGN.md §9 for the full rule catalogue and how to add a rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod suppress;

pub use config::Config;
pub use diag::{Diagnostic, Severity};
pub use engine::{check_source, lint_workspace, Report};
pub use error::LintError;
pub use lexer::{lex, Token, TokenKind};
pub use source::SourceFile;
