//! A tokenized source file plus the region analysis shared by rules:
//! which token ranges are `#[cfg(test)]` code and how to navigate the
//! stream skipping trivia.

use crate::lexer::{lex, Token};

/// One file under analysis: its workspace-relative path, full text,
/// token stream, and the token ranges occupied by test-only code.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// The file contents.
    pub text: String,
    /// The complete token stream (trivia included).
    pub tokens: Vec<Token>,
    /// Half-open token-index ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Tokenizes `text` and locates its test-only regions.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let text = text.into();
        let tokens = lex(&text);
        let test_ranges = find_test_ranges(&text, &tokens);
        SourceFile {
            path: path.into(),
            text,
            tokens,
            test_ranges,
        }
    }

    /// The text of token `i`.
    pub fn tok(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// Whether token `i` lies inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The next non-trivia token index at or after `i`.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i..self.tokens.len()).find(|&j| !self.tokens[j].is_trivia())
    }

    /// The previous non-trivia token index strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.tokens[j].is_trivia())
    }

    /// Whether the non-trivia tokens starting at `i` (inclusive) spell
    /// out `words` in order, with arbitrary trivia between them.
    /// Returns the index of the last matched token.
    pub fn matches_seq(&self, i: usize, words: &[&str]) -> Option<usize> {
        let mut at = i;
        let mut last = i;
        for (n, word) in words.iter().enumerate() {
            let j = if n == 0 { Some(at) } else { self.next_code(at) }?;
            let t = &self.tokens[j];
            if t.is_trivia() || self.tok(j) != *word {
                return None;
            }
            last = j;
            at = j + 1;
        }
        Some(last)
    }

    /// 1-based line and column of token `i`.
    pub fn position(&self, i: usize) -> (u32, u32) {
        (self.tokens[i].line, self.tokens[i].col)
    }
}

/// Locates `#[cfg(test)]` attributes and extends each over the item it
/// gates: any further attributes, then either a braced body (matched
/// nesting-aware) or a `;`-terminated item.
fn find_test_ranges(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let tok = |i: usize| tokens[i].text(text);
    let next_code =
        |i: usize| -> Option<usize> { (i..tokens.len()).find(|&j| !tokens[j].is_trivia()) };
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Match `# [ cfg ( test ) ]` allowing trivia between tokens.
        let matched = (|| -> Option<usize> {
            let a = next_code(i)?;
            if tok(a) != "#" || a != i {
                return None;
            }
            let b = next_code(a + 1)?;
            if tok(b) != "[" {
                return None;
            }
            let c = next_code(b + 1)?;
            if tok(c) != "cfg" {
                return None;
            }
            let d = next_code(c + 1)?;
            if tok(d) != "(" {
                return None;
            }
            let e = next_code(d + 1)?;
            if tok(e) != "test" {
                return None;
            }
            let f = next_code(e + 1)?;
            if tok(f) != ")" {
                return None;
            }
            let g = next_code(f + 1)?;
            if tok(g) != "]" {
                return None;
            }
            Some(g)
        })();
        let Some(attr_end) = matched else {
            i += 1;
            continue;
        };
        // Skip any further attributes (`#[test]`, `#[allow(...)]`, …).
        let mut at = attr_end + 1;
        while let Some(h) = next_code(at) {
            if tok(h) != "#" {
                break;
            }
            let Some(open) = next_code(h + 1) else { break };
            if tok(open) != "[" {
                break;
            }
            let Some(close) = match_forward(text, tokens, open, "[", "]") else {
                break;
            };
            at = close + 1;
        }
        // Extend over the gated item: to the matching `}` of its first
        // brace, or to a `;` that arrives before any brace opens.
        let mut end = tokens.len();
        let mut j = at;
        while let Some(k) = next_code(j) {
            match tok(k) {
                "{" => {
                    end = match_forward(text, tokens, k, "{", "}")
                        .map(|c| c + 1)
                        .unwrap_or(tokens.len());
                    break;
                }
                ";" => {
                    end = k + 1;
                    break;
                }
                _ => j = k + 1,
            }
        }
        ranges.push((i, end));
        i = end;
    }
    ranges
}

/// Given token index `open` holding `open_text`, returns the index of
/// the matching `close_text`, nesting-aware. `None` if unbalanced.
fn match_forward(
    text: &str,
    tokens: &[Token],
    open: usize,
    open_text: &str,
    close_text: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_trivia() {
            continue;
        }
        let s = t.text(text);
        if s == open_text {
            depth += 1;
        } else if s == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::TokenKind;

    fn ident_indices(file: &SourceFile, name: &str) -> Vec<usize> {
        (0..file.tokens.len())
            .filter(|&i| file.tokens[i].kind == TokenKind::Ident && file.tok(i) == name)
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let src = r#"
fn real() { before(); }

#[cfg(test)]
mod tests {
    #[test]
    fn check() { inside(); }
}

fn after_tests() { after(); }
"#;
        let file = SourceFile::new("x.rs", src);
        let inside = ident_indices(&file, "inside")[0];
        let before = ident_indices(&file, "before")[0];
        let after = ident_indices(&file, "after")[0];
        assert!(file.in_test_code(inside));
        assert!(!file.in_test_code(before));
        assert!(!file.in_test_code(after), "code after the test mod is live");
    }

    #[test]
    fn cfg_test_fn_and_use_are_test_ranges() {
        let src = r#"
#[cfg(test)]
use std::collections::HashMap;

#[cfg(test)]
#[allow(dead_code)]
fn helper() { gated(); }

fn live() { open(); }
"#;
        let file = SourceFile::new("x.rs", src);
        assert!(file.in_test_code(ident_indices(&file, "HashMap")[0]));
        assert!(file.in_test_code(ident_indices(&file, "gated")[0]));
        assert!(!file.in_test_code(ident_indices(&file, "open")[0]));
    }

    #[test]
    fn braces_inside_strings_do_not_break_matching() {
        let src = "#[cfg(test)]\nmod tests { const S: &str = \"}\"; fn f() { x(); } }\nfn live() { y(); }";
        let file = SourceFile::new("x.rs", src);
        assert!(file.in_test_code(ident_indices(&file, "x")[0]));
        assert!(!file.in_test_code(ident_indices(&file, "y")[0]));
    }

    #[test]
    fn matches_seq_spans_trivia() {
        // `::` lexes as two single-character puncts.
        let file = SourceFile::new("x.rs", "Instant :: /* gap */ now ()");
        assert!(file.matches_seq(0, &["Instant", ":", ":", "now"]).is_some());
        assert!(file
            .matches_seq(0, &["Instant", ":", ":", "later"])
            .is_none());
    }
}
