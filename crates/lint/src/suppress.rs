//! Inline suppressions: `// lint: allow(<rule>[, <rule>…]) — reason`.
//!
//! A suppression comment silences matching diagnostics on its own line
//! and — when nothing but whitespace precedes it on that line — on the
//! next line that contains code, so both trailing and standalone
//! placements work:
//!
//! ```text
//! foo().unwrap(); // lint: allow(no-panic) — checked above
//!
//! // lint: allow(no-panic) — validated by the caller
//! bar().unwrap();
//! ```
//!
//! A rule id matches exactly or by family prefix: `allow(determinism)`
//! covers `determinism-hash`, `determinism-time`, and
//! `determinism-entropy`.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// One parsed suppression: the rules it allows and the lines it covers.
#[derive(Debug)]
struct Suppression {
    rules: Vec<String>,
    lines: Vec<u32>,
}

/// Partitions `diags` into (kept, suppressed-count) under the
/// suppression comments of `file`.
pub fn apply(file: &SourceFile, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, usize) {
    let suppressions = collect(file);
    let mut kept = Vec::with_capacity(diags.len());
    let mut suppressed = 0usize;
    for d in diags {
        let hit = suppressions
            .iter()
            .any(|s| s.lines.contains(&d.line) && s.rules.iter().any(|r| rule_matches(r, d.rule)));
        if hit {
            suppressed += 1;
        } else {
            kept.push(d);
        }
    }
    (kept, suppressed)
}

/// Whether allowing `allowed` silences rule `rule` (exact id or family
/// prefix).
fn rule_matches(allowed: &str, rule: &str) -> bool {
    rule == allowed
        || rule
            .strip_prefix(allowed)
            .is_some_and(|r| r.starts_with('-'))
}

fn collect(file: &SourceFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, t) in file.tokens.iter().enumerate() {
        if t.is_trivia() && !matches!(t.kind, crate::lexer::TokenKind::Whitespace) {
            let Some(rules) = parse_allow(file.tok(i)) else {
                continue;
            };
            let mut lines = vec![t.line];
            if is_standalone(file, i) {
                if let Some(next) = file.next_code(i + 1) {
                    let next_line = file.tokens[next].line;
                    if !lines.contains(&next_line) {
                        lines.push(next_line);
                    }
                }
            }
            out.push(Suppression { rules, lines });
        }
    }
    out
}

/// Whether only whitespace precedes token `i` on its own line.
fn is_standalone(file: &SourceFile, i: usize) -> bool {
    let line = file.tokens[i].line;
    file.tokens[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .all(|t| t.kind == crate::lexer::TokenKind::Whitespace)
}

/// Extracts the rule list from a comment containing `lint: allow(…)`.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lint: allow(")?;
    let rest = &comment[at + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn diag(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: "x.rs".into(),
            line,
            col: 1,
            message: "m".into(),
            suggestion: None,
        }
    }

    #[test]
    fn trailing_comment_covers_its_line_only() {
        let file = SourceFile::new("x.rs", "a(); // lint: allow(no-panic) — reason\nb();\n");
        let (kept, n) = apply(&file, vec![diag("no-panic", 1), diag("no-panic", 2)]);
        assert_eq!(n, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 2);
    }

    #[test]
    fn standalone_comment_covers_the_next_code_line() {
        let src = "// lint: allow(no-panic) — reason\n\nc();\nd();\n";
        let file = SourceFile::new("x.rs", src);
        let (kept, n) = apply(&file, vec![diag("no-panic", 3), diag("no-panic", 4)]);
        assert_eq!(n, 1);
        assert_eq!(kept[0].line, 4);
    }

    #[test]
    fn family_prefix_and_lists_match() {
        assert!(rule_matches("determinism", "determinism-hash"));
        assert!(rule_matches("determinism-hash", "determinism-hash"));
        assert!(!rule_matches("determinism-hash", "determinism"));
        assert!(!rule_matches("det", "determinism-hash"));
        let file = SourceFile::new("x.rs", "x(); // lint: allow(determinism, zero-alloc)\n");
        let (kept, n) = apply(
            &file,
            vec![
                diag("determinism-time", 1),
                diag("zero-alloc", 1),
                diag("no-panic", 1),
            ],
        );
        assert_eq!(n, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "no-panic");
    }

    #[test]
    fn unrelated_comments_do_not_suppress() {
        let file = SourceFile::new("x.rs", "e(); // mentions allow but not the magic form\n");
        let (kept, n) = apply(&file, vec![diag("no-panic", 1)]);
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 1);
    }
}
