//! Inline suppressions: `// lint: allow(<rule>[, <rule>…]) — reason`.
//!
//! A suppression comment silences matching diagnostics on its own line
//! and — when nothing but whitespace precedes it on that line — on the
//! next line that contains code, so both trailing and standalone
//! placements work:
//!
//! ```text
//! foo().unwrap(); // lint: allow(no-panic) — checked above
//!
//! // lint: allow(no-panic) — validated by the caller
//! bar().unwrap();
//! ```
//!
//! A standalone comment sitting directly above a `fn` item (before its
//! attributes and visibility) covers the whole item instead, so one
//! comment certifies a function whose body repeats the same justified
//! pattern many times:
//!
//! ```text
//! // lint: allow(no-panic) — endpoints in range by construction
//! pub fn ladder(n: usize) -> Graph { /* many add_edge calls */ }
//! ```
//!
//! A rule id matches exactly or by family prefix: `allow(determinism)`
//! covers `determinism-hash`, `determinism-time`, `determinism-taint`,
//! and `determinism-entropy`.
//!
//! Every suppression tracks whether it fired. The engine reports the
//! ones that never matched a finding ([`Suppressions::unused`]) so
//! dead waivers are retired instead of rotting — `bisect-lint
//! --suppressions` fails the build on them. For the call-graph rules a
//! *fired* suppression is also a certification: a suppressed panic
//! site does not make its function may-panic for callers (see
//! DESIGN.md §14).

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::parse::ParsedFile;
use crate::source::SourceFile;

/// One parsed suppression: the rules it allows and where it applies.
#[derive(Debug)]
struct Entry {
    rules: Vec<String>,
    /// Exact lines covered (the comment's own line, and the next code
    /// line for standalone comments).
    lines: Vec<u32>,
    /// Inclusive line span covered when the comment sits directly
    /// above a `fn` item.
    span: Option<(u32, u32)>,
    /// The comment's own line, for the unused report.
    at: u32,
    used: bool,
}

impl Entry {
    fn covers(&self, rule: &str, line: u32) -> bool {
        let here =
            self.lines.contains(&line) || self.span.is_some_and(|(s, e)| line >= s && line <= e);
        here && self.rules.iter().any(|r| rule_matches(r, rule))
    }
}

/// The suppressions of one file, with per-entry usage tracking.
#[derive(Debug, Default)]
pub struct FileSuppressions {
    entries: Vec<Entry>,
}

/// A suppression comment that never silenced or certified anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedSuppression {
    /// Workspace-relative path of the file holding the comment.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The rules the comment allows.
    pub rules: Vec<String>,
}

impl FileSuppressions {
    /// Parses the suppression comments of `file`. `parsed` supplies
    /// item extents for fn-scope coverage.
    pub fn collect(file: &SourceFile, parsed: &ParsedFile) -> FileSuppressions {
        let mut entries = Vec::new();
        for (i, t) in file.tokens.iter().enumerate() {
            if !t.is_trivia() || matches!(t.kind, TokenKind::Whitespace) {
                continue;
            }
            let Some(rules) = parse_allow(file.tok(i)) else {
                continue;
            };
            let mut lines = vec![t.line];
            let mut span = None;
            if is_standalone(file, i) {
                if let Some(next) = file.next_code(i + 1) {
                    // Directly above a fn item → cover the whole item.
                    span = parsed
                        .fns
                        .iter()
                        .find(|f| f.item_start == next)
                        .map(|f| f.line_range);
                    if span.is_none() {
                        let next_line = file.tokens[next].line;
                        if !lines.contains(&next_line) {
                            lines.push(next_line);
                        }
                    }
                }
            }
            entries.push(Entry {
                rules,
                lines,
                span,
                at: t.line,
                used: false,
            });
        }
        FileSuppressions { entries }
    }

    /// Whether a suppression covers (`rule`, `line`), marking it used.
    fn covers(&mut self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.covers(rule, line) {
                e.used = true;
                hit = true;
            }
        }
        hit
    }
}

/// The suppression sets of every scanned file, indexed in parallel
/// with the engine's file list, plus the total hit count.
#[derive(Debug, Default)]
pub struct Suppressions {
    files: Vec<FileSuppressions>,
    /// How many findings were silenced or certified.
    pub hits: usize,
}

impl Suppressions {
    /// Collects the suppressions of every file.
    pub fn collect(files: &[SourceFile], parsed: &[ParsedFile]) -> Suppressions {
        Suppressions {
            files: files
                .iter()
                .zip(parsed)
                .map(|(f, p)| FileSuppressions::collect(f, p))
                .collect(),
            hits: 0,
        }
    }

    /// Whether a suppression in file `file` covers (`rule`, `line`).
    /// A hit marks the suppression used and counts toward
    /// [`Suppressions::hits`] — for the call-graph rules this is the
    /// certification query.
    pub fn covers(&mut self, file: usize, rule: &str, line: u32) -> bool {
        let hit = self.files[file].covers(rule, line);
        self.hits += hit as usize;
        hit
    }

    /// Filters `diags` (all belonging to file `file`) through the
    /// file's suppressions, keeping the survivors.
    pub fn apply(&mut self, file: usize, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        let mut kept = Vec::with_capacity(diags.len());
        for d in diags {
            if self.files[file].covers(d.rule, d.line) {
                self.hits += 1;
            } else {
                kept.push(d);
            }
        }
        kept
    }

    /// Every suppression that never fired, in (file, line) order.
    pub fn unused(&self, files: &[SourceFile]) -> Vec<UnusedSuppression> {
        let mut out = Vec::new();
        for (fs, file) in self.files.iter().zip(files) {
            for e in &fs.entries {
                if !e.used {
                    out.push(UnusedSuppression {
                        file: file.path.clone(),
                        line: e.at,
                        rules: e.rules.clone(),
                    });
                }
            }
        }
        out
    }
}

/// Whether allowing `allowed` silences rule `rule` (exact id or family
/// prefix).
pub fn rule_matches(allowed: &str, rule: &str) -> bool {
    rule == allowed
        || rule
            .strip_prefix(allowed)
            .is_some_and(|r| r.starts_with('-'))
}

/// Whether only whitespace precedes token `i` on its own line.
fn is_standalone(file: &SourceFile, i: usize) -> bool {
    let line = file.tokens[i].line;
    file.tokens[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .all(|t| t.kind == TokenKind::Whitespace)
}

/// Extracts the rule list from a suppression comment. Only plain
/// `// lint: allow(…)` comments count: doc comments and prose that
/// merely *mention* the form (as this crate's own documentation does)
/// are not suppressions.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let body = comment.strip_prefix("//")?;
    if body.starts_with('/') || body.starts_with('!') {
        return None; // doc comment
    }
    let rest = body.trim_start().strip_prefix("lint: allow(")?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::parse;

    fn diag(rule: &'static str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Error,
            file: "x.rs".into(),
            line,
            col: 1,
            message: "m".into(),
            suggestion: None,
        }
    }

    fn set_for(src: &str) -> (Suppressions, SourceFile) {
        let file = SourceFile::new("x.rs", src);
        let parsed = parse::parse(&file);
        let files = [file];
        let sup = Suppressions::collect(&files, std::slice::from_ref(&parsed));
        let [file] = files;
        (sup, file)
    }

    #[test]
    fn trailing_comment_covers_its_line_only() {
        let (mut sup, _) = set_for("a(); // lint: allow(no-panic) — reason\nb();\n");
        let kept = sup.apply(0, vec![diag("no-panic", 1), diag("no-panic", 2)]);
        assert_eq!(sup.hits, 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 2);
    }

    #[test]
    fn standalone_comment_covers_the_next_code_line() {
        let src = "// lint: allow(no-panic) — reason\n\nc();\nd();\n";
        let (mut sup, _) = set_for(src);
        let kept = sup.apply(0, vec![diag("no-panic", 3), diag("no-panic", 4)]);
        assert_eq!(sup.hits, 1);
        assert_eq!(kept[0].line, 4);
    }

    #[test]
    fn standalone_comment_above_a_fn_covers_the_whole_item() {
        let src = "\
// lint: allow(no-panic) — all endpoints validated by construction
pub fn build(xs: &[u32]) -> u32 {
    let a = xs.first().unwrap();
    let b = xs.last().unwrap();
    a + b
}

fn outside(x: Option<u32>) -> u32 { x.unwrap() }
";
        let (mut sup, _) = set_for(src);
        let kept = sup.apply(
            0,
            vec![
                diag("no-panic", 3),
                diag("no-panic", 4),
                diag("no-panic", 8),
            ],
        );
        assert_eq!(sup.hits, 2, "both body lines covered by the fn-scope allow");
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 8, "the next item is not covered");
    }

    #[test]
    fn fn_scope_comment_covers_attributes_and_signature() {
        let src = "\
// lint: allow(zero-alloc) — warm-up only
#[inline]
pub fn warm() -> Vec<u32> {
    Vec::new()
}
";
        let (mut sup, _) = set_for(src);
        assert!(sup.covers(0, "zero-alloc", 4));
        assert_eq!(sup.hits, 1);
    }

    #[test]
    fn family_prefix_and_lists_match() {
        assert!(rule_matches("determinism", "determinism-hash"));
        assert!(rule_matches("determinism", "determinism-taint"));
        assert!(rule_matches("par-safety", "par-safety-sync"));
        assert!(rule_matches("determinism-hash", "determinism-hash"));
        assert!(!rule_matches("determinism-hash", "determinism"));
        assert!(!rule_matches("det", "determinism-hash"));
        let (mut sup, _) = set_for("x(); // lint: allow(determinism, zero-alloc)\n");
        let kept = sup.apply(
            0,
            vec![
                diag("determinism-time", 1),
                diag("zero-alloc", 1),
                diag("no-panic", 1),
            ],
        );
        assert_eq!(sup.hits, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "no-panic");
    }

    #[test]
    fn unrelated_comments_do_not_suppress() {
        let (mut sup, file) = set_for("e(); // mentions allow but not the magic form\n");
        let kept = sup.apply(0, vec![diag("no-panic", 1)]);
        assert_eq!(sup.hits, 0);
        assert_eq!(kept.len(), 1);
        assert!(sup.unused(std::slice::from_ref(&file)).is_empty());
    }

    #[test]
    fn unused_suppressions_are_reported_used_ones_are_not() {
        let src = "a(); // lint: allow(no-panic) — live\nb(); // lint: allow(zero-alloc) — dead\n";
        let (mut sup, file) = set_for(src);
        let _ = sup.apply(0, vec![diag("no-panic", 1)]);
        let unused = sup.unused(std::slice::from_ref(&file));
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line, 2);
        assert_eq!(unused[0].rules, vec!["zero-alloc".to_string()]);
    }

    #[test]
    fn certification_queries_mark_suppressions_used() {
        let src =
            "// lint: allow(no-panic) — contract\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (mut sup, file) = set_for(src);
        assert!(sup.covers(0, "no-panic", 2));
        assert!(sup.unused(std::slice::from_ref(&file)).is_empty());
    }
}
