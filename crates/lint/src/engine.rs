//! The driver: walk the workspace, run every rule on every `.rs` file
//! in its scope, apply suppressions, and assemble a [`Report`].

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::{path_in, Config};
use crate::diag::{Diagnostic, Severity};
use crate::error::LintError;
use crate::rules::all_rules;
use crate::source::SourceFile;
use crate::suppress;

/// The outcome of a lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Non-suppressed findings, ordered by (file, line, column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many findings inline suppressions silenced.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run found nothing actionable.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Counts of (errors, warnings) among the kept diagnostics.
    pub fn counts(&self) -> (usize, usize) {
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        (errors, self.diagnostics.len() - errors)
    }
}

/// Lints a single file's text as if it lived at `rel_path`, returning
/// the kept diagnostics and the suppressed count. This is the unit the
/// fixture tests drive directly.
pub fn check_source(cfg: &Config, rel_path: &str, text: &str) -> (Vec<Diagnostic>, usize) {
    let file = SourceFile::new(rel_path, text);
    let mut diags = Vec::new();
    for rule in all_rules() {
        if rule.applies(cfg, rel_path) {
            rule.check(cfg, &file, &mut diags);
        }
    }
    let (mut kept, suppressed) = suppress::apply(&file, diags);
    kept.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (kept, suppressed)
}

/// Lints every `.rs` file under the configured include roots of
/// `root`, skipping excluded prefixes.
///
/// # Errors
///
/// [`LintError::Io`] when a directory or file cannot be read.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Report, LintError> {
    let mut files = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.exists() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = Report {
        diagnostics: Vec::new(),
        suppressed: 0,
        files_scanned: 0,
    };
    for path in files {
        let rel = relative_path(root, &path);
        if path_in(&rel, &cfg.exclude) {
            continue;
        }
        let text = fs::read_to_string(&path).map_err(|e| LintError::Io {
            path: rel.clone(),
            message: e.to_string(),
        })?;
        let (kept, suppressed) = check_source(cfg, &rel, &text);
        report.diagnostics.extend(kept);
        report.suppressed += suppressed;
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

/// Recursively collects `.rs` files, visiting entries in sorted order
/// so reports are byte-identical across runs and platforms.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let read = |p: &Path| -> Result<Vec<PathBuf>, LintError> {
        let mut entries = Vec::new();
        let iter = fs::read_dir(p).map_err(|e| LintError::Io {
            path: p.display().to_string(),
            message: e.to_string(),
        })?;
        for entry in iter {
            let entry = entry.map_err(|e| LintError::Io {
                path: p.display().to_string(),
                message: e.to_string(),
            })?;
            entries.push(entry.path());
        }
        entries.sort();
        Ok(entries)
    };
    for path in read(dir)? {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(paths: &[&str]) -> Config {
        Config {
            no_panic_paths: paths.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        }
    }

    #[test]
    fn check_source_applies_scoped_rules_only() {
        let cfg = cfg_for(&["scoped"]);
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (in_scope, _) = check_source(&cfg, "scoped/a.rs", bad);
        assert_eq!(in_scope.len(), 1);
        assert_eq!(in_scope[0].rule, "no-panic");
        let (out_of_scope, _) = check_source(&cfg, "other/a.rs", bad);
        assert!(out_of_scope.is_empty());
    }

    #[test]
    fn diagnostics_are_ordered_and_suppressions_counted() {
        let cfg = cfg_for(&["s"]);
        let src = "fn g(x: Option<u32>) {\n    x.clone().unwrap(); // lint: allow(no-panic)\n    panic!(\"b\");\n    todo!();\n}\n";
        let (kept, suppressed) = check_source(&cfg, "s/a.rs", src);
        assert_eq!(suppressed, 1);
        let lines: Vec<u32> = kept.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 4]);
    }
}
