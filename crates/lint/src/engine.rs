//! The driver: walk the workspace, parse every `.rs` file in scope,
//! run the per-file rules, assemble the call graph, run the
//! call-graph analyses, and fold everything into a [`Report`].
//!
//! Linting is two-phase (DESIGN.md §14). Phase one runs the token
//! rules of [`crate::rules`] file by file and filters them through
//! inline suppressions. Phase two builds the [`CallGraph`] over the
//! [`crate::parse`] output and runs the interprocedural analyses of
//! [`crate::taint`], which consult the same suppression set as
//! certifications — a suppressed panic site is not may-panic for its
//! callers. Suppressions that never fire in either phase surface in
//! [`Report::unused_suppressions`].

use std::fs;
use std::path::{Path, PathBuf};

use crate::callgraph::{CallGraph, CrateDeps};
use crate::config::{path_in, Config};
use crate::diag::{Diagnostic, Severity};
use crate::error::LintError;
use crate::parse::{self, ParsedFile};
use crate::rules::all_rules;
use crate::source::SourceFile;
use crate::suppress::{Suppressions, UnusedSuppression};
use crate::taint::{self, GlobalContext};

/// The outcome of a lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Non-suppressed findings, ordered by (file, line, column, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many findings inline suppressions silenced or certified.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// Suppression comments that silenced or certified nothing, in
    /// (file, line) order.
    pub unused_suppressions: Vec<UnusedSuppression>,
}

impl Report {
    /// Whether the run found nothing actionable.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Counts of (errors, warnings) among the kept diagnostics.
    pub fn counts(&self) -> (usize, usize) {
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        (errors, self.diagnostics.len() - errors)
    }
}

/// Lints an in-memory file set: both phases, suppressions applied.
/// `deps` restricts cross-crate call edges to dependency direction
/// (`None` for single-file and fixture runs).
pub fn lint_files(cfg: &Config, files: &[SourceFile], deps: Option<&CrateDeps>) -> Report {
    let parsed: Vec<ParsedFile> = files.iter().map(parse::parse).collect();
    let mut sup = Suppressions::collect(files, &parsed);
    let mut diagnostics = Vec::new();
    // Phase one: per-file token rules.
    for (f, file) in files.iter().enumerate() {
        let mut diags = Vec::new();
        for rule in all_rules() {
            if rule.applies(cfg, &file.path) {
                rule.check(cfg, file, &mut diags);
            }
        }
        diagnostics.extend(sup.apply(f, diags));
    }
    // Phase two: call-graph analyses, certifying through `sup`.
    let graph = CallGraph::build(files, &parsed, deps);
    let ctx = GlobalContext {
        cfg,
        files,
        parsed: &parsed,
        graph: &graph,
    };
    taint::check_global(&ctx, &mut sup, &mut diagnostics);
    diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Report {
        diagnostics,
        suppressed: sup.hits,
        files_scanned: files.len(),
        unused_suppressions: sup.unused(files),
    }
}

/// Lints several in-memory sources given as `(path, text)` pairs —
/// the unit the multi-file call-graph fixture tests drive.
pub fn check_sources(cfg: &Config, sources: &[(&str, &str)]) -> Report {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, text)| SourceFile::new(*path, *text))
        .collect();
    lint_files(cfg, &files, None)
}

/// Lints a single file's text as if it lived at `rel_path`, returning
/// the kept diagnostics and the suppressed count. This is the unit the
/// single-file fixture tests drive directly.
pub fn check_source(cfg: &Config, rel_path: &str, text: &str) -> (Vec<Diagnostic>, usize) {
    let report = check_sources(cfg, &[(rel_path, text)]);
    (report.diagnostics, report.suppressed)
}

/// Lints every `.rs` file under the configured include roots of
/// `root`, skipping excluded prefixes. Cross-crate call edges follow
/// the dependency direction parsed from the workspace manifests.
///
/// # Errors
///
/// [`LintError::Io`] when a directory or file cannot be read.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Report, LintError> {
    let mut paths = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.exists() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = relative_path(root, &path);
        if path_in(&rel, &cfg.exclude) {
            continue;
        }
        let text = fs::read_to_string(&path).map_err(|e| LintError::Io {
            path: rel.clone(),
            message: e.to_string(),
        })?;
        files.push(SourceFile::new(rel, text));
    }
    let deps = CrateDeps::load(root);
    Ok(lint_files(cfg, &files, Some(&deps)))
}

/// Recursively collects `.rs` files, visiting entries in sorted order
/// so reports are byte-identical across runs and platforms.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let read = |p: &Path| -> Result<Vec<PathBuf>, LintError> {
        let mut entries = Vec::new();
        let iter = fs::read_dir(p).map_err(|e| LintError::Io {
            path: p.display().to_string(),
            message: e.to_string(),
        })?;
        for entry in iter {
            let entry = entry.map_err(|e| LintError::Io {
                path: p.display().to_string(),
                message: e.to_string(),
            })?;
            entries.push(entry.path());
        }
        entries.sort();
        Ok(entries)
    };
    for path in read(dir)? {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(paths: &[&str]) -> Config {
        Config {
            no_panic_paths: paths.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        }
    }

    #[test]
    fn check_source_applies_scoped_rules_only() {
        let cfg = cfg_for(&["scoped"]);
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (in_scope, _) = check_source(&cfg, "scoped/a.rs", bad);
        assert_eq!(in_scope.len(), 1);
        assert_eq!(in_scope[0].rule, "no-panic");
        let (out_of_scope, _) = check_source(&cfg, "other/a.rs", bad);
        assert!(out_of_scope.is_empty());
    }

    #[test]
    fn diagnostics_are_ordered_and_suppressions_counted() {
        let cfg = cfg_for(&["s"]);
        let src = "fn g(x: Option<u32>) {\n    x.clone().unwrap(); // lint: allow(no-panic)\n    panic!(\"b\");\n    todo!();\n}\n";
        let (kept, suppressed) = check_source(&cfg, "s/a.rs", src);
        assert_eq!(suppressed, 1);
        let lines: Vec<u32> = kept.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 4]);
    }

    #[test]
    fn reports_carry_unused_suppressions() {
        let cfg = cfg_for(&["s"]);
        let src = "fn g() -> u32 { 1 } // lint: allow(no-panic) — stale\n";
        let report = check_sources(&cfg, &[("s/a.rs", src)]);
        assert!(report.is_clean());
        assert_eq!(report.unused_suppressions.len(), 1);
        assert_eq!(report.unused_suppressions[0].file, "s/a.rs");
        assert_eq!(report.unused_suppressions[0].line, 1);
    }
}
