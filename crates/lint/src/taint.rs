//! The call-graph analyses: panic reachability, zero-alloc
//! reachability, determinism taint, and the par-safety discipline.
//!
//! All four share one machinery (DESIGN.md §14): collect *seed*
//! effects per function from the [`crate::parse`] output, propagate
//! over the [`crate::callgraph`] edges to a fixpoint (a reverse BFS
//! that records, per function, the next hop toward a witnessing
//! seed), and report only at the *boundary* — the first call site
//! where guarded code reaches the property. Inline suppressions act
//! interprocedurally: a suppressed seed is *certified* and never
//! propagates, so one `// lint: allow(no-panic) — invariant` at the
//! panic site clears every transitive caller, and deleting the panic
//! later surfaces the comment in the unused-suppressions report.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::config::{path_in, Config};
use crate::diag::{Diagnostic, Severity};
use crate::parse::{Effect, EffectKind, FnItem, ParsedFile};
use crate::source::SourceFile;
use crate::suppress::Suppressions;

/// Everything the global analyses need to see at once.
pub struct GlobalContext<'a> {
    /// The active configuration.
    pub cfg: &'a Config,
    /// Every scanned file.
    pub files: &'a [SourceFile],
    /// The files' parsed items, parallel to `files`.
    pub parsed: &'a [ParsedFile],
    /// The workspace call graph over `parsed`.
    pub graph: &'a CallGraph,
}

/// Where a witnessing seed effect sits, for diagnostic messages.
#[derive(Debug, Clone)]
struct SeedSite {
    what: String,
    file: String,
    line: u32,
}

impl<'a> GlobalContext<'a> {
    fn path_of(&self, node: usize) -> &str {
        &self.files[self.graph.nodes[node].file].path
    }

    fn file_of(&self, node: usize) -> usize {
        self.graph.nodes[node].file
    }

    fn fn_of(&self, node: usize) -> &'a FnItem {
        let n = self.graph.nodes[node];
        &self.parsed[n.file].fns[n.fn_idx]
    }

    /// The `from`-to-seed witness chain as `` `a` → `b` → `c` ``,
    /// elided in the middle past five hops.
    fn chain(&self, witness: &[Option<usize>], from: usize) -> String {
        let mut names = Vec::new();
        let mut at = from;
        loop {
            names.push(self.fn_of(at).name.clone());
            match witness[at] {
                Some(next) if next != at && names.len() <= self.graph.nodes.len() => at = next,
                _ => break,
            }
        }
        let parts: Vec<String> = if names.len() > 5 {
            let mut v: Vec<String> = names[..2].to_vec();
            v.push("…".to_string());
            v.extend_from_slice(&names[names.len() - 2..]);
            v
        } else {
            names
        };
        parts
            .iter()
            .map(|n| format!("`{n}`"))
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

/// Runs every call-graph rule, appending findings to `out`.
/// Certification queries go through `sup`, so a fired suppression both
/// silences the local site and stops propagation.
pub fn check_global(ctx: &GlobalContext<'_>, sup: &mut Suppressions, out: &mut Vec<Diagnostic>) {
    let rev = reverse_edges(ctx.graph);
    no_panic(ctx, &rev, sup, out);
    zero_alloc(ctx, sup, out);
    determinism_taint(ctx, &rev, sup, out);
    par_safety(ctx, sup, out);
}

/// Caller lists per node (the reverse adjacency of the call graph).
fn reverse_edges(graph: &CallGraph) -> Vec<Vec<usize>> {
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    for (caller, edges) in graph.edges.iter().enumerate() {
        for e in edges {
            rev[e.callee].push(caller);
        }
    }
    rev
}

/// Reverse-BFS propagation: `witness[n]` is the next hop from `n`
/// toward a seed (`Some(n)` for seeds themselves), `None` when `n`
/// cannot reach any seed. Seeds are visited in id order, so the
/// witness choice — and every diagnostic path built from it — is
/// deterministic.
fn witness_up(rev: &[Vec<usize>], seeds: &[usize]) -> Vec<Option<usize>> {
    let mut witness: Vec<Option<usize>> = vec![None; rev.len()];
    let mut queue: Vec<usize> = Vec::new();
    for &s in seeds {
        if witness[s].is_none() {
            witness[s] = Some(s);
            queue.push(s);
        }
    }
    let mut at = 0;
    while at < queue.len() {
        let n = queue[at];
        at += 1;
        for &caller in &rev[n] {
            if witness[caller].is_none() {
                witness[caller] = Some(n);
                queue.push(caller);
            }
        }
    }
    witness
}

/// The seed at the end of `from`'s witness chain.
fn seed_of(witness: &[Option<usize>], from: usize) -> usize {
    let mut at = from;
    let mut steps = 0usize;
    while let Some(next) = witness[at] {
        if next == at || steps > witness.len() {
            break;
        }
        at = next;
        steps += 1;
    }
    at
}

/// Panic reachability. Direct `unwrap`/`expect`/panic-macro (and,
/// when configured, indexing) sites in guarded files are flagged as
/// before; additionally, a guarded function calling an *unguarded*
/// function that can transitively panic is flagged at the call site —
/// the violation PR 3's per-file scanner could not see.
fn no_panic(
    ctx: &GlobalContext<'_>,
    rev: &[Vec<usize>],
    sup: &mut Suppressions,
    out: &mut Vec<Diagnostic>,
) {
    let guarded = &ctx.cfg.no_panic_paths;
    if guarded.is_empty() {
        return;
    }
    let is_panic = |e: &Effect| {
        e.kind == EffectKind::Panic || (ctx.cfg.index_panics && e.kind == EffectKind::Index)
    };
    let suggestion = "return a typed error (GraphError/BisectError/GenError); for an \
                      invariant that cannot fail, suppress with `// lint: allow(no-panic)` \
                      and state the invariant";
    // Seeds: functions with at least one uncertified panic site.
    let mut seeds: Vec<usize> = Vec::new();
    let mut seed_sites: BTreeMap<usize, SeedSite> = BTreeMap::new();
    let mut direct: Vec<Vec<&Effect>> = vec![Vec::new(); ctx.graph.nodes.len()];
    for (node, slot) in direct.iter_mut().enumerate() {
        let file = ctx.file_of(node);
        for e in ctx.fn_of(node).effects.iter().filter(|e| is_panic(e)) {
            if sup.covers(file, "no-panic", e.line) {
                continue;
            }
            slot.push(e);
        }
        if let Some(first) = slot.first() {
            seeds.push(node);
            seed_sites.insert(
                node,
                SeedSite {
                    what: first.what.clone(),
                    file: ctx.path_of(node).to_string(),
                    line: first.line,
                },
            );
        }
    }
    let witness = witness_up(rev, &seeds);
    // Direct sites (and top-level effects) in guarded files.
    for (node, effects) in direct.iter().enumerate() {
        if !path_in(ctx.path_of(node), guarded) {
            continue;
        }
        for e in effects {
            out.push(panic_diag(ctx.path_of(node), e, suggestion));
        }
    }
    for (f, parsed) in ctx.parsed.iter().enumerate() {
        if !path_in(&ctx.files[f].path, guarded) {
            continue;
        }
        for e in parsed.top_effects.iter().filter(|e| is_panic(e)) {
            if sup.covers(f, "no-panic", e.line) {
                continue;
            }
            out.push(panic_diag(&ctx.files[f].path, e, suggestion));
        }
    }
    // Boundary call sites: guarded caller → unguarded may-panic callee.
    for caller in 0..ctx.graph.nodes.len() {
        if !path_in(ctx.path_of(caller), guarded) {
            continue;
        }
        let caller_file = ctx.file_of(caller);
        for edge in &ctx.graph.edges[caller] {
            if witness[edge.callee].is_none() || path_in(ctx.path_of(edge.callee), guarded) {
                continue;
            }
            if sup.covers(caller_file, "no-panic", edge.line) {
                continue;
            }
            let seed = seed_of(&witness, edge.callee);
            let site = &seed_sites[&seed];
            out.push(Diagnostic {
                rule: "no-panic",
                severity: Severity::Error,
                file: ctx.path_of(caller).to_string(),
                line: edge.line,
                col: edge.col,
                message: format!(
                    "call into `{}` can panic: `{}` at {}:{} (via {})",
                    ctx.fn_of(edge.callee).name,
                    site.what,
                    site.file,
                    site.line,
                    ctx.chain(&witness, edge.callee),
                ),
                suggestion: Some(
                    "make the callee return a typed error, or certify the call site with \
                     `// lint: allow(no-panic)` stating why the input cannot trigger it"
                        .into(),
                ),
            });
        }
    }
}

fn panic_diag(path: &str, e: &Effect, suggestion: &str) -> Diagnostic {
    let message = if e.kind == EffectKind::Index {
        "slice indexing can panic in non-test code".to_string()
    } else {
        format!("`{}` in non-test code", e.what)
    };
    Diagnostic {
        rule: "no-panic",
        severity: Severity::Error,
        file: path.to_string(),
        line: e.line,
        col: e.col,
        message,
        suggestion: Some(suggestion.to_string()),
    }
}

/// Zero-alloc reachability. With `[reachability] alloc_roots`
/// configured, allocation is banned in every function reachable from
/// the named hot entry points (minus the sanctioned `alloc_allow`
/// arena files) — wherever those functions live. Without roots it
/// falls back to the PR-3 semantics: every function in a `hot_paths`
/// file is a root.
fn zero_alloc(ctx: &GlobalContext<'_>, sup: &mut Suppressions, out: &mut Vec<Diagnostic>) {
    let cfg = ctx.cfg;
    if cfg.hot_paths.is_empty() && cfg.alloc_roots.is_empty() {
        return;
    }
    let suggestion = "reuse a Workspace arena buffer; for one-time warm-up allocation, \
                      suppress with `// lint: allow(zero-alloc)`";
    let mut roots: Vec<usize> = Vec::new();
    if cfg.alloc_roots.is_empty() {
        for node in 0..ctx.graph.nodes.len() {
            if path_in(ctx.path_of(node), &cfg.hot_paths) {
                roots.push(node);
            }
        }
    } else {
        for spec in &cfg.alloc_roots {
            let matches: Vec<usize> = (0..ctx.graph.nodes.len())
                .filter(|&n| {
                    let f = ctx.fn_of(n);
                    match spec.split_once("::") {
                        Some((ty, name)) => f.self_type.as_deref() == Some(ty) && f.name == name,
                        None => f.self_type.is_none() && f.name == *spec,
                    }
                })
                .collect();
            if matches.is_empty() {
                // A renamed entry point must fail loudly, not silently
                // stop guarding the hot path.
                out.push(Diagnostic {
                    rule: "zero-alloc",
                    severity: Severity::Error,
                    file: "lint.toml".to_string(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "[reachability] alloc_roots entry `{spec}` does not match any function"
                    ),
                    suggestion: Some(
                        "update alloc_roots to the renamed hot-path entry point".into(),
                    ),
                });
            }
            roots.extend(matches);
        }
    }
    let parent = ctx.graph.reach_from(&roots);
    for node in 0..ctx.graph.nodes.len() {
        if parent[node].is_none() {
            continue;
        }
        let path = ctx.path_of(node);
        if path_in(path, &cfg.alloc_allow) {
            continue;
        }
        let file = ctx.file_of(node);
        let in_hot_file = path_in(path, &cfg.hot_paths);
        for e in ctx.fn_of(node).effects.iter() {
            if e.kind != EffectKind::Alloc {
                continue;
            }
            if sup.covers(file, "zero-alloc", e.line) {
                continue;
            }
            let message =
                if cfg.alloc_roots.is_empty() || (in_hot_file && parent[node] == Some(node)) {
                    format!("`{}` in a zero-alloc hot path", e.what)
                } else {
                    format!(
                        "`{}` allocates in a function reachable from a hot entry (path {})",
                        e.what,
                        chain_down(ctx, &parent, node),
                    )
                };
            out.push(Diagnostic {
                rule: "zero-alloc",
                severity: Severity::Error,
                file: path.to_string(),
                line: e.line,
                col: e.col,
                message,
                suggestion: Some(suggestion.to_string()),
            });
        }
    }
    // Top-level allocation effects in hot-path files (item
    // initializers) stay banned in both modes.
    for (f, parsed) in ctx.parsed.iter().enumerate() {
        if !path_in(&ctx.files[f].path, &cfg.hot_paths) {
            continue;
        }
        for e in &parsed.top_effects {
            if e.kind != EffectKind::Alloc || sup.covers(f, "zero-alloc", e.line) {
                continue;
            }
            out.push(Diagnostic {
                rule: "zero-alloc",
                severity: Severity::Error,
                file: ctx.files[f].path.clone(),
                line: e.line,
                col: e.col,
                message: format!("`{}` in a zero-alloc hot path", e.what),
                suggestion: Some(suggestion.to_string()),
            });
        }
    }
}

/// The root-to-`node` chain under a forward reachability parent map.
fn chain_down(ctx: &GlobalContext<'_>, parent: &[Option<usize>], node: usize) -> String {
    let names = ctx.graph.path_to(ctx.parsed, parent, node);
    let parts: Vec<&str> = if names.len() > 5 {
        let mut v = names[..2].to_vec();
        v.push("…");
        v.extend_from_slice(&names[names.len() - 2..]);
        v
    } else {
        names
    };
    parts
        .iter()
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Determinism taint. Sources are nondeterminism that is *legal where
/// it sits* — `HashMap` iteration outside the guarded crates, clock
/// reads in sanctioned timing modules, entropy inside the rand shim —
/// but must not flow into determinism-critical code through a call.
/// The per-file `determinism-*` rules already ban the illegal sites;
/// this rule guards the boundary.
fn determinism_taint(
    ctx: &GlobalContext<'_>,
    rev: &[Vec<usize>],
    sup: &mut Suppressions,
    out: &mut Vec<Diagnostic>,
) {
    let cfg = ctx.cfg;
    if cfg.determinism_paths.is_empty() {
        return;
    }
    let source_what = |path: &str, e: &Effect| -> Option<String> {
        match e.kind {
            EffectKind::Hash if !path_in(path, &cfg.determinism_paths) => {
                Some(format!("`{}` iteration order", e.what))
            }
            EffectKind::Time
                if !path_in(path, &cfg.timing_paths) || path_in(path, &cfg.timing_allow) =>
            {
                Some(format!("wall-clock `{}`", e.what))
            }
            EffectKind::Entropy if path_in(path, &cfg.entropy_allow) => {
                Some(format!("entropy source `{}`", e.what))
            }
            _ => None,
        }
    };
    let mut seeds: Vec<usize> = Vec::new();
    let mut seed_sites: BTreeMap<usize, SeedSite> = BTreeMap::new();
    for node in 0..ctx.graph.nodes.len() {
        let path = ctx.path_of(node);
        let file = ctx.file_of(node);
        for e in &ctx.fn_of(node).effects {
            let Some(what) = source_what(path, e) else {
                continue;
            };
            if sup.covers(file, "determinism-taint", e.line) {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(slot) = seed_sites.entry(node) {
                seeds.push(node);
                slot.insert(SeedSite {
                    what,
                    file: path.to_string(),
                    line: e.line,
                });
            }
        }
    }
    let witness = witness_up(rev, &seeds);
    for caller in 0..ctx.graph.nodes.len() {
        if !path_in(ctx.path_of(caller), &cfg.determinism_paths) {
            continue;
        }
        let caller_file = ctx.file_of(caller);
        for edge in &ctx.graph.edges[caller] {
            if witness[edge.callee].is_none()
                || path_in(ctx.path_of(edge.callee), &cfg.determinism_paths)
            {
                continue;
            }
            if sup.covers(caller_file, "determinism-taint", edge.line) {
                continue;
            }
            let seed = seed_of(&witness, edge.callee);
            let site = &seed_sites[&seed];
            out.push(Diagnostic {
                rule: "determinism-taint",
                severity: Severity::Error,
                file: ctx.path_of(caller).to_string(),
                line: edge.line,
                col: edge.col,
                message: format!(
                    "call into `{}` leaks nondeterminism into guarded code: {} at {}:{} (via {})",
                    ctx.fn_of(edge.callee).name,
                    site.what,
                    site.file,
                    site.line,
                    ctx.chain(&witness, edge.callee),
                ),
                suggestion: Some(
                    "sort or fingerprint the data before it crosses into determinism-critical \
                     code, or certify the call site with `// lint: allow(determinism-taint)` \
                     stating why the order/time/entropy cannot escape"
                        .into(),
                ),
            });
        }
    }
}

/// The par-safety family. `par-safety-thread` bans ad-hoc threading
/// primitives outside the sanctioned parallel runtime.
/// `par-safety-sync` bans interior-mutability/shared-state types in
/// the parallel-consumer paths directly, and — through the call graph
/// — anywhere reachable from a consumer that invokes a sanctioned
/// parallel entry point (`par_map` closures must stay disjoint-range
/// pure). Per-thread `thread_local!` state is exempt at parse level.
fn par_safety(ctx: &GlobalContext<'_>, sup: &mut Suppressions, out: &mut Vec<Diagnostic>) {
    let cfg = ctx.cfg;
    if cfg.par_sanctioned.is_empty() && cfg.par_consumers.is_empty() {
        return;
    }
    // Thread primitives outside the sanctioned runtime.
    let flag_thread =
        |path: &str, file: usize, e: &Effect, out: &mut Vec<Diagnostic>, sup: &mut Suppressions| {
            if e.kind != EffectKind::ThreadSpawn || path_in(path, &cfg.par_sanctioned) {
                return;
            }
            if sup.covers(file, "par-safety-thread", e.line) {
                return;
            }
            out.push(Diagnostic {
                rule: "par-safety-thread",
                severity: Severity::Error,
                file: path.to_string(),
                line: e.line,
                col: e.col,
                message: format!("`{}` outside the sanctioned parallel runtime", e.what),
                suggestion: Some(
                    "route parallelism through bisect-par's par_map/par_map_with so thread \
                 count and merge order stay deterministic"
                        .into(),
                ),
            });
        };
    for node in 0..ctx.graph.nodes.len() {
        let path = ctx.path_of(node).to_string();
        let file = ctx.file_of(node);
        for e in &ctx.fn_of(node).effects {
            flag_thread(&path, file, e, out, sup);
        }
    }
    for (f, parsed) in ctx.parsed.iter().enumerate() {
        let path = ctx.files[f].path.clone();
        for e in &parsed.top_effects {
            flag_thread(&path, f, e, out, sup);
        }
    }
    // Shared-state types directly in consumer paths.
    let sync_suggestion = "parallel consumers must share state only via bisect-par's \
                           disjoint-range entry points; move the cell behind the runtime \
                           or suppress with `// lint: allow(par-safety-sync)` stating why \
                           it cannot race";
    let direct_sync = |path: &str| path_in(path, &cfg.par_consumers);
    for node in 0..ctx.graph.nodes.len() {
        let path = ctx.path_of(node).to_string();
        if !direct_sync(&path) {
            continue;
        }
        let file = ctx.file_of(node);
        for e in &ctx.fn_of(node).effects {
            if e.kind != EffectKind::InteriorMut || sup.covers(file, "par-safety-sync", e.line) {
                continue;
            }
            out.push(sync_diag(&path, e, sync_suggestion, None));
        }
    }
    for (f, parsed) in ctx.parsed.iter().enumerate() {
        let path = ctx.files[f].path.clone();
        if !direct_sync(&path) {
            continue;
        }
        for e in &parsed.top_effects {
            if e.kind != EffectKind::InteriorMut || sup.covers(f, "par-safety-sync", e.line) {
                continue;
            }
            out.push(sync_diag(&path, e, sync_suggestion, None));
        }
    }
    // Shared state reachable from a consumer's parallel entry call.
    if cfg.par_entry_points.is_empty() {
        return;
    }
    let calls_entry = |node: usize| {
        ctx.fn_of(node).calls.iter().any(|c| {
            let name = match &c.target {
                crate::parse::CallTarget::Free(n)
                | crate::parse::CallTarget::Method(n)
                | crate::parse::CallTarget::Qualified(_, n) => n,
                crate::parse::CallTarget::Macro(_) => return false,
            };
            cfg.par_entry_points.iter().any(|e| e == name)
        })
    };
    let par_callers: Vec<usize> = (0..ctx.graph.nodes.len())
        .filter(|&n| direct_sync(ctx.path_of(n)) && calls_entry(n))
        .collect();
    let mut reported: BTreeSet<(usize, u32, u32)> = BTreeSet::new();
    for &root in &par_callers {
        let parent = ctx.graph.reach_from(&[root]);
        for node in 0..ctx.graph.nodes.len() {
            if parent[node].is_none() {
                continue;
            }
            let path = ctx.path_of(node);
            if path_in(path, &cfg.par_consumers) || path_in(path, &cfg.par_sanctioned) {
                continue;
            }
            let file = ctx.file_of(node);
            for e in &ctx.fn_of(node).effects {
                if e.kind != EffectKind::InteriorMut || !reported.insert((file, e.line, e.col)) {
                    continue;
                }
                if sup.covers(file, "par-safety-sync", e.line) {
                    continue;
                }
                let via = format!(
                    "reachable from parallel consumer `{}` (path {})",
                    ctx.fn_of(root).name,
                    chain_down(ctx, &parent, node),
                );
                out.push(sync_diag(path, e, sync_suggestion, Some(&via)));
            }
        }
    }
}

fn sync_diag(path: &str, e: &Effect, suggestion: &str, via: Option<&str>) -> Diagnostic {
    let message = match via {
        Some(via) => format!("`{}` shared-state type {via}", e.what),
        None => format!(
            "`{}` (interior mutability) in a parallel-consumer path",
            e.what
        ),
    };
    Diagnostic {
        rule: "par-safety-sync",
        severity: Severity::Error,
        file: path.to_string(),
        line: e.line,
        col: e.col,
        message,
        suggestion: Some(suggestion.to_string()),
    }
}
