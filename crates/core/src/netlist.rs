//! Hypergraph-native bisection: Fiduccia-Mattheyses on netlists.
//!
//! The paper's VLSI motivation minimizes *net cut* — the number of nets
//! (hyperedges) with pins on both sides — which the graph abstraction
//! only approximates (a cut k-pin net contributes up to `⌊k/2⌋·⌈k/2⌉`
//! clique edges). This module provides:
//!
//! * [`NetlistBisection`] — incremental net-cut bookkeeping (per-net
//!   pin counts per side);
//! * [`NetlistFm`] — the original 1982 FM algorithm in its native
//!   habitat: single-cell moves, gain buckets, balance tolerance, best
//!   balanced prefix per pass.
//!
//! The `hypergraph_netlist` example compares this against bisecting the
//! clique expansion with graph algorithms.

use bisect_graph::hypergraph::{NetId, Netlist};
use bisect_graph::{VertexId, VertexWeight};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use crate::gain::GainBuckets;
use crate::partition::{Side, SideLengthError};

/// A two-way partition of a netlist's cells with incrementally
/// maintained net cut.
///
/// # Example
///
/// ```
/// use bisect_core::netlist::NetlistBisection;
/// use bisect_graph::hypergraph::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new(4);
/// b.add_net(&[0, 1, 2]).unwrap();
/// b.add_net(&[2, 3]).unwrap();
/// let nl = b.build();
/// let p = NetlistBisection::from_sides(&nl, vec![false, false, true, true]).unwrap();
/// assert_eq!(p.cut(), 1); // the 3-pin net spans; {2,3} sits inside B
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistBisection {
    side: Vec<bool>,
    /// Pins of each net on side A / side B.
    pins_on: Vec<[u32; 2]>,
    cut: u64,
    counts: [usize; 2],
    weights: [VertexWeight; 2],
}

impl NetlistBisection {
    /// Creates a bisection from a raw side vector (`false` = side A).
    ///
    /// # Errors
    ///
    /// Returns [`SideLengthError`] if the length differs from the cell
    /// count.
    pub fn from_sides(nl: &Netlist, side: Vec<bool>) -> Result<NetlistBisection, SideLengthError> {
        if side.len() != nl.num_cells() {
            return Err(SideLengthError {
                got: side.len(),
                expected: nl.num_cells(),
            });
        }
        let mut counts = [0usize; 2];
        let mut weights = [0u64; 2];
        for c in nl.cells() {
            let s = side[c as usize] as usize;
            counts[s] += 1;
            weights[s] += nl.cell_weight(c);
        }
        let mut pins_on = vec![[0u32; 2]; nl.num_nets()];
        let mut cut = 0u64;
        for n in nl.net_ids() {
            for &p in nl.pins(n) {
                pins_on[n as usize][side[p as usize] as usize] += 1;
            }
            if pins_on[n as usize][0] > 0 && pins_on[n as usize][1] > 0 {
                cut += nl.net_weight(n);
            }
        }
        Ok(NetlistBisection {
            side,
            pins_on,
            cut,
            counts,
            weights,
        })
    }

    /// A uniformly random cell-count-balanced bisection.
    pub fn random_balanced<R: Rng + ?Sized>(nl: &Netlist, rng: &mut R) -> NetlistBisection {
        let n = nl.num_cells();
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        perm.shuffle(rng);
        let mut side = vec![true; n];
        for &c in &perm[..n.div_ceil(2)] {
            side[c as usize] = false;
        }
        // lint: allow(no-panic) — side was sized to the cell count just above
        NetlistBisection::from_sides(nl, side).expect("length matches")
    }

    /// The side of cell `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn side(&self, c: VertexId) -> Side {
        if self.side[c as usize] {
            Side::B
        } else {
            Side::A
        }
    }

    /// The raw side vector.
    pub fn sides(&self) -> &[bool] {
        &self.side
    }

    /// The maintained weighted net cut.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Cells on the given side.
    pub fn count(&self, side: Side) -> usize {
        self.counts[side.index()]
    }

    /// Total cell weight of the given side.
    pub fn weight(&self, side: Side) -> VertexWeight {
        self.weights[side.index()]
    }

    /// Absolute side weight difference.
    pub fn weight_imbalance(&self) -> VertexWeight {
        self.weights[0].abs_diff(self.weights[1])
    }

    /// Whether side weights differ by at most the parity remainder
    /// (unit weights) or the largest cell weight.
    pub fn is_balanced(&self, nl: &Netlist) -> bool {
        let unit = nl.cells().all(|c| nl.cell_weight(c) == 1);
        let tolerance = if unit {
            nl.total_cell_weight() % 2
        } else {
            nl.cells().map(|c| nl.cell_weight(c)).max().unwrap_or(0)
        };
        self.weight_imbalance() <= tolerance
    }

    /// Recomputes the net cut from scratch (for validation).
    pub fn recompute_cut(&self, nl: &Netlist) -> u64 {
        let mut cut = 0;
        for n in nl.net_ids() {
            let pins = nl.pins(n);
            let has_a = pins.iter().any(|&p| !self.side[p as usize]);
            let has_b = pins.iter().any(|&p| self.side[p as usize]);
            if has_a && has_b {
                cut += nl.net_weight(n);
            }
        }
        cut
    }

    /// The FM gain of moving cell `c`: weighted nets uncut minus nets
    /// newly cut.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for `nl`.
    pub fn gain(&self, nl: &Netlist, c: VertexId) -> i64 {
        nl.nets_of(c)
            .iter()
            .map(|&n| self.net_contribution(nl, n, c))
            .sum()
    }

    /// Net `n`'s contribution to the gain of its pin `c`.
    fn net_contribution(&self, nl: &Netlist, n: NetId, c: VertexId) -> i64 {
        let s = self.side[c as usize] as usize;
        let [my, other] = [self.pins_on[n as usize][s], self.pins_on[n as usize][1 - s]];
        let w = nl.net_weight(n) as i64;
        if other == 0 {
            // Net entirely on c's side: moving c cuts it, unless c is
            // the only pin.
            if my == 1 {
                0
            } else {
                -w
            }
        } else if my == 1 {
            // c is the last pin on its side: moving it uncuts the net.
            w
        } else {
            0
        }
    }

    /// Moves cell `c` to the other side, updating the cut in
    /// `O(nets_of(c))`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for `nl`.
    pub fn move_cell(&mut self, nl: &Netlist, c: VertexId) {
        let from = self.side[c as usize] as usize;
        let to = 1 - from;
        for &n in nl.nets_of(c) {
            let counts = &mut self.pins_on[n as usize];
            let was_cut = counts[0] > 0 && counts[1] > 0;
            counts[from] -= 1;
            counts[to] += 1;
            let now_cut = counts[0] > 0 && counts[1] > 0;
            match (was_cut, now_cut) {
                (false, true) => self.cut += nl.net_weight(n),
                (true, false) => self.cut -= nl.net_weight(n),
                _ => {}
            }
        }
        self.side[c as usize] = !self.side[c as usize];
        self.counts[from] -= 1;
        self.counts[to] += 1;
        let w = nl.cell_weight(c);
        self.weights[from] -= w;
        self.weights[to] += w;
    }
}

/// Fiduccia-Mattheyses on netlists.
///
/// # Example
///
/// ```
/// use bisect_core::netlist::NetlistFm;
/// use bisect_graph::hypergraph::NetlistBuilder;
/// use rand::SeedableRng;
///
/// let mut b = NetlistBuilder::new(6);
/// for pins in [[0u32, 1, 2].as_slice(), &[3, 4, 5], &[2, 3]] {
///     b.add_net(pins).unwrap();
/// }
/// let nl = b.build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = NetlistFm::new().bisect(&nl, &mut rng);
/// assert_eq!(p.cut(), 1); // only the 2-pin bridge net is cut
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistFm {
    max_passes: usize,
}

impl Default for NetlistFm {
    fn default() -> NetlistFm {
        NetlistFm::new()
    }
}

impl NetlistFm {
    /// FM with passes run to a fixpoint (bounded by a safety cap).
    pub fn new() -> NetlistFm {
        NetlistFm { max_passes: 64 }
    }

    /// Limits the number of passes.
    ///
    /// # Panics
    ///
    /// Panics if `max_passes == 0`.
    pub fn with_max_passes(mut self, max_passes: usize) -> NetlistFm {
        assert!(max_passes > 0, "at least one pass is required");
        self.max_passes = max_passes;
        self
    }

    /// Bisects from a random balanced start.
    pub fn bisect(&self, nl: &Netlist, rng: &mut dyn RngCore) -> NetlistBisection {
        let init = NetlistBisection::random_balanced(nl, rng);
        self.refine(nl, init)
    }

    /// Improves `init` to a pass fixpoint.
    pub fn refine(&self, nl: &Netlist, mut init: NetlistBisection) -> NetlistBisection {
        for _ in 0..self.max_passes {
            if self.pass(nl, &mut init) == 0 {
                break;
            }
        }
        init
    }

    /// Runs one FM pass in place; returns the cut improvement.
    pub fn pass(&self, nl: &Netlist, p: &mut NetlistBisection) -> u64 {
        let n = nl.num_cells();
        if n < 2 {
            return 0;
        }
        let max_weight = nl.cells().map(|c| nl.cell_weight(c)).max().unwrap_or(1);
        let unit = nl.cells().all(|c| nl.cell_weight(c) == 1);
        let base_tol = if unit {
            nl.total_cell_weight() % 2
        } else {
            max_weight
        };
        let pass_tol = base_tol.max(2 * max_weight);

        let max_gain = nl
            .cells()
            .map(|c| {
                nl.nets_of(c)
                    .iter()
                    .map(|&net| nl.net_weight(net))
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
            .min(i64::MAX as u64) as i64;
        let mut buckets = [GainBuckets::new(n, max_gain), GainBuckets::new(n, max_gain)];
        for c in nl.cells() {
            buckets[p.side(c).index()].insert(c, p.gain(nl, c));
        }

        let mut work = p.clone();
        let mut locked = vec![false; n];
        let mut moves: Vec<VertexId> = Vec::with_capacity(n);
        let mut cumulative: Vec<i64> = Vec::with_capacity(n);
        let mut balanced_after: Vec<bool> = Vec::with_capacity(n);
        let mut running = 0i64;

        for _ in 0..n {
            let mut choice: Option<(i64, Side)> = None;
            for side in [Side::A, Side::B] {
                let Some((gain, c)) = buckets[side.index()].peek_best() else {
                    continue;
                };
                let w = nl.cell_weight(c) as i64;
                let imb = work.weight(Side::A) as i64 - work.weight(Side::B) as i64;
                let new_imb = if side == Side::A {
                    imb - 2 * w
                } else {
                    imb + 2 * w
                };
                if new_imb.unsigned_abs() > pass_tol {
                    continue;
                }
                let heavier = work.weight(side) >= work.weight(side.other());
                let better = match choice {
                    Some((bg, bside)) => {
                        gain > bg
                            || (gain == bg && heavier && work.weight(bside) < work.weight(side))
                    }
                    None => true,
                };
                if better {
                    choice = Some((gain, side));
                }
            }
            let Some((gain, side)) = choice else { break };
            // lint: allow(no-panic) — choice is Some only when that bucket had a peek
            let (_, c) = buckets[side.index()].pop_best().expect("peeked nonempty");
            locked[c as usize] = true;

            // Gain updates: each incident net's contribution to each of
            // its free pins changes; record the before values, apply
            // the move, then adjust by the differences.
            let mut adjustments: Vec<(VertexId, i64)> = Vec::new();
            for &net in nl.nets_of(c) {
                for &pin in nl.pins(net) {
                    if pin != c && !locked[pin as usize] {
                        adjustments.push((pin, -work.net_contribution(nl, net, pin)));
                    }
                }
            }
            work.move_cell(nl, c);
            for &net in nl.nets_of(c) {
                for &pin in nl.pins(net) {
                    if pin != c && !locked[pin as usize] {
                        adjustments.push((pin, work.net_contribution(nl, net, pin)));
                    }
                }
            }
            for (pin, delta) in adjustments {
                buckets[work.side(pin).index()].adjust(pin, delta);
            }

            running += gain;
            moves.push(c);
            cumulative.push(running);
            balanced_after.push(work.weight_imbalance() <= base_tol);
        }

        let mut best: Option<(usize, i64)> = None;
        for (i, (&cum, &ok)) in cumulative.iter().zip(balanced_after.iter()).enumerate() {
            if ok && cum > 0 && best.is_none_or(|(_, bc)| cum > bc) {
                best = Some((i, cum));
            }
        }
        let Some((k, best_gain)) = best else { return 0 };
        let before = p.cut();
        for &c in &moves[..=k] {
            p.move_cell(nl, c);
        }
        debug_assert_eq!(p.cut(), p.recompute_cut(nl));
        debug_assert_eq!(before - p.cut(), best_gain as u64);
        before - p.cut()
    }
}

/// Moves minimum-damage cells from the heavier side until the
/// bisection is balanced — the netlist analogue of
/// [`crate::partition::rebalance`], used after projecting a coarse
/// bisection.
pub fn rebalance(nl: &Netlist, p: &mut NetlistBisection) {
    while !p.is_balanced(nl) {
        let heavy = if p.weight(Side::A) > p.weight(Side::B) {
            Side::A
        } else {
            Side::B
        };
        let imbalance = p.weight_imbalance();
        let candidate = nl
            .cells()
            .filter(|&c| p.side(c) == heavy && nl.cell_weight(c) < imbalance)
            .max_by_key(|&c| (p.gain(nl, c), std::cmp::Reverse(c)));
        match candidate {
            Some(c) => p.move_cell(nl, c),
            None => return, // every heavy cell is at least the imbalance
        }
    }
}

/// The compaction heuristic (§V) in its netlist form: match cells along
/// nets, contract, run [`NetlistFm`] on the coarse netlist, project,
/// rebalance, and refine — the paper's contribution transplanted to the
/// hypergraph objective (and the seed of hMETIS-style multilevel
/// hypergraph partitioning).
///
/// # Example
///
/// ```
/// use bisect_core::netlist::CompactedNetlistFm;
/// use bisect_graph::hypergraph::NetlistBuilder;
/// use rand::SeedableRng;
///
/// let mut b = NetlistBuilder::new(6);
/// for pins in [[0u32, 1, 2].as_slice(), &[3, 4, 5], &[2, 3]] {
///     b.add_net(pins).unwrap();
/// }
/// let nl = b.build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = CompactedNetlistFm::new().bisect(&nl, &mut rng);
/// assert_eq!(p.cut(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompactedNetlistFm {
    inner: NetlistFm,
}

impl CompactedNetlistFm {
    /// One level of netlist compaction around [`NetlistFm`].
    pub fn new() -> CompactedNetlistFm {
        CompactedNetlistFm {
            inner: NetlistFm::new(),
        }
    }

    /// Bisects `nl` by compaction.
    pub fn bisect(&self, nl: &Netlist, rng: &mut dyn RngCore) -> NetlistBisection {
        let pairs = bisect_graph::hypergraph::random_cell_matching(nl, rng);
        if pairs.is_empty() {
            return self.inner.bisect(nl, rng);
        }
        let c = bisect_graph::hypergraph::contract_cells(nl, &pairs);
        let coarse = c.coarse();
        // Weight-balanced random start on the coarse netlist.
        let coarse_init = weight_balanced_random(coarse, rng);
        let coarse_bisection = self.inner.refine(coarse, coarse_init);
        let mut projected =
            NetlistBisection::from_sides(nl, c.project_sides(coarse_bisection.sides()))
                // lint: allow(no-panic) — project_sides returns one entry per fine cell
                .expect("projection covers every fine cell");
        rebalance(nl, &mut projected);
        let refined = self.inner.refine(nl, projected);
        debug_assert!(refined.is_balanced(nl));
        refined
    }
}

/// Multilevel netlist bisection: coarsen by repeated cell matchings,
/// bisect the coarsest netlist, then project and FM-refine level by
/// level — hMETIS avant la lettre, completing the parallel with the
/// graph-side [`crate::multilevel::Multilevel`].
///
/// # Example
///
/// ```
/// use bisect_core::netlist::MultilevelNetlistFm;
/// use bisect_graph::hypergraph::NetlistBuilder;
/// use rand::SeedableRng;
///
/// let mut b = NetlistBuilder::new(8);
/// for pins in [[0u32, 1, 2, 3].as_slice(), &[4, 5, 6, 7], &[3, 4]] {
///     b.add_net(pins).unwrap();
/// }
/// let nl = b.build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ml = MultilevelNetlistFm::new().with_coarsest_size(4);
/// let p = ml.bisect(&nl, &mut rng);
/// assert_eq!(p.cut(), 1); // the clusters contract; only the bridge is cut
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultilevelNetlistFm {
    inner: NetlistFm,
    coarsest_size: usize,
}

impl Default for MultilevelNetlistFm {
    fn default() -> MultilevelNetlistFm {
        MultilevelNetlistFm::new()
    }
}

impl MultilevelNetlistFm {
    /// Multilevel FM coarsening down to at most 32 cells.
    pub fn new() -> MultilevelNetlistFm {
        MultilevelNetlistFm {
            inner: NetlistFm::new(),
            coarsest_size: 32,
        }
    }

    /// Sets the size at which coarsening stops.
    ///
    /// # Panics
    ///
    /// Panics if `coarsest_size < 2`.
    pub fn with_coarsest_size(mut self, coarsest_size: usize) -> MultilevelNetlistFm {
        assert!(coarsest_size >= 2, "coarsest size must be at least 2");
        self.coarsest_size = coarsest_size;
        self
    }

    /// Bisects `nl` with a full V-cycle.
    pub fn bisect(&self, nl: &Netlist, rng: &mut dyn RngCore) -> NetlistBisection {
        let ladder = bisect_graph::hypergraph::coarsen_to(nl, self.coarsest_size, rng);
        let coarsest = ladder.last().map_or(nl, |c| c.coarse());
        let init = weight_balanced_random(coarsest, rng);
        let mut current = self.inner.refine(coarsest, init);
        for i in (0..ladder.len()).rev() {
            let fine: &Netlist = if i == 0 { nl } else { ladder[i - 1].coarse() };
            let mut projected =
                NetlistBisection::from_sides(fine, ladder[i].project_sides(current.sides()))
                    // lint: allow(no-panic) — project_sides returns one entry per fine cell
                    .expect("projection matches fine cell count");
            rebalance(fine, &mut projected);
            current = self.inner.refine(fine, projected);
        }
        if !current.is_balanced(nl) {
            rebalance(nl, &mut current);
        }
        current
    }
}

/// A random bisection balanced by cell weight (greedy lighter-side
/// assignment in random order).
fn weight_balanced_random<R: Rng + ?Sized>(nl: &Netlist, rng: &mut R) -> NetlistBisection {
    let n = nl.num_cells();
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(rng);
    let mut side = vec![false; n];
    let mut weights = [0u64; 2];
    for &c in &perm {
        let target = usize::from(weights[1] < weights[0]);
        side[c as usize] = target == 1;
        weights[target] += nl.cell_weight(c);
    }
    // lint: allow(no-panic) — side was sized to the cell count just above
    NetlistBisection::from_sides(nl, side).expect("length matches")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_graph::hypergraph::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_clusters() -> Netlist {
        // Two 3-cell clusters joined by one bridge net.
        let mut b = NetlistBuilder::new(6);
        b.add_net(&[0, 1, 2]).unwrap();
        b.add_net(&[0, 1]).unwrap();
        b.add_net(&[3, 4, 5]).unwrap();
        b.add_net(&[4, 5]).unwrap();
        b.add_net(&[2, 3]).unwrap();
        b.build()
    }

    fn brute_force_cut(nl: &Netlist) -> u64 {
        let n = nl.num_cells();
        assert!(n <= 16);
        let half = n.div_ceil(2);
        let mut best = u64::MAX;
        for mask in 0..1u32 << n {
            if mask.count_ones() as usize != half {
                continue;
            }
            let sides: Vec<bool> = (0..n).map(|c| mask >> c & 1 == 0).collect();
            let cut = NetlistBisection::from_sides(nl, sides).unwrap().cut();
            best = best.min(cut);
        }
        best
    }

    #[test]
    fn cut_counts_spanning_nets_once() {
        let nl = two_clusters();
        let p =
            NetlistBisection::from_sides(&nl, vec![false, false, false, true, true, true]).unwrap();
        assert_eq!(p.cut(), 1);
        let q =
            NetlistBisection::from_sides(&nl, vec![false, true, false, true, false, true]).unwrap();
        assert_eq!(q.cut(), q.recompute_cut(&nl));
        assert_eq!(q.cut(), 5);
    }

    #[test]
    fn from_sides_rejects_wrong_length() {
        let nl = two_clusters();
        assert!(NetlistBisection::from_sides(&nl, vec![false; 3]).is_err());
    }

    #[test]
    fn gain_matches_definition() {
        let nl = two_clusters();
        let p =
            NetlistBisection::from_sides(&nl, vec![false, false, false, true, true, true]).unwrap();
        // Moving cell 2: cuts nets {0,1,2}; uncuts the bridge {2,3}.
        assert_eq!(p.gain(&nl, 2), 0);
        // Moving cell 0: cuts {0,1,2} and {0,1}: -2.
        assert_eq!(p.gain(&nl, 0), -2);
    }

    #[test]
    fn move_cell_keeps_cut_consistent() {
        let nl = two_clusters();
        let mut p = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(1));
        for c in [0u32, 3, 2, 5, 0, 1] {
            let gain = p.gain(&nl, c);
            let before = p.cut();
            p.move_cell(&nl, c);
            assert_eq!(p.cut(), p.recompute_cut(&nl), "after moving {c}");
            assert_eq!(
                before as i64 - p.cut() as i64,
                gain,
                "gain mismatch for {c}"
            );
        }
    }

    #[test]
    fn fm_finds_the_bridge_cut() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(3);
        let p = NetlistFm::new().bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 1);
        assert!(p.is_balanced(&nl));
    }

    #[test]
    fn fm_matches_brute_force_on_small_netlists() {
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..20 {
            // Random netlist on 10 cells with 8 nets of 2-4 pins.
            let mut b = NetlistBuilder::new(10);
            for _ in 0..8 {
                let size = rng.gen_range(2..=4usize);
                let mut pins: Vec<u32> = (0..10).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..size]).unwrap();
            }
            let nl = b.build();
            let optimal = brute_force_cut(&nl);
            let mut best = u64::MAX;
            for seed in 0..8 {
                let p = NetlistFm::new().bisect(&nl, &mut StdRng::seed_from_u64(seed));
                assert!(p.cut() >= optimal, "trial {trial}: below optimum");
                best = best.min(p.cut());
            }
            assert!(
                best <= optimal + 1,
                "trial {trial}: FM best {best} far from optimum {optimal}"
            );
        }
    }

    #[test]
    fn pass_never_increases_cut() {
        let nl = two_clusters();
        let fm = NetlistFm::new();
        for seed in 0..10 {
            let mut p = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(seed));
            let before = p.cut();
            let improvement = fm.pass(&nl, &mut p);
            assert_eq!(before - p.cut(), improvement);
            assert!(p.is_balanced(&nl));
        }
    }

    #[test]
    fn degenerate_nets_never_cut() {
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[]).unwrap();
        b.add_net(&[2]).unwrap();
        b.add_net(&[0, 1, 2, 3]).unwrap();
        let nl = b.build();
        let p = NetlistBisection::from_sides(&nl, vec![false, false, true, true]).unwrap();
        assert_eq!(p.cut(), 1); // only the 4-pin net spans
        let mut rng = StdRng::seed_from_u64(1);
        let q = NetlistFm::new().bisect(&nl, &mut rng);
        assert_eq!(q.cut(), q.recompute_cut(&nl));
    }

    #[test]
    fn tiny_netlists() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 0..3usize {
            let nl = NetlistBuilder::new(n).build();
            let p = NetlistFm::new().bisect(&nl, &mut rng);
            assert_eq!(p.cut(), 0);
        }
    }

    #[test]
    fn weighted_nets_and_cells() {
        let mut b = NetlistBuilder::new(4);
        b.add_weighted_net(&[0, 1], 10).unwrap();
        b.add_weighted_net(&[1, 2], 1).unwrap();
        b.add_weighted_net(&[2, 3], 10).unwrap();
        let nl = b.build();
        let mut rng = StdRng::seed_from_u64(2);
        let p = NetlistFm::new().bisect(&nl, &mut rng);
        // Optimal: cut the middle weight-1 net.
        assert_eq!(p.cut(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let _ = NetlistFm::new().with_max_passes(0);
    }

    #[test]
    fn rebalance_netlist_reaches_balance() {
        let nl = two_clusters();
        let mut p = NetlistBisection::from_sides(&nl, vec![false; 6]).unwrap();
        rebalance(&nl, &mut p);
        assert!(p.is_balanced(&nl));
        assert_eq!(p.cut(), p.recompute_cut(&nl));
    }

    #[test]
    fn compacted_fm_finds_the_bridge() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(4);
        let p = CompactedNetlistFm::new().bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 1);
        assert!(p.is_balanced(&nl));
    }

    #[test]
    fn compacted_fm_on_netless_cells() {
        let nl = NetlistBuilder::new(8).build();
        let mut rng = StdRng::seed_from_u64(4);
        let p = CompactedNetlistFm::new().bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 0);
        assert!(p.is_balanced(&nl));
    }

    #[test]
    fn compacted_fm_never_beats_brute_force() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let mut b = NetlistBuilder::new(10);
            for _ in 0..8 {
                let size = rng.gen_range(2..=4usize);
                let mut pins: Vec<u32> = (0..10).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..size]).unwrap();
            }
            let nl = b.build();
            let optimal = brute_force_cut(&nl);
            let p = CompactedNetlistFm::new().bisect(&nl, &mut StdRng::seed_from_u64(1));
            assert!(p.cut() >= optimal);
            assert!(p.is_balanced(&nl));
        }
    }

    #[test]
    fn multilevel_fm_finds_the_bridge() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(5);
        let p = MultilevelNetlistFm::new()
            .with_coarsest_size(3)
            .bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 1);
        assert!(p.is_balanced(&nl));
    }

    #[test]
    fn multilevel_fm_valid_on_random_netlists() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let mut b = NetlistBuilder::new(60);
            for _ in 0..80 {
                let size = rng.gen_range(2..=5usize);
                let mut pins: Vec<u32> = (0..60).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..size]).unwrap();
            }
            let nl = b.build();
            let p = MultilevelNetlistFm::new().bisect(&nl, &mut StdRng::seed_from_u64(3));
            assert!(p.is_balanced(&nl));
            assert_eq!(p.cut(), p.recompute_cut(&nl));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn multilevel_rejects_tiny_coarsest() {
        let _ = MultilevelNetlistFm::new().with_coarsest_size(1);
    }

    #[test]
    fn compacted_fm_competitive_on_clusters() {
        // Larger clustered netlist: compacted FM should match plain FM
        // or better on most seeds.
        let mut b = NetlistBuilder::new(40);
        let mut rng = StdRng::seed_from_u64(8);
        for cluster in 0..4 {
            let base = cluster * 10;
            for _ in 0..12 {
                let size = rng.gen_range(2..=4usize);
                let mut pins: Vec<u32> = (base..base + 10).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..size]).unwrap();
            }
        }
        b.add_net(&[9, 10]).unwrap();
        b.add_net(&[19, 20]).unwrap();
        b.add_net(&[29, 30]).unwrap();
        let nl = b.build();
        let mut fm_total = 0u64;
        let mut cfm_total = 0u64;
        for seed in 0..5 {
            fm_total += NetlistFm::new()
                .bisect(&nl, &mut StdRng::seed_from_u64(seed))
                .cut();
            cfm_total += CompactedNetlistFm::new()
                .bisect(&nl, &mut StdRng::seed_from_u64(seed))
                .cut();
        }
        assert!(
            cfm_total <= fm_total + 2,
            "compacted FM ({cfm_total}) should be competitive with FM ({fm_total})"
        );
    }
}
