//! The common interface of all bisection algorithms.
//!
//! A [`Bisector`] produces a balanced bisection of a graph from scratch;
//! a [`Refiner`] is a bisector that can also *improve a given starting
//! bisection* — the property the compaction heuristic exploits (§V step
//! 5: "use `(A, B)` as the starting configuration for the bisection
//! procedure on the original graph"). Kernighan-Lin and simulated
//! annealing are refiners; compacted and multilevel algorithms, and the
//! one-shot baselines (random, greedy, spectral, exact), are plain
//! bisectors.
//!
//! [`best_of`] reproduces the paper's evaluation protocol: run from `k`
//! independent random starts and keep the smallest cut ("all bisection
//! results reported here will be based on the best solution of the two
//! trials").

use bisect_graph::Graph;
use rand::RngCore;

use crate::partition::Bisection;
use crate::seed;
use crate::workspace::Workspace;

/// An algorithm that bisects a graph.
///
/// Implementations must return a *balanced* bisection (per
/// [`Bisection::is_balanced`]) whose maintained cut is consistent with
/// the graph.
pub trait Bisector {
    /// Human-readable name used in experiment tables (e.g. `"KL"`,
    /// `"CSA"`).
    fn name(&self) -> String;

    /// Computes a balanced bisection of `g`, drawing any randomness from
    /// `rng`.
    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection;

    /// As [`Bisector::bisect`], drawing scratch memory from `ws` so the
    /// hot path is allocation-free once the workspace is warm. The
    /// result is identical to `bisect` with the same rng state; the
    /// default implementation ignores the workspace.
    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        let _ = ws;
        self.bisect(g, rng)
    }

    /// As [`Bisector::bisect_in`], additionally reporting the
    /// algorithm's natural work count: productive passes for KL and FM,
    /// temperature steps for SA, the sum of both refinement stages for
    /// compacted wrappers. Algorithms with no pass notion report 0.
    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        (self.bisect_in(g, rng, ws), 0)
    }
}

/// A bisector that improves a supplied starting bisection (local
/// search). The default [`Bisector::bisect`] of a refiner starts from a
/// uniformly random balanced bisection, matching the paper's protocol.
pub trait Refiner: Bisector {
    /// Improves `init`, returning a bisection whose cut is no larger.
    /// The returned bisection preserves balance (implementations keep
    /// the side sizes of `init` or restore balance before returning).
    fn refine(&self, g: &Graph, init: Bisection, rng: &mut dyn RngCore) -> Bisection;

    /// As [`Refiner::refine`], drawing scratch memory from `ws` and
    /// reporting the work count (see [`Bisector::bisect_counted`]). The
    /// returned bisection is identical to `refine` with the same rng
    /// state; the default implementation ignores the workspace.
    fn refine_counted(
        &self,
        g: &Graph,
        init: Bisection,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let _ = ws;
        (self.refine(g, init, rng), 0)
    }

    /// Whether this refiner can consume a workspace gain cache that is
    /// already exact for `(g, init)` — via
    /// [`Refiner::refine_projected_counted`] — instead of rebuilding it
    /// O(V + E) itself. Multilevel drivers use this to project the
    /// cache through each uncoarsening step and skip the per-level
    /// rebuild. Default `false`.
    fn wants_projected_cache(&self) -> bool {
        false
    }

    /// As [`Refiner::refine_counted`], under the *projected-cache
    /// contract*: the caller guarantees `ws.gain_cache` is exact for
    /// `(g, init)` on entry, and the implementation leaves it exact for
    /// the bisection it returns. Only meaningful when
    /// [`Refiner::wants_projected_cache`] is `true`; the default
    /// delegates to `refine_counted` (which establishes its own cache
    /// state and makes no exit guarantee).
    fn refine_projected_counted(
        &self,
        g: &Graph,
        init: Bisection,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        self.refine_counted(g, init, rng, ws)
    }
}

/// Runs `bisector` from `starts` independent attempts and returns the
/// bisection with the smallest cut (ties: first found). The paper uses
/// `starts = 2`.
///
/// # Panics
///
/// Panics if `starts == 0`.
pub fn best_of<B: Bisector + ?Sized>(
    bisector: &B,
    g: &Graph,
    starts: usize,
    rng: &mut dyn RngCore,
) -> Bisection {
    assert!(starts > 0, "need at least one start");
    let mut best: Option<Bisection> = None;
    for _ in 0..starts {
        let candidate = bisector.bisect(g, rng);
        if best.as_ref().is_none_or(|b| candidate.cut() < b.cut()) {
            best = Some(candidate);
        }
    }
    // lint: allow(no-panic) — starts >= 1 is asserted by the caller contract above
    best.expect("at least one start ran")
}

/// The trivial bisector: a uniformly random balanced bisection with no
/// improvement. The baseline every heuristic must beat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomBisector;

impl RandomBisector {
    /// Creates the random bisector.
    pub fn new() -> RandomBisector {
        RandomBisector
    }
}

impl Bisector for RandomBisector {
    fn name(&self) -> String {
        "Random".into()
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        seed::random_balanced(g, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bisector_balanced() {
        let g = bisect_gen::special::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let p = RandomBisector::new().bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn best_of_improves_over_single() {
        let g = bisect_gen::special::cycle(20);
        let mut rng = StdRng::seed_from_u64(7);
        let single = RandomBisector::new().bisect(&g, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let best = best_of(&RandomBisector::new(), &g, 50, &mut rng);
        assert!(best.cut() <= single.cut());
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn best_of_zero_starts_panics() {
        let g = bisect_gen::special::cycle(6);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = best_of(&RandomBisector::new(), &g, 0, &mut rng);
    }

    #[test]
    fn bisector_is_object_safe() {
        let boxed: Box<dyn Bisector> = Box::new(RandomBisector::new());
        assert_eq!(boxed.name(), "Random");
        let g = bisect_gen::special::path(4);
        let mut rng = StdRng::seed_from_u64(1);
        let p = best_of(boxed.as_ref(), &g, 2, &mut rng);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn default_workspace_entry_points_match_bisect() {
        let g = bisect_gen::special::grid(4, 4);
        let mut ws = Workspace::new();
        let plain = RandomBisector::new().bisect(&g, &mut StdRng::seed_from_u64(5));
        let with_ws = RandomBisector::new().bisect_in(&g, &mut StdRng::seed_from_u64(5), &mut ws);
        let (counted, count) =
            RandomBisector::new().bisect_counted(&g, &mut StdRng::seed_from_u64(5), &mut ws);
        assert_eq!(plain, with_ws);
        assert_eq!(plain, counted);
        assert_eq!(count, 0);
    }
}
