//! The compaction heuristic (§V of the paper, from \[BCLS87\]) — the
//! paper's contribution. Wrapping Kernighan-Lin gives **CKL**, wrapping
//! simulated annealing gives **CSA**.
//!
//! Bisection using compaction works on a graph `G = (V, E)` as follows
//! (quoting the paper):
//!
//! 1. Form a maximum random matching `M` of the graph `G`.
//! 2. Form a new graph `G'` by contracting the edges in the random
//!    matching `M`.
//! 3. Run the bisection heuristic on `G'` to obtain the bisection
//!    `(A', B')`.
//! 4. Uncompact the edges to obtain the original graph and create an
//!    initial bisection `(A, B)` from `(A', B')`.
//! 5. Use `(A, B)` as the starting configuration for the bisection
//!    procedure on the original graph.
//!
//! Contraction roughly doubles the average degree, moving the instance
//! into the regime where KL and SA work well (Observation 1); the
//! projected bisection then gives the fine-level search a strong start.
//!
//! Two deviations from the letter of the paper, both required for
//! correctness on weighted coarse graphs: the coarse-level starting
//! bisection is balanced by vertex *weight* (so that step 4 projects to
//! a nearly vertex-balanced fine bisection), and the projected bisection
//! is explicitly rebalanced before step 5 (projection can be off by one
//! unit when the matching leaves singletons).

use bisect_graph::{contraction, matching, Graph};
use rand::RngCore;

use crate::bisector::{Bisector, Refiner};
use crate::partition::{rebalance, Bisection};
use crate::seed;
use crate::workspace::Workspace;

/// Which maximal matching the contraction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchingKind {
    /// Random vertex visiting order, random free neighbor (the paper's
    /// "maximum random matching").
    #[default]
    Random,
    /// Random vertex order, heaviest free neighbor (multilevel-style);
    /// for the `ablate-matching` benchmark.
    HeavyEdge,
    /// Random *edge* order greedy matching.
    EdgeOrder,
}

impl MatchingKind {
    fn run(self, g: &Graph, rng: &mut dyn RngCore) -> matching::Matching {
        match self {
            MatchingKind::Random => matching::random_maximal(g, rng),
            MatchingKind::HeavyEdge => matching::heavy_edge(g, rng),
            MatchingKind::EdgeOrder => matching::random_edge_order(g, rng),
        }
    }
}

/// The compaction wrapper: `Compacted::new(KernighanLin::new())` is the
/// paper's CKL, `Compacted::new(SimulatedAnnealing::new())` is CSA.
///
/// # Example
///
/// ```
/// use bisect_core::{bisector::Bisector, compaction::Compacted, kl::KernighanLin};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::binary_tree(62);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ckl = Compacted::new(KernighanLin::new());
/// assert_eq!(ckl.name(), "CKL");
/// let p = ckl.bisect(&g, &mut rng);
/// assert!(p.is_balanced(&g));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Compacted<B> {
    inner: B,
    matching_kind: MatchingKind,
}

impl<B: Refiner> Compacted<B> {
    /// Wraps `inner` with one level of compaction using the random
    /// maximal matching of the paper.
    pub fn new(inner: B) -> Compacted<B> {
        Compacted {
            inner,
            matching_kind: MatchingKind::default(),
        }
    }

    /// Selects a different matching strategy (for ablations).
    pub fn with_matching_kind(mut self, matching_kind: MatchingKind) -> Compacted<B> {
        self.matching_kind = matching_kind;
        self
    }

    /// The wrapped refiner.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Refiner> Compacted<B> {
    fn run(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> (Bisection, u64) {
        // Step 1: random maximal matching.
        let m = self.matching_kind.run(g, rng);
        if m.is_empty() {
            // Nothing to contract (edgeless or trivial graph).
            return self.inner.bisect_counted(g, rng, ws);
        }
        // Step 2: contract.
        let c = contraction::contract_matching(g, &m);
        let coarse = c.coarse();
        // Step 3: bisect G' (weight-balanced start, then the inner
        // heuristic).
        let coarse_init = seed::weight_balanced_random(coarse, rng);
        let (coarse_bisection, coarse_count) =
            self.inner.refine_counted(coarse, coarse_init, rng, ws);
        // Step 4: uncompact / project, restore exact balance.
        let mut projected = Bisection::from_sides(g, c.project_sides(coarse_bisection.sides()))
            .expect("projection has one side entry per fine vertex");
        rebalance(g, &mut projected);
        // Step 5: refine on the original graph from the projected start.
        let (refined, fine_count) = self.inner.refine_counted(g, projected, rng, ws);
        debug_assert!(refined.is_balanced(g));
        (refined, coarse_count + fine_count)
    }
}

impl<B: Refiner> Bisector for Compacted<B> {
    fn name(&self) -> String {
        format!("C{}", self.inner.name())
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.run(g, rng, &mut Workspace::new()).0
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        self.run(g, rng, ws).0
    }

    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        self.run(g, rng, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisector::best_of;
    use crate::kl::KernighanLin;
    use crate::sa::SimulatedAnnealing;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names() {
        assert_eq!(Compacted::new(KernighanLin::new()).name(), "CKL");
        assert_eq!(Compacted::new(SimulatedAnnealing::new()).name(), "CSA");
    }

    #[test]
    fn ckl_balanced_and_consistent() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let p = Compacted::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn csa_balanced_and_consistent() {
        let g = special::ladder(16);
        let mut rng = StdRng::seed_from_u64(2);
        let p = Compacted::new(SimulatedAnnealing::quick()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn edgeless_graph_falls_through() {
        let g = bisect_graph::Graph::empty(8);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Compacted::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert_eq!(p.cut(), 0);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn ckl_beats_kl_on_binary_tree() {
        // Observation 3: compaction improves KL by ~56% on binary
        // trees. Check CKL ≤ KL (best of 2 each) on a 254-node tree.
        let g = special::binary_tree(254);
        let mut rng = StdRng::seed_from_u64(1989);
        let kl = best_of(&KernighanLin::new(), &g, 2, &mut rng);
        let ckl = best_of(&Compacted::new(KernighanLin::new()), &g, 2, &mut rng);
        assert!(ckl.cut() <= kl.cut(), "CKL {} > KL {}", ckl.cut(), kl.cut());
    }

    #[test]
    fn ckl_near_optimal_on_sparse_planted_gbreg() {
        // Observation 2's regime: degree-3 Gbreg where plain heuristics
        // struggle. CKL should land close to the planted width.
        let params = bisect_gen::gbreg::GbregParams::new(300, 6, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let g = bisect_gen::gbreg::sample(&mut rng, &params).unwrap();
        let ckl = best_of(&Compacted::new(KernighanLin::new()), &g, 2, &mut rng);
        assert!(ckl.cut() <= 12, "CKL cut {} vs planted 6", ckl.cut());
    }

    #[test]
    fn matching_kinds_all_work() {
        let g = special::grid(6, 6);
        for kind in [
            MatchingKind::Random,
            MatchingKind::HeavyEdge,
            MatchingKind::EdgeOrder,
        ] {
            let mut rng = StdRng::seed_from_u64(4);
            let p = Compacted::new(KernighanLin::new())
                .with_matching_kind(kind)
                .bisect(&g, &mut rng);
            assert!(p.is_balanced(&g), "{kind:?}");
            assert_eq!(p.cut(), p.recompute_cut(&g), "{kind:?}");
        }
    }

    #[test]
    fn inner_accessor() {
        let ckl = Compacted::new(KernighanLin::new());
        assert_eq!(ckl.inner().name(), "KL");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = special::grid(6, 6);
        let ckl = Compacted::new(KernighanLin::new());
        let a = ckl.bisect(&g, &mut StdRng::seed_from_u64(5));
        let b = ckl.bisect(&g, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn odd_vertex_count_graph() {
        let g = special::binary_tree(31);
        let mut rng = StdRng::seed_from_u64(6);
        let p = Compacted::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.count_imbalance(), 1);
    }
}
