//! The compaction heuristic (§V of the paper, from \[BCLS87\]) — now a
//! thin, deprecated shim over the [`pipeline`](crate::pipeline) engine.
//!
//! `Compacted::new(KernighanLin::new())` (the paper's **CKL**) and
//! `Compacted::new(SimulatedAnnealing::new())` (**CSA**) delegate to
//! [`pipeline::engine::run`](crate::pipeline::engine::run) with one
//! level of coarsening and are bit-identical — same rng draws, same
//! bisection, same pass counts — to both the pre-pipeline
//! implementation and to [`Pipeline::compacted`]. New code should use
//! [`Pipeline::ckl`](crate::pipeline::Pipeline::ckl) /
//! [`Pipeline::csa`](crate::pipeline::Pipeline::csa) /
//! [`Pipeline::compacted`] directly.
//!
//! [`Pipeline::compacted`]: crate::pipeline::Pipeline::compacted

#![allow(deprecated)]

use bisect_graph::Graph;
use rand::RngCore;

use crate::bisector::{Bisector, Refiner};
use crate::partition::Bisection;
use crate::pipeline::{
    engine, CoarsenDepth, CoarsenScheme, EdgeOrderMatching, HeavyEdgeMatching, RandomMatching,
    WeightBalancedInit,
};
use crate::workspace::Workspace;

/// Which maximal matching the contraction uses.
#[deprecated(
    since = "0.2.0",
    note = "use a `pipeline::CoarsenScheme` (`RandomMatching`, `HeavyEdgeMatching`, `EdgeOrderMatching`) with `Pipeline::with_coarsener`"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchingKind {
    /// Random vertex visiting order, random free neighbor (the paper's
    /// "maximum random matching").
    #[default]
    Random,
    /// Random vertex order, heaviest free neighbor (multilevel-style);
    /// for the `ablate-matching` benchmark.
    HeavyEdge,
    /// Random *edge* order greedy matching.
    EdgeOrder,
}

impl MatchingKind {
    fn scheme(self) -> &'static dyn CoarsenScheme {
        match self {
            MatchingKind::Random => &RandomMatching,
            MatchingKind::HeavyEdge => &HeavyEdgeMatching,
            MatchingKind::EdgeOrder => &EdgeOrderMatching,
        }
    }
}

/// The compaction wrapper: `Compacted::new(KernighanLin::new())` is the
/// paper's CKL, `Compacted::new(SimulatedAnnealing::new())` is CSA.
///
/// Deprecated: this is now a shim over the pipeline engine; prefer
/// [`Pipeline::compacted`](crate::pipeline::Pipeline::compacted), which
/// produces bit-identical results.
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::ckl()`, `Pipeline::csa()`, or `Pipeline::compacted(refiner)` — bit-identical results"
)]
#[derive(Debug, Clone, PartialEq)]
pub struct Compacted<B> {
    inner: B,
    matching_kind: MatchingKind,
}

impl<B: Refiner> Compacted<B> {
    /// Wraps `inner` with one level of compaction using the random
    /// maximal matching of the paper.
    pub fn new(inner: B) -> Compacted<B> {
        Compacted {
            inner,
            matching_kind: MatchingKind::default(),
        }
    }

    /// Selects a different matching strategy (for ablations).
    pub fn with_matching_kind(mut self, matching_kind: MatchingKind) -> Compacted<B> {
        self.matching_kind = matching_kind;
        self
    }

    /// The wrapped refiner.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn run(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> (Bisection, u64) {
        engine::run(
            self.matching_kind.scheme(),
            CoarsenDepth::Levels(1),
            &WeightBalancedInit,
            &self.inner,
            g,
            rng,
            ws,
        )
        // lint: allow(no-panic) — the fixed stage list contains no fallible stage
        .expect("compaction stages are infallible")
    }
}

impl<B: Refiner> Bisector for Compacted<B> {
    fn name(&self) -> String {
        format!("C{}", self.inner.name())
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.run(g, rng, &mut Workspace::new()).0
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        self.run(g, rng, ws).0
    }

    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        self.run(g, rng, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisector::best_of;
    use crate::kl::KernighanLin;
    use crate::pipeline::Pipeline;
    use crate::sa::SimulatedAnnealing;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names() {
        assert_eq!(Compacted::new(KernighanLin::new()).name(), "CKL");
        assert_eq!(Compacted::new(SimulatedAnnealing::new()).name(), "CSA");
    }

    #[test]
    fn ckl_balanced_and_consistent() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let p = Compacted::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn csa_balanced_and_consistent() {
        let g = special::ladder(16);
        let mut rng = StdRng::seed_from_u64(2);
        let p = Compacted::new(SimulatedAnnealing::quick()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn edgeless_graph_falls_through() {
        let g = bisect_graph::Graph::empty(8);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Compacted::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert_eq!(p.cut(), 0);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn ckl_beats_kl_on_binary_tree() {
        // Observation 3: compaction improves KL by ~56% on binary
        // trees. Check CKL ≤ KL (best of 2 each) on a 254-node tree.
        let g = special::binary_tree(254);
        let mut rng = StdRng::seed_from_u64(1989);
        let kl = best_of(&KernighanLin::new(), &g, 2, &mut rng);
        let ckl = best_of(&Compacted::new(KernighanLin::new()), &g, 2, &mut rng);
        assert!(ckl.cut() <= kl.cut(), "CKL {} > KL {}", ckl.cut(), kl.cut());
    }

    #[test]
    fn ckl_near_optimal_on_sparse_planted_gbreg() {
        // Observation 2's regime: degree-3 Gbreg where plain heuristics
        // struggle. CKL should land close to the planted width.
        let params = bisect_gen::gbreg::GbregParams::new(300, 6, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let g = bisect_gen::gbreg::sample(&mut rng, &params).unwrap();
        let ckl = best_of(&Compacted::new(KernighanLin::new()), &g, 2, &mut rng);
        assert!(ckl.cut() <= 12, "CKL cut {} vs planted 6", ckl.cut());
    }

    #[test]
    fn shim_is_bit_identical_to_pipeline_ckl() {
        let g = special::grid(8, 8);
        let mut ws = Workspace::new();
        let legacy = Compacted::new(KernighanLin::new()).bisect_counted(
            &g,
            &mut StdRng::seed_from_u64(77),
            &mut ws,
        );
        let piped = Pipeline::ckl().bisect_counted(&g, &mut StdRng::seed_from_u64(77), &mut ws);
        assert_eq!(legacy, piped);
    }

    #[test]
    fn matching_kinds_all_work() {
        let g = special::grid(6, 6);
        for kind in [
            MatchingKind::Random,
            MatchingKind::HeavyEdge,
            MatchingKind::EdgeOrder,
        ] {
            let mut rng = StdRng::seed_from_u64(4);
            let p = Compacted::new(KernighanLin::new())
                .with_matching_kind(kind)
                .bisect(&g, &mut rng);
            assert!(p.is_balanced(&g), "{kind:?}");
            assert_eq!(p.cut(), p.recompute_cut(&g), "{kind:?}");
        }
    }

    #[test]
    fn inner_accessor() {
        let ckl = Compacted::new(KernighanLin::new());
        assert_eq!(ckl.inner().name(), "KL");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = special::grid(6, 6);
        let ckl = Compacted::new(KernighanLin::new());
        let a = ckl.bisect(&g, &mut StdRng::seed_from_u64(5));
        let b = ckl.bisect(&g, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn odd_vertex_count_graph() {
        let g = special::binary_tree(31);
        let mut rng = StdRng::seed_from_u64(6);
        let p = Compacted::new(KernighanLin::new()).bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.count_imbalance(), 1);
    }
}
