//! The derived quantities the paper's tables report.
//!
//! The appendix columns are: the cut found by the standard and
//! compacted algorithms, the relative cut improvement
//! `(b_x − b_cx)/b_x × 100`, and the relative speedup
//! `(t_woc − t_c)/t_woc × 100` ("Rel. speed up" — positive when the
//! compacted variant is *faster*).

use std::time::Duration;

/// Relative cut improvement of `compacted` over `standard`, in percent:
/// `(standard − compacted) / standard × 100`, the paper's
/// `(b_x − b_cx)/b_x × 100`. Zero when `standard` is zero (both found a
/// perfect cut) — the paper leaves those entries blank.
pub fn cut_improvement_percent(standard: u64, compacted: u64) -> f64 {
    if standard == 0 {
        0.0
    } else {
        (standard as f64 - compacted as f64) / standard as f64 * 100.0
    }
}

/// Relative speedup of `with_compaction` over `without_compaction`, in
/// percent: `(t_woc − t_c)/t_woc × 100`. Positive when compaction is
/// faster, negative when it is slower. Zero when the baseline time is
/// zero.
pub fn relative_speedup_percent(without_compaction: Duration, with_compaction: Duration) -> f64 {
    let t_woc = without_compaction.as_secs_f64();
    if t_woc == 0.0 {
        0.0
    } else {
        (t_woc - with_compaction.as_secs_f64()) / t_woc * 100.0
    }
}

/// Ratio `found / expected` of a cut against the planted bisection
/// width — Observation 1 reports cuts "twenty to fifty times larger
/// than the expected bisections". `None` when `expected` is zero.
pub fn cut_ratio(found: u64, expected: u64) -> Option<f64> {
    (expected != 0).then(|| found as f64 / expected as f64)
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation; 0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_basic() {
        assert_eq!(cut_improvement_percent(100, 10), 90.0);
        assert_eq!(cut_improvement_percent(50, 50), 0.0);
        assert_eq!(cut_improvement_percent(10, 20), -100.0);
    }

    #[test]
    fn improvement_zero_standard() {
        assert_eq!(cut_improvement_percent(0, 0), 0.0);
        assert_eq!(cut_improvement_percent(0, 5), 0.0);
    }

    #[test]
    fn speedup_signs() {
        let fast = Duration::from_millis(50);
        let slow = Duration::from_millis(100);
        assert_eq!(relative_speedup_percent(slow, fast), 50.0);
        assert_eq!(relative_speedup_percent(fast, slow), -100.0);
        assert_eq!(relative_speedup_percent(Duration::ZERO, fast), 0.0);
    }

    #[test]
    fn ratio() {
        assert_eq!(cut_ratio(100, 4), Some(25.0));
        assert_eq!(cut_ratio(4, 4), Some(1.0));
        assert_eq!(cut_ratio(3, 0), None);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
