//! Greedy region-growing bisection — a cheap constructive baseline.
//!
//! Grows side A as a breadth-first ball from a random start vertex
//! until it holds half the vertices, optionally retrying several random
//! roots and keeping the best. On "geometric" graphs (grids, ladders,
//! paths) this is hard to beat; on expanders it is poor — a useful
//! contrast to the local-search heuristics.

use bisect_graph::Graph;
use rand::RngCore;

use crate::bisector::Bisector;
use crate::partition::Bisection;
use crate::seed;

/// BFS region-growing bisector.
///
/// # Example
///
/// ```
/// use bisect_core::{bisector::Bisector, greedy::GreedyGrowth};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::path(20);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = GreedyGrowth::new().bisect(&g, &mut rng);
/// assert!(p.cut() <= 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyGrowth {
    attempts: usize,
}

impl Default for GreedyGrowth {
    fn default() -> GreedyGrowth {
        GreedyGrowth::new()
    }
}

impl GreedyGrowth {
    /// Greedy growth with 4 random roots.
    pub fn new() -> GreedyGrowth {
        GreedyGrowth { attempts: 4 }
    }

    /// Sets the number of random roots tried.
    ///
    /// # Panics
    ///
    /// Panics if `attempts == 0`.
    pub fn with_attempts(mut self, attempts: usize) -> GreedyGrowth {
        assert!(attempts > 0, "need at least one attempt");
        self.attempts = attempts;
        self
    }
}

impl Bisector for GreedyGrowth {
    fn name(&self) -> String {
        "Greedy".into()
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        let mut best: Option<Bisection> = None;
        for _ in 0..self.attempts {
            let candidate = seed::bfs_balanced(g, rng);
            if best.as_ref().is_none_or(|b| candidate.cut() < b.cut()) {
                best = Some(candidate);
            }
        }
        // lint: allow(no-panic) — attempts is validated >= 1 at construction
        best.expect("attempts >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn optimal_on_path() {
        let g = special::path(30);
        let mut rng = StdRng::seed_from_u64(0);
        let p = GreedyGrowth::new().bisect(&g, &mut rng);
        assert!(p.cut() <= 2);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn good_on_grid() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let p = GreedyGrowth::new().with_attempts(8).bisect(&g, &mut rng);
        // A BFS ball on a grid cuts O(perimeter); allow some slack.
        assert!(p.cut() <= 24, "cut {}", p.cut());
    }

    #[test]
    fn zero_cut_on_disconnected_cycles() {
        let g = special::cycle_collection(4, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let p = GreedyGrowth::new().bisect(&g, &mut rng);
        assert_eq!(p.cut(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = GreedyGrowth::new().with_attempts(0);
    }

    #[test]
    fn name() {
        assert_eq!(GreedyGrowth::new().name(), "Greedy");
    }
}
