//! Spectral bisection via the Fiedler vector — an extension baseline.
//!
//! The second-smallest eigenvector of the graph Laplacian `L = D − A`
//! (the Fiedler vector) orders vertices along the graph's "softest"
//! direction; splitting at the median yields a balanced bisection. This
//! technique (Donath-Hoffman / Fiedler, popularized for partitioning by
//! Pothen-Simon-Liou 1990) is the other classical family of bisection
//! algorithms contemporary with the paper, included for comparison in
//! the harness.
//!
//! The Fiedler vector is computed without any linear-algebra
//! dependency, by power iteration on the spectrally shifted operator
//! `M = c·I − L` (`c = 1 + max weighted degree`, making `M` positive
//! semidefinite with the Fiedler vector as its second-largest
//! eigenvector) while deflating the all-ones eigenvector.

use bisect_graph::{Graph, VertexId};
use rand::{Rng, RngCore};

use crate::bisector::Bisector;
use crate::partition::{rebalance, Bisection};

/// Fiedler-vector bisector.
///
/// # Example
///
/// ```
/// use bisect_core::{bisector::Bisector, spectral::SpectralBisector};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::grid(8, 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let p = SpectralBisector::new().bisect(&g, &mut rng);
/// assert!(p.is_balanced(&g));
/// assert!(p.cut() <= 12); // spectral is near optimal on grids
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralBisector {
    iterations: usize,
}

impl Default for SpectralBisector {
    fn default() -> SpectralBisector {
        SpectralBisector::new()
    }
}

impl SpectralBisector {
    /// Spectral bisection with 300 power iterations.
    pub fn new() -> SpectralBisector {
        SpectralBisector { iterations: 300 }
    }

    /// Sets the number of power iterations.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    pub fn with_iterations(mut self, iterations: usize) -> SpectralBisector {
        assert!(iterations > 0, "need at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Computes an approximate Fiedler vector of `g`.
    pub fn fiedler_vector(&self, g: &Graph, rng: &mut dyn RngCore) -> Vec<f64> {
        let n = g.num_vertices();
        if n == 0 {
            return Vec::new();
        }
        let shift = 1.0
            + g.vertices()
                .map(|v| g.weighted_degree(v))
                .max()
                .unwrap_or(0) as f64
                * 2.0;
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mut y = vec![0.0f64; n];
        for _ in 0..self.iterations {
            deflate_ones(&mut x);
            normalize(&mut x);
            // y = (shift·I − L)·x = shift·x − D·x + A·x.
            for v in 0..n {
                let vid = v as VertexId;
                let mut acc = (shift - g.weighted_degree(vid) as f64) * x[v];
                for (u, w) in g.neighbors_weighted(vid) {
                    acc += w as f64 * x[u as usize];
                }
                y[v] = acc;
            }
            std::mem::swap(&mut x, &mut y);
        }
        deflate_ones(&mut x);
        normalize(&mut x);
        x
    }
}

fn deflate_ones(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for value in x.iter_mut() {
        *value -= mean;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for value in x.iter_mut() {
            *value /= norm;
        }
    }
}

impl Bisector for SpectralBisector {
    fn name(&self) -> String {
        "Spectral".into()
    }

    // lint: allow(no-panic) — the empty assignment is balanced for n = 0,
    // and otherwise side has n entries with exactly ⌈n/2⌉ on side A.
    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        let n = g.num_vertices();
        if n == 0 {
            return Bisection::from_sides(g, Vec::new()).expect("empty ok");
        }
        let fiedler = self.fiedler_vector(g, rng);
        // Side A = the ⌈n/2⌉ vertices with smallest Fiedler value.
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by(|&a, &b| {
            fiedler[a as usize]
                .partial_cmp(&fiedler[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut side = vec![true; n];
        for &v in order.iter().take(n.div_ceil(2)) {
            side[v as usize] = false;
        }
        let mut p = Bisection::from_sides(g, side).expect("side vector correct length");
        rebalance(g, &mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fiedler_vector_orthogonal_to_ones_and_unit() {
        let g = special::grid(5, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let f = SpectralBisector::new().fiedler_vector(&g, &mut rng);
        let sum: f64 = f.iter().sum();
        let norm: f64 = f.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(sum.abs() < 1e-9, "sum {sum}");
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn fiedler_splits_path_monotonically() {
        // On a path the Fiedler vector is monotone (a cosine), so the
        // two median halves are the two ends.
        let g = special::path(12);
        let mut rng = StdRng::seed_from_u64(2);
        let p = SpectralBisector::new().bisect(&g, &mut rng);
        assert_eq!(p.cut(), 1, "spectral must find the optimal path cut");
    }

    #[test]
    fn near_optimal_on_grid() {
        let g = special::grid(10, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let p = SpectralBisector::new().bisect(&g, &mut rng);
        assert!(p.cut() <= 14, "cut {}", p.cut());
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn good_on_planted_partition() {
        let params = bisect_gen::g2set::G2setParams::with_average_degree(200, 6.0, 10).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let g = bisect_gen::g2set::sample(&mut rng, &params);
        let p = SpectralBisector::new().bisect(&g, &mut rng);
        assert!(p.cut() <= 40, "cut {} vs planted 10", p.cut());
    }

    #[test]
    fn handles_disconnected_graph() {
        let g = special::cycle_collection(2, 6);
        let mut rng = StdRng::seed_from_u64(5);
        let p = SpectralBisector::new().bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        // Fiedler value separates the two components: cut 0.
        assert_eq!(p.cut(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = bisect_graph::Graph::empty(0);
        let mut rng = StdRng::seed_from_u64(5);
        let p = SpectralBisector::new().bisect(&g, &mut rng);
        assert_eq!(p.cut(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = SpectralBisector::new().with_iterations(0);
    }
}
