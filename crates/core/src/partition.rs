//! The bisection (two-way partition) type shared by every heuristic.
//!
//! A [`Bisection`] assigns each vertex a side (`A` = `false`, `B` =
//! `true`) and incrementally maintains the cut weight, the vertex count
//! and vertex weight of each side. The *gain* of a vertex — how much the
//! cut would shrink if it switched sides — is the paper's `g_v`
//! (§III): the number of edges to the other side minus the number of
//! edges to its own side, weighted.

use bisect_graph::{EdgeWeight, Graph, VertexId, VertexWeight};

use crate::gain_cache::GainCache;

/// The two sides of a bisection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first side (`false` in raw side vectors); the paper's `V₁`.
    A,
    /// The second side (`true` in raw side vectors); the paper's `V₂`.
    B,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }

    /// `0` for A, `1` for B — for indexing per-side arrays.
    pub fn index(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }

    fn from_bool(b: bool) -> Side {
        if b {
            Side::B
        } else {
            Side::A
        }
    }

    fn as_bool(self) -> bool {
        matches!(self, Side::B)
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::A => write!(f, "A"),
            Side::B => write!(f, "B"),
        }
    }
}

/// A two-way partition of a graph's vertices with incrementally
/// maintained cut weight and side weights.
///
/// All mutating operations take the graph as an argument (the bisection
/// does not own or borrow it); callers must pass the same graph the
/// bisection was created for — this is checked cheaply by vertex count.
///
/// # Example
///
/// ```
/// use bisect_core::partition::{Bisection, Side};
/// use bisect_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let mut p = Bisection::from_sides(&g, vec![false, false, true, true]).unwrap();
/// assert_eq!(p.cut(), 1); // only edge (1,2) crosses
/// assert_eq!(p.gain(&g, 0), -1);
/// p.move_vertex(&g, 1); // (0,1) starts crossing, (1,2) stops: cut stays 1
/// assert_eq!(p.cut(), 1);
/// assert_eq!(p.side(1), Side::B);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bisection {
    side: Vec<bool>,
    cut: EdgeWeight,
    counts: [usize; 2],
    weights: [VertexWeight; 2],
}

/// Error returned when a side vector does not match the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SideLengthError {
    /// Length supplied.
    pub got: usize,
    /// Length required (the graph's vertex count).
    pub expected: usize,
}

impl std::fmt::Display for SideLengthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "side vector has length {}, graph has {} vertices",
            self.got, self.expected
        )
    }
}

impl std::error::Error for SideLengthError {}

impl Bisection {
    /// Creates a bisection from a raw side vector (`false` = side A).
    ///
    /// # Errors
    ///
    /// Returns [`SideLengthError`] if `side.len()` differs from the
    /// graph's vertex count.
    pub fn from_sides(g: &Graph, side: Vec<bool>) -> Result<Bisection, SideLengthError> {
        if side.len() != g.num_vertices() {
            return Err(SideLengthError {
                got: side.len(),
                expected: g.num_vertices(),
            });
        }
        let mut counts = [0usize; 2];
        let mut weights = [0 as VertexWeight; 2];
        for v in g.vertices() {
            let s = side[v as usize] as usize;
            counts[s] += 1;
            weights[s] += g.vertex_weight(v);
        }
        let cut = compute_cut(g, &side);
        Ok(Bisection {
            side,
            cut,
            counts,
            weights,
        })
    }

    /// As [`Bisection::from_sides`], with the cut supplied by the
    /// caller instead of recomputed — O(V) instead of O(V + E). For
    /// callers that provably know the cut already, e.g. projecting a
    /// coarse bisection through a contraction (projection preserves the
    /// cut exactly). The claimed cut is verified in debug builds.
    ///
    /// # Errors
    ///
    /// Returns [`SideLengthError`] when `side.len()` does not match the
    /// graph's vertex count.
    pub fn from_sides_with_cut(
        g: &Graph,
        side: Vec<bool>,
        cut: EdgeWeight,
    ) -> Result<Bisection, SideLengthError> {
        if side.len() != g.num_vertices() {
            return Err(SideLengthError {
                got: side.len(),
                expected: g.num_vertices(),
            });
        }
        let mut counts = [0usize; 2];
        let mut weights = [0 as VertexWeight; 2];
        for v in g.vertices() {
            let s = side[v as usize] as usize;
            counts[s] += 1;
            weights[s] += g.vertex_weight(v);
        }
        debug_assert_eq!(cut, compute_cut(g, &side), "caller-supplied cut is wrong");
        Ok(Bisection {
            side,
            cut,
            counts,
            weights,
        })
    }

    /// The canonical planted bisection: vertices `0..n/2` on side A.
    /// For `Gbreg`/`G2set` instances this is the planted partition.
    pub fn planted(g: &Graph) -> Bisection {
        let n = g.num_vertices();
        let side: Vec<bool> = (0..n).map(|v| v >= n / 2).collect();
        // lint: allow(no-panic) — side was built with one entry per vertex, halves exact
        Bisection::from_sides(g, side).expect("side vector has correct length")
    }

    /// The side of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn side(&self, v: VertexId) -> Side {
        Side::from_bool(self.side[v as usize])
    }

    /// The raw side vector (`false` = A, `true` = B).
    pub fn sides(&self) -> &[bool] {
        &self.side
    }

    /// Consumes the bisection and returns the raw side vector.
    pub fn into_sides(self) -> Vec<bool> {
        self.side
    }

    /// The maintained cut weight (number of crossing edges for
    /// unit-weight graphs).
    #[inline]
    pub fn cut(&self) -> EdgeWeight {
        self.cut
    }

    /// Number of vertices on the given side.
    pub fn count(&self, side: Side) -> usize {
        self.counts[side.index()]
    }

    /// Total vertex weight of the given side.
    pub fn weight(&self, side: Side) -> VertexWeight {
        self.weights[side.index()]
    }

    /// Absolute difference of the side vertex *counts*.
    pub fn count_imbalance(&self) -> usize {
        self.counts[0].abs_diff(self.counts[1])
    }

    /// Absolute difference of the side vertex *weights*.
    pub fn weight_imbalance(&self) -> VertexWeight {
        self.weights[0].abs_diff(self.weights[1])
    }

    /// Whether the bisection is balanced: side weights differ by at most
    /// the parity remainder for unit-weight graphs (`total % 2`), or by
    /// at most the largest vertex weight for weighted (contracted)
    /// graphs, where exact balance may be unattainable.
    pub fn is_balanced(&self, g: &Graph) -> bool {
        let tolerance = if g.is_unit_weighted() {
            g.total_vertex_weight() % 2
        } else {
            g.vertices().map(|v| g.vertex_weight(v)).max().unwrap_or(0)
        };
        self.weight_imbalance() <= tolerance
    }

    /// The gain `g_v` of moving `v` to the other side: (weight of edges
    /// to the other side) − (weight of edges to its own side). Positive
    /// gains shrink the cut.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for `g` or the graph does not match
    /// the bisection.
    pub fn gain(&self, g: &Graph, v: VertexId) -> i64 {
        self.assert_graph(g);
        let my_side = self.side[v as usize];
        let mut gain = 0i64;
        for (u, w) in g.neighbors_weighted(v) {
            if self.side[u as usize] == my_side {
                gain -= w as i64;
            } else {
                gain += w as i64;
            }
        }
        gain
    }

    /// The paper's pair gain `g_ab = g_a + g_b − 2δ(a, b)`: the cut
    /// reduction from swapping `a` and `b`, which must be on opposite
    /// sides.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are on the same side or out of range.
    pub fn swap_gain(&self, g: &Graph, a: VertexId, b: VertexId) -> i64 {
        assert_ne!(
            self.side[a as usize], self.side[b as usize],
            "swap_gain requires vertices on opposite sides"
        );
        let delta = g.edge_weight(a, b).unwrap_or(0) as i64;
        self.gain(g, a) + self.gain(g, b) - 2 * delta
    }

    /// Moves `v` to the other side, updating cut and side weights in
    /// `O(degree(v))`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or the graph does not match.
    pub fn move_vertex(&mut self, g: &Graph, v: VertexId) {
        let gain = self.gain(g, v);
        self.move_vertex_with_gain(g, v, gain);
    }

    /// As [`Bisection::move_vertex`], but with the vertex's current
    /// gain supplied by the caller — `O(1)` instead of an `O(degree)`
    /// adjacency walk. `gain` must equal [`Bisection::gain`] for `v`
    /// at the time of the call, e.g. read from an up-to-date
    /// [`crate::gain_cache::GainCache`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; debug builds panic if `gain` is
    /// stale.
    pub fn move_vertex_with_gain(&mut self, g: &Graph, v: VertexId, gain: i64) {
        debug_assert_eq!(gain, self.gain(g, v), "stale gain for vertex {v}");
        let old = self.side[v as usize] as usize;
        let new = 1 - old;
        self.side[v as usize] = !self.side[v as usize];
        self.counts[old] -= 1;
        self.counts[new] += 1;
        let w = g.vertex_weight(v);
        self.weights[old] -= w;
        self.weights[new] += w;
        self.cut = apply_gain(self.cut, gain);
    }

    /// Swaps two vertices on opposite sides, preserving side counts.
    ///
    /// # Panics
    ///
    /// Panics if the vertices are on the same side or out of range.
    pub fn swap(&mut self, g: &Graph, a: VertexId, b: VertexId) {
        let gain = self.swap_gain(g, a, b);
        let sa = self.side[a as usize] as usize;
        let sb = 1 - sa;
        self.side[a as usize] = !self.side[a as usize];
        self.side[b as usize] = !self.side[b as usize];
        let (wa, wb) = (g.vertex_weight(a), g.vertex_weight(b));
        self.weights[sa] -= wa;
        self.weights[sb] += wa;
        self.weights[sb] -= wb;
        self.weights[sa] += wb;
        self.cut = apply_gain(self.cut, gain);
    }

    /// Recomputes the cut from scratch — used by tests and debug
    /// assertions to validate the incremental bookkeeping.
    pub fn recompute_cut(&self, g: &Graph) -> EdgeWeight {
        compute_cut(g, &self.side)
    }

    /// The edges crossing the bisection, as `(u, v, weight)` with
    /// `u < v` in lexicographic order — e.g. the wires crossing the cut
    /// line in a placement.
    ///
    /// # Panics
    ///
    /// Panics if the graph does not match the bisection.
    pub fn crossing_edges(&self, g: &Graph) -> Vec<(VertexId, VertexId, EdgeWeight)> {
        self.assert_graph(g);
        g.edges()
            .filter(|&(u, v, _)| self.side[u as usize] != self.side[v as usize])
            .collect()
    }

    /// Vertices on the given side, in increasing id order.
    pub fn members(&self, side: Side) -> Vec<VertexId> {
        // lint: allow(zero-alloc) — allocating convenience API; inner
        // loops use members_into, and the only hot-entry route here is
        // the end-of-run rebalance fallback.
        let mut out = Vec::new();
        self.members_into(side, &mut out);
        out
    }

    /// As [`Bisection::members`], writing into a caller-supplied buffer
    /// (cleared first) so hot paths can reuse its allocation.
    pub fn members_into(&self, side: Side, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(
            self.side
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s == side.as_bool())
                .map(|(v, _)| v as VertexId),
        );
    }

    /// Overwrites `self` with the contents of `other`, reusing the side
    /// buffer — allocation-free once capacities match, unlike the
    /// derived `Clone`. The two bisections need not belong to the same
    /// graph.
    pub fn copy_from(&mut self, other: &Bisection) {
        self.side.clone_from(&other.side);
        self.cut = other.cut;
        self.counts = other.counts;
        self.weights = other.weights;
    }

    fn assert_graph(&self, g: &Graph) {
        assert_eq!(
            self.side.len(),
            g.num_vertices(),
            "bisection does not belong to this graph"
        );
    }
}

fn compute_cut(g: &Graph, side: &[bool]) -> EdgeWeight {
    g.edges()
        .filter(|&(u, v, _)| side[u as usize] != side[v as usize])
        .map(|(_, _, w)| w)
        .sum()
}

fn apply_gain(cut: EdgeWeight, gain: i64) -> EdgeWeight {
    if gain >= 0 {
        cut.checked_sub(gain as u64)
            // lint: allow(no-panic) — a positive gain is a sum of currently-cut edge weights
            .expect("gain cannot exceed the cut")
    } else {
        cut + (-gain) as u64
    }
}

/// Moves minimum-damage vertices from the heavier side to the lighter
/// side until the bisection is balanced (per
/// [`Bisection::is_balanced`]). Each step moves the vertex with the
/// best gain among the heavy side; used after projecting a coarse
/// bisection back to the fine graph, where weight-balance may not
/// project exactly.
pub fn rebalance(g: &Graph, p: &mut Bisection) {
    while !p.is_balanced(g) {
        let heavy = if p.weight(Side::A) > p.weight(Side::B) {
            Side::A
        } else {
            Side::B
        };
        let imbalance = p.weight_imbalance();
        // Among vertices whose move strictly reduces the imbalance
        // (weight < imbalance), pick the best gain; such a vertex
        // always exists because the heavy side holds more than half the
        // total weight while every single weight is at most half of it
        // in any graph where is_balanced can fail.
        let candidate = p
            .members(heavy)
            .into_iter()
            .filter(|&v| 2 * g.vertex_weight(v) < 2 * imbalance)
            .max_by_key(|&v| (p.gain(g, v), std::cmp::Reverse(v)));
        match candidate {
            Some(v) => p.move_vertex(g, v),
            None => {
                // Every heavy-side weight is >= the imbalance; moving
                // the one minimizing the resulting imbalance is the
                // best achievable, after which we stop.
                let v = p
                    .members(heavy)
                    .into_iter()
                    .min_by_key(|&v| (2 * g.vertex_weight(v)).abs_diff(imbalance))
                    // lint: allow(no-panic) — imbalance > 0 implies the heavy side has members
                    .expect("heavier side is nonempty");
                if (2 * g.vertex_weight(v)).abs_diff(imbalance) < imbalance {
                    p.move_vertex(g, v);
                }
                return;
            }
        }
    }
}

/// [`rebalance`], but selecting over `cache.members` with cached O(1)
/// gains instead of materializing member lists and paying an O(deg)
/// gain walk per candidate, and keeping `cache` exact across the moves
/// it makes. Picks the same vertices as [`rebalance`]: both selection
/// keys are made injective (ties broken toward the smaller vertex id),
/// so the unspecified order of `cache.members` cannot change the
/// outcome.
///
/// `cache` must be exact for `(g, p)` on entry; it is exact for the
/// rebalanced `p` on exit.
pub fn rebalance_with_cache(g: &Graph, p: &mut Bisection, cache: &mut GainCache) {
    while !p.is_balanced(g) {
        let heavy = if p.weight(Side::A) > p.weight(Side::B) {
            Side::A
        } else {
            Side::B
        };
        let imbalance = p.weight_imbalance();
        let candidate = cache
            .members(heavy)
            .iter()
            .copied()
            .filter(|&v| 2 * g.vertex_weight(v) < 2 * imbalance)
            .max_by_key(|&v| (cache.gain(v), std::cmp::Reverse(v)));
        match candidate {
            Some(v) => {
                let gain = cache.gain(v);
                cache.record_move(g, p, v);
                p.move_vertex_with_gain(g, v, gain);
            }
            None => {
                let v = cache
                    .members(heavy)
                    .iter()
                    .copied()
                    .min_by_key(|&v| ((2 * g.vertex_weight(v)).abs_diff(imbalance), v))
                    // lint: allow(no-panic) — imbalance > 0 implies the heavy side has members
                    .expect("heavier side is nonempty");
                if (2 * g.vertex_weight(v)).abs_diff(imbalance) < imbalance {
                    let gain = cache.gain(v);
                    cache.record_move(g, p, v);
                    p.move_vertex_with_gain(g, v, gain);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_graph::GraphBuilder;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn side_helpers() {
        assert_eq!(Side::A.other(), Side::B);
        assert_eq!(Side::B.other(), Side::A);
        assert_eq!(Side::A.index(), 0);
        assert_eq!(Side::B.index(), 1);
        assert_eq!(Side::A.to_string(), "A");
        assert_eq!(Side::B.to_string(), "B");
    }

    #[test]
    fn from_sides_computes_cut_and_weights() {
        let g = path4();
        let p = Bisection::from_sides(&g, vec![false, true, false, true]).unwrap();
        assert_eq!(p.cut(), 3);
        assert_eq!(p.count(Side::A), 2);
        assert_eq!(p.weight(Side::B), 2);
        assert_eq!(p.count_imbalance(), 0);
    }

    #[test]
    fn from_sides_rejects_wrong_length() {
        let g = path4();
        let err = Bisection::from_sides(&g, vec![false; 3]).unwrap_err();
        assert_eq!(
            err,
            SideLengthError {
                got: 3,
                expected: 4
            }
        );
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn planted_splits_first_half() {
        let g = path4();
        let p = Bisection::planted(&g);
        assert_eq!(p.side(0), Side::A);
        assert_eq!(p.side(1), Side::A);
        assert_eq!(p.side(2), Side::B);
        assert_eq!(p.cut(), 1);
    }

    #[test]
    fn gain_matches_definition() {
        let g = path4();
        let p = Bisection::planted(&g); // A = {0,1}, B = {2,3}
        assert_eq!(p.gain(&g, 0), -1); // one internal edge
        assert_eq!(p.gain(&g, 1), 0); // one internal, one external
        assert_eq!(p.gain(&g, 2), 0);
        assert_eq!(p.gain(&g, 3), -1);
    }

    #[test]
    fn move_vertex_updates_everything() {
        let g = path4();
        let mut p = Bisection::planted(&g);
        p.move_vertex(&g, 1);
        assert_eq!(p.side(1), Side::B);
        assert_eq!(p.cut(), p.recompute_cut(&g));
        assert_eq!(p.cut(), 1);
        assert_eq!(p.count(Side::A), 1);
        assert_eq!(p.count(Side::B), 3);
        p.move_vertex(&g, 1); // move back
        assert_eq!(p.cut(), 1);
        assert_eq!(p.count_imbalance(), 0);
    }

    #[test]
    fn swap_preserves_counts() {
        let g = path4();
        let mut p = Bisection::planted(&g);
        p.swap(&g, 1, 2);
        assert_eq!(p.count(Side::A), 2);
        assert_eq!(p.cut(), p.recompute_cut(&g));
        assert_eq!(p.side(1), Side::B);
        assert_eq!(p.side(2), Side::A);
    }

    #[test]
    #[should_panic(expected = "opposite sides")]
    fn swap_same_side_panics() {
        let g = path4();
        let mut p = Bisection::planted(&g);
        p.swap(&g, 0, 1);
    }

    #[test]
    fn swap_gain_includes_edge_correction() {
        let g = path4();
        let p = Bisection::planted(&g);
        // Swapping 1 and 2 (adjacent, both gain 0): g_ab = 0+0-2 = -2.
        assert_eq!(p.swap_gain(&g, 1, 2), -2);
        // Swapping 0 and 3 (not adjacent, both gain -1): -2.
        assert_eq!(p.swap_gain(&g, 0, 3), -2);
        // Swapping 0 and 2: -1 + 0 - 0 = -1.
        assert_eq!(p.swap_gain(&g, 0, 2), -1);
    }

    #[test]
    fn incremental_cut_matches_recompute_after_many_moves() {
        let g = bisect_gen::special::grid(5, 5);
        let mut p = Bisection::planted(&g);
        for v in [0u32, 7, 3, 24, 7, 12, 0, 18] {
            p.move_vertex(&g, v);
            assert_eq!(p.cut(), p.recompute_cut(&g), "after moving {v}");
        }
    }

    #[test]
    fn balance_even_unit_graph() {
        let g = path4();
        let p = Bisection::planted(&g);
        assert!(p.is_balanced(&g));
        let q = Bisection::from_sides(&g, vec![false, false, false, true]).unwrap();
        assert!(!q.is_balanced(&g));
    }

    #[test]
    fn balance_odd_unit_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let p = Bisection::from_sides(&g, vec![false, false, false, true, true]).unwrap();
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn balance_weighted_graph_tolerates_max_weight() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.set_vertex_weight(0, 2).unwrap();
        b.set_vertex_weight(1, 2).unwrap();
        b.set_vertex_weight(2, 1).unwrap();
        let g = b.build();
        // Weights 2|2,1: imbalance 1 <= max weight 2 -> balanced.
        let p = Bisection::from_sides(&g, vec![false, true, true]).unwrap();
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn members_sorted() {
        let g = path4();
        let p = Bisection::from_sides(&g, vec![true, false, true, false]).unwrap();
        assert_eq!(p.members(Side::A), vec![1, 3]);
        assert_eq!(p.members(Side::B), vec![0, 2]);
    }

    #[test]
    fn rebalance_reaches_balance_and_tracks_cut() {
        let g = bisect_gen::special::grid(4, 4);
        let mut p = Bisection::from_sides(&g, vec![false; 16]).unwrap();
        rebalance(&g, &mut p);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
        assert_eq!(p.count(Side::A), 8);
    }

    #[test]
    fn rebalance_noop_when_balanced() {
        let g = path4();
        let mut p = Bisection::planted(&g);
        let before = p.clone();
        rebalance(&g, &mut p);
        assert_eq!(p, before);
    }

    #[test]
    fn rebalance_picks_low_damage_vertices() {
        // Star: moving leaves costs 1 each; rebalance from all-in-A
        // should end with cut = floor(n/2) = 3 (3 leaves moved).
        let g = bisect_gen::special::star(6);
        let mut p = Bisection::from_sides(&g, vec![false; 6]).unwrap();
        rebalance(&g, &mut p);
        assert!(p.is_balanced(&g));
        // Any balanced split of a star cuts exactly ⌊n/2⌋ edges when
        // only leaves move, and also when the hub crosses with two
        // leaves — the minimum-damage result is cut 3 either way.
        assert_eq!(p.cut(), 3);
    }

    #[test]
    fn from_sides_with_cut_matches_from_sides() {
        let g = bisect_gen::special::grid(5, 5);
        let sides: Vec<bool> = (0..25).map(|v| v % 3 == 0).collect();
        let full = Bisection::from_sides(&g, sides.clone()).unwrap();
        let fast = Bisection::from_sides_with_cut(&g, sides, full.cut()).unwrap();
        assert_eq!(full, fast);
        assert!(Bisection::from_sides_with_cut(&g, vec![false; 3], 0).is_err());
    }

    #[test]
    fn rebalance_with_cache_matches_rebalance() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let params = bisect_gen::gnp::GnpParams::new(40, 0.1).unwrap();
            let g = bisect_gen::gnp::sample(&mut rng, &params);
            // Deliberately lopsided start so rebalance has work to do.
            let sides: Vec<bool> = (0..40).map(|_| rng.gen_range(0..4) == 0).collect();
            let mut plain = Bisection::from_sides(&g, sides.clone()).unwrap();
            let mut cached = Bisection::from_sides(&g, sides).unwrap();
            let mut cache = GainCache::default();
            cache.init(&g, &cached);
            rebalance(&g, &mut plain);
            rebalance_with_cache(&g, &mut cached, &mut cache);
            assert_eq!(plain, cached, "seed {seed}");
            for v in g.vertices() {
                assert_eq!(
                    cache.gain(v),
                    cached.gain(&g, v),
                    "stale cache, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn crossing_edges_match_cut() {
        let g = bisect_gen::special::grid(4, 4);
        let p = Bisection::planted(&g);
        let crossing = p.crossing_edges(&g);
        assert_eq!(crossing.iter().map(|&(_, _, w)| w).sum::<u64>(), p.cut());
        for &(u, v, _) in &crossing {
            assert_ne!(p.side(u), p.side(v));
            assert!(u < v);
        }
    }

    #[test]
    fn crossing_edges_empty_for_zero_cut() {
        let g = bisect_gen::special::cycle_collection(2, 4);
        let p = Bisection::planted(&g); // each cycle on its own side
        assert_eq!(p.cut(), 0);
        assert!(p.crossing_edges(&g).is_empty());
    }

    #[test]
    fn members_into_reuses_buffer() {
        let g = path4();
        let p = Bisection::from_sides(&g, vec![true, false, true, false]).unwrap();
        let mut buf = vec![99, 99, 99, 99, 99];
        p.members_into(Side::A, &mut buf);
        assert_eq!(buf, vec![1, 3]);
        p.members_into(Side::B, &mut buf);
        assert_eq!(buf, vec![0, 2]);
    }

    #[test]
    fn copy_from_matches_clone_across_sizes() {
        let g = path4();
        let p = Bisection::planted(&g);
        let big = bisect_gen::special::grid(5, 5);
        let mut q = Bisection::planted(&big);
        q.copy_from(&p);
        assert_eq!(q, p);
        let mut r = Bisection::planted(&g);
        let pb = Bisection::planted(&big);
        r.copy_from(&pb);
        assert_eq!(r, pb);
    }

    #[test]
    fn into_sides_roundtrip() {
        let g = path4();
        let p = Bisection::planted(&g);
        let sides = p.clone().into_sides();
        let q = Bisection::from_sides(&g, sides).unwrap();
        assert_eq!(p, q);
    }
}
