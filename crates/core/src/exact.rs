//! Exact minimum bisection by branch and bound — ground truth for small
//! graphs.
//!
//! Graph bisection is NP-hard, but instances up to ~30 vertices solve
//! quickly with a simple depth-first branch and bound: vertices are
//! assigned to sides in decreasing-degree order, the running cut is the
//! bound, vertex 0's side is fixed to break the mirror symmetry, and a
//! branch is cut off when either side is full or the running cut
//! reaches the incumbent. The test suites use this to verify that the
//! heuristics never "beat" the true optimum and to measure their
//! optimality gap on small instances.

use bisect_graph::{Graph, VertexId};
use rand::RngCore;

use crate::bisector::Bisector;
use crate::partition::Bisection;

/// Hard limit on the vertex count accepted by [`minimum_bisection`].
pub const MAX_VERTICES: usize = 40;

/// Error returned when a graph is too large for exact search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooLargeError {
    /// Vertices in the offending graph.
    pub num_vertices: usize,
}

impl std::fmt::Display for TooLargeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exact bisection limited to {MAX_VERTICES} vertices, graph has {}",
            self.num_vertices
        )
    }
}

impl std::error::Error for TooLargeError {}

/// Computes a minimum balanced bisection exactly.
///
/// Runs in `O*(2^n)` worst case; practical well past 30 vertices on
/// sparse graphs thanks to the cut bound.
///
/// # Errors
///
/// Returns [`TooLargeError`] if the graph has more than
/// [`MAX_VERTICES`] vertices.
// lint: allow(no-panic) — branch-and-bound expects: the empty assignment
// is balanced for n = 0, exactly ⌊n/2⌋ vertices are sent to side B, and
// the search only stores full balanced assignments.
pub fn minimum_bisection(g: &Graph) -> Result<Bisection, TooLargeError> {
    let n = g.num_vertices();
    if n > MAX_VERTICES {
        return Err(TooLargeError { num_vertices: n });
    }
    if n == 0 {
        return Ok(Bisection::from_sides(g, Vec::new()).expect("empty sides fit"));
    }

    // Assign high-degree vertices first: their edges resolve early, so
    // the running-cut bound bites sooner.
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));

    let cap_a = n.div_ceil(2);
    let cap_b = n / 2;

    let mut best_sides = vec![false; n];
    // Initial incumbent: first ⌈n/2⌉ of the order on side A.
    for &v in order.iter().skip(cap_a) {
        best_sides[v as usize] = true;
    }
    let mut best_cut = Bisection::from_sides(g, best_sides.clone())
        .expect("initial incumbent valid")
        .cut();

    let mut depth_of = vec![usize::MAX; n];
    for (depth, &v) in order.iter().enumerate() {
        depth_of[v as usize] = depth;
    }

    let mut sides = vec![false; n];
    let mut search = Search {
        g,
        order: &order,
        depth_of: &depth_of,
        cap_a,
        cap_b,
        best_cut: &mut best_cut,
        best_sides: &mut best_sides,
    };
    if n.is_multiple_of(2) {
        // Fix the first vertex on side A: for even n the mirrored
        // assignment has the same cut and side sizes, halving the tree.
        // For odd n the sides have different sizes so the mirror lives
        // in a different capacity profile — no symmetry to break.
        sides[order[0] as usize] = false;
        search.recurse(&mut sides, 1, 1, 0, 0);
    } else {
        search.recurse(&mut sides, 0, 0, 0, 0);
    }

    Ok(Bisection::from_sides(g, best_sides).expect("search produced full assignment"))
}

struct Search<'a> {
    g: &'a Graph,
    order: &'a [VertexId],
    depth_of: &'a [usize],
    cap_a: usize,
    cap_b: usize,
    best_cut: &'a mut u64,
    best_sides: &'a mut Vec<bool>,
}

impl Search<'_> {
    fn recurse(
        &mut self,
        sides: &mut Vec<bool>,
        depth: usize,
        count_a: usize,
        count_b: usize,
        cut: u64,
    ) {
        if cut >= *self.best_cut {
            return;
        }
        if depth == self.order.len() {
            *self.best_cut = cut;
            self.best_sides.clone_from(sides);
            return;
        }
        let v = self.order[depth];
        for side in [false, true] {
            let (na, nb) = if side {
                (count_a, count_b + 1)
            } else {
                (count_a + 1, count_b)
            };
            if na > self.cap_a || nb > self.cap_b {
                continue;
            }
            // Added cut: edges from v to already-assigned vertices on
            // the other side.
            let mut added = 0u64;
            for (u, w) in self.g.neighbors_weighted(v) {
                if self.depth_of[u as usize] < depth && sides[u as usize] != side {
                    added += w;
                }
            }
            sides[v as usize] = side;
            self.recurse(sides, depth + 1, na, nb, cut + added);
        }
    }
}

/// [`minimum_bisection`] as a [`Bisector`] (for plugging ground truth
/// into the shared harness on tiny graphs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactBisector;

impl ExactBisector {
    /// Creates the exact bisector.
    pub fn new() -> ExactBisector {
        ExactBisector
    }
}

impl Bisector for ExactBisector {
    fn name(&self) -> String {
        "Exact".into()
    }

    /// # Panics
    ///
    /// Panics if the graph exceeds [`MAX_VERTICES`].
    fn bisect(&self, g: &Graph, _rng: &mut dyn RngCore) -> Bisection {
        // lint: allow(no-panic) — documented panic contract of the infallible Bisector facade
        minimum_bisection(g).expect("graph within exact solver limits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;

    fn brute_force(g: &Graph) -> u64 {
        let n = g.num_vertices();
        assert!(n <= 20);
        let cap_a = n.div_ceil(2);
        let mut best = u64::MAX;
        for mask in 0..1u32 << n {
            if mask.count_ones() as usize != cap_a {
                continue;
            }
            let sides: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 0).collect();
            let cut = Bisection::from_sides(g, sides).unwrap().cut();
            best = best.min(cut);
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        let graphs = vec![
            special::cycle(8),
            special::path(9),
            special::grid(3, 4),
            special::ladder(5),
            special::binary_tree(10),
            special::complete(6),
            special::star(7),
            special::wheel(8),
        ];
        for g in graphs {
            let exact = minimum_bisection(&g).unwrap();
            assert!(exact.is_balanced(&g));
            assert_eq!(exact.cut(), exact.recompute_cut(&g));
            assert_eq!(
                exact.cut(),
                brute_force(&g),
                "graph with {} vertices",
                g.num_vertices()
            );
        }
    }

    #[test]
    fn known_bisection_widths() {
        assert_eq!(minimum_bisection(&special::cycle(12)).unwrap().cut(), 2);
        assert_eq!(minimum_bisection(&special::ladder(6)).unwrap().cut(), 2);
        assert_eq!(minimum_bisection(&special::grid(4, 4)).unwrap().cut(), 4);
        assert_eq!(minimum_bisection(&special::complete(8)).unwrap().cut(), 16);
        assert_eq!(minimum_bisection(&special::hypercube(3)).unwrap().cut(), 4);
        assert_eq!(minimum_bisection(&special::star(8)).unwrap().cut(), 4);
    }

    #[test]
    fn disconnected_graph_zero_cut() {
        let g = special::cycle_collection(2, 5);
        assert_eq!(minimum_bisection(&g).unwrap().cut(), 0);
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(minimum_bisection(&Graph::empty(0)).unwrap().cut(), 0);
        assert_eq!(minimum_bisection(&Graph::empty(1)).unwrap().cut(), 0);
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert_eq!(minimum_bisection(&g).unwrap().cut(), 1);
    }

    #[test]
    fn rejects_large_graph() {
        let g = Graph::empty(MAX_VERTICES + 1);
        let err = minimum_bisection(&g).unwrap_err();
        assert_eq!(err.num_vertices, MAX_VERTICES + 1);
        assert!(err.to_string().contains("41"));
    }

    #[test]
    fn exact_bisector_trait() {
        use rand::SeedableRng;
        let g = special::cycle(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let p = ExactBisector::new().bisect(&g, &mut rng);
        assert_eq!(p.cut(), 2);
        assert_eq!(ExactBisector::new().name(), "Exact");
    }

    #[test]
    fn weighted_graph_exact() {
        let mut b = bisect_graph::GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 5).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 3).unwrap();
        b.add_edge(3, 0).unwrap();
        let g = b.build();
        // Keep the weight-5 edge internal: split {0,1} | {2,3}, cut 2.
        assert_eq!(minimum_bisection(&g).unwrap().cut(), 2);
    }
}
