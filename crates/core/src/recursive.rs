//! Recursive bisection into `2^k` parts — the way the paper's
//! motivating application (min-cut VLSI placement) actually consumes a
//! bisection algorithm: bisect the netlist, then bisect each half,
//! recursing until each region holds one block of cells.
//!
//! Any [`Bisector`] can drive the recursion; each level bisects the
//! *induced subgraph* of the current region, so only edges inside a
//! region influence its split (edges already cut at a higher level are
//! paid for once).

use bisect_graph::{subgraph, Graph, VertexId};
use rand::RngCore;

use crate::bisector::Bisector;

/// A partition of a graph's vertices into `num_parts` labeled parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWayPartition {
    labels: Vec<u32>,
    num_parts: usize,
}

impl KWayPartition {
    /// The part of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn part(&self, v: VertexId) -> u32 {
        self.labels[v as usize]
    }

    /// Labels indexed by vertex id, each in `0..num_parts`.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Vertices per part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Total weight of edges whose endpoints lie in different parts.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not match the partition's vertex count.
    pub fn cut(&self, g: &Graph) -> u64 {
        assert_eq!(
            g.num_vertices(),
            self.labels.len(),
            "partition does not match graph"
        );
        g.edges()
            .filter(|&(u, v, _)| self.labels[u as usize] != self.labels[v as usize])
            .map(|(_, _, w)| w)
            .sum()
    }
}

/// Recursive bisection driver.
///
/// # Example
///
/// ```
/// use bisect_core::{kl::KernighanLin, recursive::RecursiveBisection};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::grid(8, 8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let quad = RecursiveBisection::new(KernighanLin::new())
///     .partition(&g, 4, &mut rng)
///     .unwrap();
/// assert_eq!(quad.num_parts(), 4);
/// assert_eq!(quad.part_sizes(), vec![16, 16, 16, 16]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RecursiveBisection<B> {
    bisector: B,
}

/// Error returned for a part count that is not a power of two (or is
/// zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPartCountError {
    /// The rejected count.
    pub parts: usize,
}

impl std::fmt::Display for InvalidPartCountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "part count must be a positive power of two, got {}",
            self.parts
        )
    }
}

impl std::error::Error for InvalidPartCountError {}

impl<B: Bisector> RecursiveBisection<B> {
    /// Drives recursion with the given bisector.
    pub fn new(bisector: B) -> RecursiveBisection<B> {
        RecursiveBisection { bisector }
    }

    /// The underlying bisector.
    pub fn bisector(&self) -> &B {
        &self.bisector
    }

    /// Partitions `g` into `parts` (a power of two) balanced parts.
    /// Part sizes differ by at most `⌈n / parts⌉ − ⌊n / parts⌋ + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPartCountError`] unless `parts` is a positive
    /// power of two.
    pub fn partition(
        &self,
        g: &Graph,
        parts: usize,
        rng: &mut dyn RngCore,
    ) -> Result<KWayPartition, InvalidPartCountError> {
        if parts == 0 || !parts.is_power_of_two() {
            return Err(InvalidPartCountError { parts });
        }
        let mut labels = vec![0u32; g.num_vertices()];
        let all: Vec<VertexId> = g.vertices().collect();
        self.split(g, &all, parts, 0, &mut labels, rng);
        Ok(KWayPartition {
            labels,
            num_parts: parts,
        })
    }

    fn split(
        &self,
        g: &Graph,
        region: &[VertexId],
        parts: usize,
        first_label: u32,
        labels: &mut [u32],
        rng: &mut dyn RngCore,
    ) {
        if parts == 1 {
            for &v in region {
                labels[v as usize] = first_label;
            }
            return;
        }
        let (sub, map) = subgraph::induced_subgraph(g, region);
        let bisection = self.bisector.bisect(&sub, rng);
        let mut side_a = Vec::with_capacity(region.len() / 2 + 1);
        let mut side_b = Vec::with_capacity(region.len() / 2 + 1);
        for (new_id, &old_id) in map.iter().enumerate() {
            if bisection.sides()[new_id] {
                side_b.push(old_id);
            } else {
                side_a.push(old_id);
            }
        }
        self.split(g, &side_a, parts / 2, first_label, labels, rng);
        self.split(
            g,
            &side_b,
            parts / 2,
            first_label + (parts / 2) as u32,
            labels,
            rng,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kl::KernighanLin;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quad(g: &Graph, parts: usize, seed: u64) -> KWayPartition {
        let mut rng = StdRng::seed_from_u64(seed);
        RecursiveBisection::new(KernighanLin::new())
            .partition(g, parts, &mut rng)
            .unwrap()
    }

    #[test]
    fn rejects_non_power_of_two() {
        let g = special::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let rb = RecursiveBisection::new(KernighanLin::new());
        for parts in [0usize, 3, 6, 12] {
            let err = rb.partition(&g, parts, &mut rng).unwrap_err();
            assert_eq!(err.parts, parts);
            assert!(err.to_string().contains("power of two"));
        }
    }

    #[test]
    fn one_part_is_trivial() {
        let g = special::grid(4, 4);
        let p = quad(&g, 1, 0);
        assert_eq!(p.cut(&g), 0);
        assert_eq!(p.part_sizes(), vec![16]);
    }

    #[test]
    fn two_parts_match_plain_bisection_balance() {
        let g = special::grid(6, 6);
        let p = quad(&g, 2, 1);
        assert_eq!(p.part_sizes(), vec![18, 18]);
        assert!(p.cut(&g) <= 12);
    }

    #[test]
    fn four_way_grid_partition_is_good() {
        // Optimal 4-way cut of an 8x8 grid (quadrants) costs 16.
        let g = special::grid(8, 8);
        let p = quad(&g, 4, 3);
        assert_eq!(p.part_sizes(), vec![16, 16, 16, 16]);
        assert!(p.cut(&g) <= 28, "cut {}", p.cut(&g));
        // All labels in range.
        assert!(p.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn eight_way_with_uneven_total() {
        let g = special::binary_tree(100);
        let p = quad(&g, 8, 4);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 2, "sizes {sizes:?}");
    }

    #[test]
    fn cut_counts_inter_part_edges_exactly() {
        let g = special::cycle(16);
        let p = quad(&g, 4, 5);
        // A cycle split into 4 contiguous arcs cuts 4 edges; any 4-way
        // balanced split cuts at least 4.
        assert!(p.cut(&g) >= 4);
        // Cross-check against a manual count.
        let manual: u64 = g
            .edges()
            .filter(|&(u, v, _)| p.part(u) != p.part(v))
            .map(|(_, _, w)| w)
            .sum();
        assert_eq!(p.cut(&g), manual);
    }

    #[test]
    fn parts_equal_vertices_gives_singletons() {
        let g = special::grid(2, 4); // 8 vertices
        let p = quad(&g, 8, 6);
        assert_eq!(p.part_sizes(), vec![1; 8]);
        assert_eq!(p.cut(&g), g.num_edges() as u64);
    }

    #[test]
    fn bisector_accessor() {
        let rb = RecursiveBisection::new(KernighanLin::new());
        assert_eq!(rb.bisector().name(), "KL");
    }
}
