//! Recursive bisection into `2^k` parts — now a thin, deprecated shim
//! over [`pipeline::kway`](crate::pipeline::kway).
//!
//! `RecursiveBisection::new(b).partition(g, parts, rng)` delegates to
//! [`recursive_partition`](crate::pipeline::recursive_partition) and is
//! bit-identical to the pre-pipeline implementation. New code should
//! call [`Pipeline::partition_into`](crate::pipeline::Pipeline::partition_into)
//! or [`pipeline::recursive_partition`](crate::pipeline::recursive_partition)
//! directly, which report failures as
//! [`BisectError`](crate::error::BisectError).

#![allow(deprecated)]

use bisect_graph::Graph;
use rand::RngCore;

use crate::bisector::Bisector;
use crate::error::BisectError;

pub use crate::pipeline::KWayPartition;

/// Recursive bisection driver.
///
/// Deprecated: this is now a shim over
/// [`pipeline::recursive_partition`](crate::pipeline::recursive_partition).
#[deprecated(
    since = "0.2.0",
    note = "use `Pipeline::partition_into` or `pipeline::recursive_partition` — bit-identical results"
)]
#[derive(Debug, Clone, PartialEq)]
pub struct RecursiveBisection<B> {
    bisector: B,
}

/// Error returned for a part count that is not a power of two (or is
/// zero).
#[deprecated(since = "0.2.0", note = "use `error::BisectError::InvalidPartCount`")]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPartCountError {
    /// The rejected count.
    pub parts: usize,
}

impl std::fmt::Display for InvalidPartCountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "part count must be a positive power of two, got {}",
            self.parts
        )
    }
}

impl std::error::Error for InvalidPartCountError {}

impl<B: Bisector> RecursiveBisection<B> {
    /// Drives recursion with the given bisector.
    pub fn new(bisector: B) -> RecursiveBisection<B> {
        RecursiveBisection { bisector }
    }

    /// The underlying bisector.
    pub fn bisector(&self) -> &B {
        &self.bisector
    }

    /// Partitions `g` into `parts` (a power of two) balanced parts.
    /// Part sizes differ by at most `⌈n / parts⌉ − ⌊n / parts⌋ + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPartCountError`] unless `parts` is a positive
    /// power of two.
    pub fn partition(
        &self,
        g: &Graph,
        parts: usize,
        rng: &mut dyn RngCore,
    ) -> Result<KWayPartition, InvalidPartCountError> {
        crate::pipeline::recursive_partition(&self.bisector, g, parts, rng).map_err(|e| match e {
            BisectError::InvalidPartCount { parts } => InvalidPartCountError { parts },
            // lint: allow(no-panic) — regions are disjoint in-range subsets, so only the part-count check can fire
            other => unreachable!("recursive_partition only rejects part counts: {other}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kl::KernighanLin;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quad(g: &Graph, parts: usize, seed: u64) -> KWayPartition {
        let mut rng = StdRng::seed_from_u64(seed);
        RecursiveBisection::new(KernighanLin::new())
            .partition(g, parts, &mut rng)
            .unwrap()
    }

    #[test]
    fn rejects_non_power_of_two() {
        let g = special::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let rb = RecursiveBisection::new(KernighanLin::new());
        for parts in [0usize, 3, 6, 12] {
            let err = rb.partition(&g, parts, &mut rng).unwrap_err();
            assert_eq!(err.parts, parts);
            assert!(err.to_string().contains("power of two"));
        }
    }

    #[test]
    fn two_parts_match_plain_bisection_balance() {
        let g = special::grid(6, 6);
        let p = quad(&g, 2, 1);
        assert_eq!(p.part_sizes(), vec![18, 18]);
        assert!(p.cut(&g) <= 12);
    }

    #[test]
    fn shim_is_bit_identical_to_pipeline_kway() {
        let g = special::grid(8, 8);
        let legacy = quad(&g, 4, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let piped =
            crate::pipeline::recursive_partition(&KernighanLin::new(), &g, 4, &mut rng).unwrap();
        assert_eq!(legacy, piped);
    }

    #[test]
    fn bisector_accessor() {
        let rb = RecursiveBisection::new(KernighanLin::new());
        assert_eq!(rb.bisector().name(), "KL");
    }
}
