//! Initial bisections (starting configurations).
//!
//! The paper starts every heuristic "from two different randomly
//! generated initial bisections" — [`random_balanced`]. Two structured
//! alternatives are provided: [`bfs_balanced`] (grow one side as a BFS
//! ball, a classic greedy baseline) and [`dfs_balanced`] (first half of
//! a depth-first order — the "use a depth first search algorithm" remark
//! the paper makes for degree-2 graphs, where it is near optimal).

use bisect_graph::{traversal, Graph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::partition::Bisection;

/// A uniformly random balanced bisection: a random half of the vertices
/// (by count) goes to side A. For odd vertex counts side A gets the
/// extra vertex.
pub fn random_balanced<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Bisection {
    let n = g.num_vertices();
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(rng);
    let mut side = vec![true; n];
    for &v in &perm[..n.div_ceil(2)] {
        side[v as usize] = false;
    }
    // lint: allow(no-panic) — side has one entry per vertex by construction
    Bisection::from_sides(g, side).expect("side vector has correct length")
}

/// A random bisection balanced by vertex *weight*: vertices are visited
/// in random order and each goes to the currently lighter side. The
/// final weight imbalance is at most the largest vertex weight, which is
/// what contracted (coarse) graphs need — count-balanced splits of a
/// coarse graph can be badly weight-imbalanced.
pub fn weight_balanced_random<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Bisection {
    let n = g.num_vertices();
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(rng);
    let mut side = vec![false; n];
    let mut weights = [0u64; 2];
    for &v in &perm {
        let target = usize::from(weights[1] < weights[0]);
        side[v as usize] = target == 1;
        weights[target] += g.vertex_weight(v);
    }
    // lint: allow(no-panic) — side has one entry per vertex by construction
    Bisection::from_sides(g, side).expect("side vector has correct length")
}

/// A bisection whose side A is a breadth-first ball around a random
/// start vertex: the first ⌈n/2⌉ vertices of a BFS order (continuing
/// from further random roots if the component is exhausted).
// lint: allow(no-panic) — side has one entry per vertex by construction
pub fn bfs_balanced<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Bisection {
    let n = g.num_vertices();
    if n == 0 {
        return Bisection::from_sides(g, Vec::new()).expect("empty ok");
    }
    let half = n.div_ceil(2);
    let mut side = vec![true; n];
    let mut taken = 0usize;
    let mut visited = vec![false; n];
    let mut roots: Vec<VertexId> = (0..n as VertexId).collect();
    roots.shuffle(rng);
    'outer: for &root in &roots {
        if visited[root as usize] {
            continue;
        }
        for v in traversal::bfs_order(g, root) {
            if visited[v as usize] {
                continue;
            }
            visited[v as usize] = true;
            side[v as usize] = false;
            taken += 1;
            if taken == half {
                break 'outer;
            }
        }
    }
    Bisection::from_sides(g, side).expect("side vector has correct length")
}

/// A bisection whose side A is the first half of a depth-first preorder
/// of the graph. Deterministic; on disjoint unions of cycles and on
/// paths this is optimal or within 2 of optimal.
pub fn dfs_balanced(g: &Graph) -> Bisection {
    let n = g.num_vertices();
    let half = n.div_ceil(2);
    let mut side = vec![true; n];
    for &v in traversal::dfs_order(g).iter().take(half) {
        side[v as usize] = false;
    }
    // lint: allow(no-panic) — side has one entry per vertex by construction
    Bisection::from_sides(g, side).expect("side vector has correct length")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Side;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_balanced_is_balanced() {
        let g = bisect_gen::special::grid(4, 5);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = random_balanced(&g, &mut rng);
            assert_eq!(p.count(Side::A), 10);
            assert!(p.is_balanced(&g));
        }
    }

    #[test]
    fn random_balanced_odd_graph() {
        let g = bisect_gen::special::path(7);
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_balanced(&g, &mut rng);
        assert_eq!(p.count(Side::A), 4);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn random_balanced_varies_with_seed() {
        let g = bisect_gen::special::grid(6, 6);
        let a = random_balanced(&g, &mut StdRng::seed_from_u64(1));
        let b = random_balanced(&g, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.sides(), b.sides());
    }

    #[test]
    fn weight_balanced_random_on_unit_graph() {
        let g = bisect_gen::special::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(8);
        let p = weight_balanced_random(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.count(Side::A), 8);
    }

    #[test]
    fn weight_balanced_random_on_weighted_graph() {
        use bisect_graph::{contraction::contract_matching, matching::Matching};
        let g = bisect_gen::special::ladder(8);
        let m = Matching::from_pairs(16, &[(0, 8), (1, 9), (2, 10)]);
        let c = contract_matching(&g, &m);
        let coarse = c.coarse();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = weight_balanced_random(coarse, &mut rng);
            assert!(
                p.weight_imbalance() <= 2,
                "imbalance {}",
                p.weight_imbalance()
            );
        }
    }

    #[test]
    fn bfs_balanced_is_balanced_and_contiguous_on_path() {
        let g = bisect_gen::special::path(10);
        let mut rng = StdRng::seed_from_u64(3);
        let p = bfs_balanced(&g, &mut rng);
        assert_eq!(p.count(Side::A), 5);
        // A BFS ball on a path is an interval, so the cut is 1 or 2.
        assert!(p.cut() <= 2, "cut {}", p.cut());
    }

    #[test]
    fn bfs_balanced_handles_disconnected() {
        let g = bisect_gen::special::cycle_collection(4, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let p = bfs_balanced(&g, &mut rng);
        assert_eq!(p.count(Side::A), 6);
        // Whole cycles fit on one side: cut 0.
        assert_eq!(p.cut(), 0);
    }

    #[test]
    fn bfs_balanced_empty_graph() {
        let g = bisect_graph::Graph::empty(0);
        let mut rng = StdRng::seed_from_u64(3);
        let p = bfs_balanced(&g, &mut rng);
        assert_eq!(p.count(Side::A), 0);
    }

    #[test]
    fn dfs_balanced_on_cycle_is_optimal() {
        let g = bisect_gen::special::cycle(12);
        let p = dfs_balanced(&g);
        assert_eq!(p.count(Side::A), 6);
        assert_eq!(p.cut(), 2); // bisection width of an even cycle
    }

    #[test]
    fn dfs_balanced_on_cycle_collection_is_near_zero() {
        let g = bisect_gen::special::cycle_collection(4, 5);
        let p = dfs_balanced(&g);
        // 20 vertices, each cycle has 5; half = 10 = two whole cycles.
        assert_eq!(p.cut(), 0);
    }

    #[test]
    fn dfs_balanced_deterministic() {
        let g = bisect_gen::special::grid(5, 4);
        assert_eq!(dfs_balanced(&g).sides(), dfs_balanced(&g).sides());
    }
}
