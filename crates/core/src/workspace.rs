//! Reusable per-thread scratch memory for the refinement hot paths.
//!
//! Every KL/FM pass and SA run needs the same transient arrays — gain
//! arrays, locked flags, move sequences, candidate buckets, member
//! lists. Allocating them per pass dominated profile time on small
//! graphs and caused allocator contention once trials ran in parallel.
//! A [`Workspace`] owns all of them; the `*_in` entry points
//! ([`crate::bisector::Bisector::bisect_in`],
//! [`crate::kl::KernighanLin::pass_in`], …) borrow it, so after the
//! first trial has grown every buffer to the graph's size
//! (*warm-up*), the steady-state per-swap / per-pass / per-temperature
//! loops perform **zero heap allocations**. The per-trial O(n) setup
//! (drawing the random starting bisection, clearing arenas) still
//! touches memory, but not the allocator.
//!
//! A workspace is plain mutable state: not `Sync`, intended to live one
//! per worker thread (the experiment runner keeps one in a
//! `thread_local`). It can be reused across graphs of different sizes —
//! every arena is re-dimensioned on entry, shrinking logically but
//! never releasing capacity.

use bisect_graph::{Graph, VertexId};

use crate::gain::{GainBuckets, SortedBuckets};
use crate::gain_cache::GainCache;
use crate::netlist::{NetlistBisection, NetlistGainCache};
use crate::partition::Bisection;

/// Scratch arenas shared by the KL, FM, and SA hot paths. See the
/// [module docs](self) for the ownership model.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Per-vertex gain cache: maintained incrementally by SA, used as
    /// the per-pass gain arena by KL and FM.
    pub(crate) gain_cache: GainCache,
    /// Per-vertex locked flags (KL and FM passes).
    pub(crate) locked: Vec<bool>,
    /// Per-side ordered candidate buckets (KL incremental selection).
    pub(crate) kl_sides: [SortedBuckets; 2],
    /// Pair sequence of the current KL pass.
    pub(crate) sequence: Vec<(VertexId, VertexId)>,
    /// Cumulative gains of the current KL pass.
    pub(crate) cumulative: Vec<i64>,
    /// Per-side FM gain buckets.
    pub(crate) fm_buckets: [GainBuckets; 2],
    /// Move sequence of the current FM pass.
    pub(crate) fm_moves: Vec<VertexId>,
    /// Cumulative gains of the current FM pass.
    pub(crate) fm_cumulative: Vec<i64>,
    /// Balance flags after each FM move.
    pub(crate) fm_balanced: Vec<bool>,
    /// FM's virtually-moved working bisection.
    pub(crate) fm_work: Option<Bisection>,
    /// Vertices whose bucket/locked state the current boundary-FM pass
    /// touched, so cleanup is O(touched) instead of O(V).
    pub(crate) fm_touched: Vec<VertexId>,
    /// Per-cell netlist gain cache: maintained incrementally across
    /// moves and projected through uncoarsening by the netlist
    /// pipeline, used as the per-pass gain arena by netlist FM.
    pub(crate) netlist_cache: NetlistGainCache,
    /// Netlist FM's virtually-moved working bisection.
    pub(crate) netlist_work: Option<NetlistBisection>,
    /// Per-side member lists for SA's unbalanced-swap fallback.
    pub(crate) sa_members: [Vec<VertexId>; 2],
    /// SA's best-so-far bisection, recycled between runs.
    pub(crate) sa_best: Option<Bisection>,
    /// SA's per-temperature acceptance table: `sa_exp[δ] = exp(-δ/T)`
    /// for integer uphill deltas δ at the current temperature.
    pub(crate) sa_exp: Vec<f64>,
    /// SA proposals evaluated since the last [`Workspace::take_proposals`].
    proposals: u64,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use and are retained
    /// afterwards.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Returns the number of SA proposals evaluated through this
    /// workspace since the last call, resetting the counter — the
    /// benchmark harness reads this around each trial to report
    /// hot-loop throughput (`proposals_per_sec`).
    pub fn take_proposals(&mut self) -> u64 {
        std::mem::take(&mut self.proposals)
    }

    /// Accumulates SA proposal evaluations for
    /// [`Workspace::take_proposals`].
    pub(crate) fn add_proposals(&mut self, n: u64) {
        self.proposals = self.proposals.saturating_add(n);
    }

    /// (Re)initializes the workspace gain cache for `(g, p)` in
    /// O(V + E). Drivers that manage a refinement ladder by hand (the
    /// `huge` experiment) call this once at the coarsest level, then
    /// keep the cache current with [`Workspace::project_gain_cache`]
    /// and the refiners' projected-cache entry points instead of
    /// rebuilding per level.
    pub fn prepare_gain_cache(&mut self, g: &Graph, p: &Bisection) {
        self.gain_cache.init(g, p);
    }

    /// Projects the workspace gain cache through one uncoarsening step;
    /// see [`GainCache::project`] for the contract.
    pub fn project_gain_cache(&mut self, g: &Graph, p: &Bisection, fine_to_coarse: &[VertexId]) {
        self.gain_cache.project(g, p, fine_to_coarse);
    }

    /// Read access to the workspace gain cache, valid after
    /// [`Workspace::prepare_gain_cache`] /
    /// [`Workspace::project_gain_cache`] or a refiner's projected-cache
    /// run (which leave it exact for the partition they returned).
    pub fn gain_cache(&self) -> &GainCache {
        &self.gain_cache
    }

    /// Mutable access to the workspace gain cache, for drivers that
    /// apply moves outside a refiner ([`crate::partition`]'s
    /// `rebalance_with_cache`) and must keep the cache exact.
    pub fn gain_cache_mut(&mut self) -> &mut GainCache {
        &mut self.gain_cache
    }

    /// (Re)initializes the workspace *netlist* gain cache for
    /// `(nl, p)` in O(cells + pins) — the hypergraph analogue of
    /// [`Workspace::prepare_gain_cache`], used by drivers that manage a
    /// netlist refinement ladder by hand (the `huge-netlist`
    /// experiment): call once at the coarsest level, then keep the
    /// cache current with [`Workspace::project_netlist_cache`] and the
    /// refiners' projected-cache entry points.
    pub fn prepare_netlist_cache(
        &mut self,
        nl: &bisect_graph::hypergraph::Netlist,
        p: &NetlistBisection,
    ) {
        self.netlist_cache.init(nl, p);
    }

    /// Projects the workspace netlist gain cache through one
    /// uncoarsening step; see [`NetlistGainCache::project`] for the
    /// contract.
    pub fn project_netlist_cache(
        &mut self,
        nl: &bisect_graph::hypergraph::Netlist,
        p: &NetlistBisection,
        fine_to_coarse: &[VertexId],
    ) {
        self.netlist_cache.project(nl, p, fine_to_coarse);
    }

    /// Read access to the workspace netlist gain cache, valid after
    /// [`Workspace::prepare_netlist_cache`] /
    /// [`Workspace::project_netlist_cache`] or a netlist refiner's
    /// projected-cache run (which leave it exact for the bisection they
    /// returned).
    pub fn netlist_cache(&self) -> &NetlistGainCache {
        &self.netlist_cache
    }

    /// Mutable access to the workspace netlist gain cache, for drivers
    /// that apply moves outside a refiner
    /// ([`crate::netlist::rebalance_with_cache`]) and must keep the
    /// cache exact.
    pub fn netlist_cache_mut(&mut self) -> &mut NetlistGainCache {
        &mut self.netlist_cache
    }

    /// Checks out the SA best-so-far buffer seeded as a copy of
    /// `current`: recycles the previous run's buffer when present
    /// (allocation-free steady state) and clones only on first use.
    /// The SA run parks the buffer back in `sa_best` when it finishes.
    pub(crate) fn checkout_sa_best(&mut self, current: &Bisection) -> Bisection {
        match self.sa_best.take() {
            Some(mut best) => {
                best.copy_from(current);
                best
            }
            // Warm-up: the one allocation this arena ever makes.
            None => current.clone(),
        }
    }
}
