//! Reusable per-thread scratch memory for the refinement hot paths.
//!
//! Every KL/FM pass and SA run needs the same transient arrays — gain
//! arrays, locked flags, move sequences, candidate buckets, member
//! lists. Allocating them per pass dominated profile time on small
//! graphs and caused allocator contention once trials ran in parallel.
//! A [`Workspace`] owns all of them; the `*_in` entry points
//! ([`crate::bisector::Bisector::bisect_in`],
//! [`crate::kl::KernighanLin::pass_in`], …) borrow it, so after the
//! first trial has grown every buffer to the graph's size
//! (*warm-up*), the steady-state per-swap / per-pass / per-temperature
//! loops perform **zero heap allocations**. The per-trial O(n) setup
//! (drawing the random starting bisection, clearing arenas) still
//! touches memory, but not the allocator.
//!
//! A workspace is plain mutable state: not `Sync`, intended to live one
//! per worker thread (the experiment runner keeps one in a
//! `thread_local`). It can be reused across graphs of different sizes —
//! every arena is re-dimensioned on entry, shrinking logically but
//! never releasing capacity.

use bisect_graph::VertexId;

use crate::gain::{GainBuckets, SortedBuckets};
use crate::partition::Bisection;

/// Scratch arenas shared by the KL, FM, and SA hot paths. See the
/// [module docs](self) for the ownership model.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Per-vertex gains (KL and its pair-selection strategies).
    pub(crate) gains: Vec<i64>,
    /// Per-vertex locked flags (KL and FM passes).
    pub(crate) locked: Vec<bool>,
    /// Per-side ordered candidate buckets (KL incremental selection).
    pub(crate) kl_sides: [SortedBuckets; 2],
    /// Pair sequence of the current KL pass.
    pub(crate) sequence: Vec<(VertexId, VertexId)>,
    /// Cumulative gains of the current KL pass.
    pub(crate) cumulative: Vec<i64>,
    /// Per-side FM gain buckets.
    pub(crate) fm_buckets: [GainBuckets; 2],
    /// Move sequence of the current FM pass.
    pub(crate) fm_moves: Vec<VertexId>,
    /// Cumulative gains of the current FM pass.
    pub(crate) fm_cumulative: Vec<i64>,
    /// Balance flags after each FM move.
    pub(crate) fm_balanced: Vec<bool>,
    /// FM's virtually-moved working bisection.
    pub(crate) fm_work: Option<Bisection>,
    /// Per-side member lists for SA's unbalanced-swap fallback.
    pub(crate) sa_members: [Vec<VertexId>; 2],
    /// SA's best-so-far bisection, recycled between runs.
    pub(crate) sa_best: Option<Bisection>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use and are retained
    /// afterwards.
    pub fn new() -> Workspace {
        Workspace::default()
    }
}
