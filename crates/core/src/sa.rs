//! Simulated annealing for graph bisection (§II, Figure 1 of the paper;
//! Kirkpatrick-Gelatt-Vecchi 1983, schedule in the style of
//! Johnson-Aragon-McGeoch-Schevon).
//!
//! The generic algorithm of Figure 1 is parameterized here by:
//!
//! * **Move set** ([`MoveKind`]) — [`MoveKind::Swap`] exchanges a random
//!   pair across the cut (balance preserved at every step);
//!   [`MoveKind::Flip`] moves one random vertex and charges an imbalance
//!   penalty `α·(w_A − w_B)²` in the cost function, the formulation
//!   Johnson et al. use. Flip explores more freely but must be
//!   rebalanced at the end.
//! * **Schedule** ([`Schedule`]) — initial temperature (explicit, or
//!   calibrated so a target fraction of uphill moves is accepted),
//!   geometric cooling, `sizefactor·|V|` trials per temperature, and a
//!   freezing criterion (several consecutive temperatures with low
//!   acceptance and no improvement of the best solution).
//!
//! As the paper notes, SA "may migrate away from an optimal solution if
//! it is found at a high temperature. One must then save the best
//! bisection found as the algorithm progresses" — the implementation
//! does exactly that, and the paper's observation that this raises SA's
//! time and storage cost relative to KL is visible in the benchmarks.
//!
//! # Hot-path engineering
//!
//! The inner loop evaluates `sizefactor·|V|` proposals per temperature
//! and rejects most of them at useful temperatures, so it is built
//! around three *bit-identical* optimizations (DESIGN.md §10):
//!
//! 1. **Incremental gain cache** ([`crate::gain_cache::GainCache`],
//!    default [`ProposalEval::Cached`]) — per-vertex gains are
//!    maintained FM-style across accepted moves, making the common
//!    rejected proposal O(1) instead of O(deg). The original
//!    recompute-per-proposal path survives as [`ProposalEval::Naive`],
//!    and `tests/sa_equivalence.rs` pins the two bit-identical.
//! 2. **Monomorphization** — the public API keeps `&mut dyn RngCore`,
//!    but [`SimulatedAnnealing::refine_with_stats_in`] downcasts the
//!    trait object once (via `RngCore::as_any_mut`) and dispatches into
//!    a generic inner loop, so per-draw generator calls inline instead
//!    of going through the vtable. Unknown generators take an equally
//!    correct `dyn` fallback.
//! 3. **Table-driven acceptance** — swap deltas are small bounded
//!    integers, so `exp(-δ/T)` is precomputed per temperature into a
//!    workspace slice; entries are produced by the exact expression
//!    [`accept`] evaluates, so lookups change nothing about accept
//!    decisions.

use bisect_gen::rng::LaggedFibonacci;
use bisect_graph::{Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::bisector::{Bisector, Refiner};
use crate::partition::{rebalance, Bisection, Side};
use crate::seed;
use crate::workspace::Workspace;

/// The SA move set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MoveKind {
    /// Swap a random vertex of side A with a random vertex of side B.
    /// Every visited state is balanced.
    #[default]
    Swap,
    /// Move a single random vertex; the cost function is
    /// `cut + imbalance_factor · (w_A − w_B)²`. The returned bisection
    /// is rebalanced.
    Flip {
        /// The `α` weight of the squared imbalance penalty.
        imbalance_factor: f64,
    },
}

/// How the annealing loop evaluates a proposal's cost delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProposalEval {
    /// Read per-vertex gains from the workspace
    /// [`crate::gain_cache::GainCache`], updated in O(deg) only on
    /// accepted moves; rejected proposals cost O(1) array reads (plus
    /// one edge lookup for swaps).
    #[default]
    Cached,
    /// Recompute each proposal's gain from adjacency, as the original
    /// implementation did. Retained as the reference that the cached
    /// path is proptest-pinned against (`tests/sa_equivalence.rs`);
    /// both produce bit-identical draws, accepts, and results.
    Naive,
}

/// The annealing schedule. "The fine tuning of the annealing schedule
/// can be a big job, as we found out" — every knob is exposed.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Starting temperature; `None` calibrates it from
    /// `initial_acceptance` by sampling uphill moves.
    pub initial_temperature: Option<f64>,
    /// Target fraction of *uphill* moves accepted at the start
    /// (used only when `initial_temperature` is `None`).
    pub initial_acceptance: f64,
    /// Geometric cooling ratio `r` (`T ← r·T`), in `(0, 1)`.
    pub cooling: f64,
    /// Trials per temperature = `sizefactor · |V|`.
    pub sizefactor: usize,
    /// A temperature counts toward freezing when its acceptance ratio
    /// falls below this.
    pub min_acceptance: f64,
    /// Number of consecutive low-acceptance, no-improvement
    /// temperatures after which the system is frozen.
    pub freeze_limit: usize,
    /// Hard floor on the temperature.
    pub min_temperature: f64,
    /// Hard cap on the number of temperature steps (safety bound).
    pub max_temperatures: usize,
}

impl Default for Schedule {
    fn default() -> Schedule {
        Schedule {
            initial_temperature: None,
            initial_acceptance: 0.4,
            cooling: 0.95,
            sizefactor: 8,
            min_acceptance: 0.02,
            freeze_limit: 5,
            min_temperature: 1e-4,
            max_temperatures: 400,
        }
    }
}

/// Entries in the per-temperature `exp(-δ/T)` table, capped so filling
/// the table never costs more than the per-proposal `exp` calls it
/// replaces (deltas beyond the cap fall back to a direct `exp`).
const EXP_TABLE_CAP: usize = 4096;

/// Simulated annealing bisection.
///
/// # Example
///
/// ```
/// use bisect_core::{bisector::Bisector, sa::SimulatedAnnealing};
/// use bisect_gen::special;
/// use rand::SeedableRng;
///
/// let g = special::cycle(24);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let p = SimulatedAnnealing::new().bisect(&g, &mut rng);
/// assert!(p.is_balanced(&g));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedAnnealing {
    move_kind: MoveKind,
    schedule: Schedule,
    proposal_eval: ProposalEval,
}

impl Default for SimulatedAnnealing {
    fn default() -> SimulatedAnnealing {
        SimulatedAnnealing::new()
    }
}

impl SimulatedAnnealing {
    /// SA with swap moves, cached proposal evaluation, and the default
    /// schedule.
    pub fn new() -> SimulatedAnnealing {
        SimulatedAnnealing {
            move_kind: MoveKind::default(),
            schedule: Schedule::default(),
            proposal_eval: ProposalEval::default(),
        }
    }

    /// Selects the move set.
    pub fn with_move_kind(mut self, move_kind: MoveKind) -> SimulatedAnnealing {
        self.move_kind = move_kind;
        self
    }

    /// Selects how proposal deltas are evaluated. Results are
    /// bit-identical either way; [`ProposalEval::Naive`] exists as the
    /// reference path for equivalence tests and benchmarks.
    pub fn with_proposal_eval(mut self, proposal_eval: ProposalEval) -> SimulatedAnnealing {
        self.proposal_eval = proposal_eval;
        self
    }

    /// Replaces the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `cooling` is not in `(0, 1)`, `sizefactor` is 0, or
    /// `max_temperatures` is 0.
    pub fn with_schedule(mut self, schedule: Schedule) -> SimulatedAnnealing {
        assert!(
            schedule.cooling > 0.0 && schedule.cooling < 1.0,
            "cooling ratio must be in (0, 1)"
        );
        assert!(schedule.sizefactor > 0, "sizefactor must be positive");
        assert!(
            schedule.max_temperatures > 0,
            "need at least one temperature"
        );
        self.schedule = schedule;
        self
    }

    /// A fast low-quality schedule for tests and smoke runs.
    pub fn quick() -> SimulatedAnnealing {
        SimulatedAnnealing::new().with_schedule(Schedule {
            sizefactor: 4,
            cooling: 0.9,
            max_temperatures: 120,
            ..Schedule::default()
        })
    }

    fn initial_temperature<R: RngCore + ?Sized>(
        &self,
        g: &Graph,
        p: &Bisection,
        rng: &mut R,
        ws: &mut Workspace,
        cached: bool,
    ) -> f64 {
        if let Some(t0) = self.schedule.initial_temperature {
            return t0;
        }
        // Sample random moves; average the uphill deltas and solve
        // exp(-avg/T0) = initial_acceptance. Cached and naive gains are
        // the same integers, so the calibrated T0 is identical.
        let samples = (g.num_vertices() * 2).clamp(32, 2048);
        let mut uphill_total = 0.0f64;
        let mut uphill_count = 0usize;
        for _ in 0..samples {
            let delta = match self.move_kind {
                MoveKind::Swap => draw_swap_pair(g, p, rng, &mut ws.sa_members).map(|(a, b)| {
                    let d = if cached {
                        -ws.gain_cache.swap_gain(g, a, b)
                    } else {
                        -p.swap_gain(g, a, b)
                    };
                    d as f64
                }),
                MoveKind::Flip { imbalance_factor } => draw_flip_vertex(g, rng).map(|v| {
                    let gain = if cached {
                        ws.gain_cache.gain(v)
                    } else {
                        p.gain(g, v)
                    };
                    flip_cost_delta(g, p, imbalance_factor, v, gain)
                }),
            };
            if let Some(d) = delta {
                if d > 0.0 {
                    uphill_total += d;
                    uphill_count += 1;
                }
            }
        }
        if uphill_count == 0 {
            return 1.0;
        }
        let avg = uphill_total / uphill_count as f64;
        (avg / (1.0 / self.schedule.initial_acceptance).ln()).max(self.schedule.min_temperature)
    }
}

/// Draws the two vertices of a swap proposal: rejection-sample a cross
/// pair (~2 tries in expectation near balance), falling back to
/// explicit member lists for extremely unbalanced bisections. `None` if
/// a side is empty. `members` is scratch for the fallback; its contents
/// are irrelevant on entry.
#[inline]
fn draw_swap_pair<R: RngCore + ?Sized>(
    g: &Graph,
    p: &Bisection,
    rng: &mut R,
    members: &mut [Vec<VertexId>; 2],
) -> Option<(VertexId, VertexId)> {
    let n = g.num_vertices();
    if p.count(Side::A) == 0 || p.count(Side::B) == 0 {
        return None;
    }
    for _ in 0..64 {
        let a = rng.gen_range(0..n) as VertexId;
        let b = rng.gen_range(0..n) as VertexId;
        if p.side(a) == Side::A && p.side(b) == Side::B {
            return Some((a, b));
        }
    }
    let [members_a, members_b] = members;
    p.members_into(Side::A, members_a);
    p.members_into(Side::B, members_b);
    let a = members_a[rng.gen_range(0..members_a.len())];
    let b = members_b[rng.gen_range(0..members_b.len())];
    Some((a, b))
}

/// Draws the vertex of a flip proposal (`None` on the empty graph).
#[inline]
fn draw_flip_vertex<R: RngCore + ?Sized>(g: &Graph, rng: &mut R) -> Option<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    Some(rng.gen_range(0..n) as VertexId)
}

/// The flip cost delta `−gain + α·((w_A − w_B)²_after − (w_A − w_B)²)`
/// for moving `v`, given `v`'s current cut gain.
#[inline]
fn flip_cost_delta(g: &Graph, p: &Bisection, imbalance_factor: f64, v: VertexId, gain: i64) -> f64 {
    let cut_delta = (-gain) as f64;
    let w = g.vertex_weight(v) as i64;
    let imb = p.weight(Side::A) as i64 - p.weight(Side::B) as i64;
    let new_imb = if p.side(v) == Side::A {
        imb - 2 * w
    } else {
        imb + 2 * w
    };
    let pen_delta = imbalance_factor * ((new_imb * new_imb - imb * imb) as f64);
    cut_delta + pen_delta
}

/// Run statistics of one annealing, for schedule tuning and the
/// harness's diagnostics — the paper spends a paragraph on how hard
/// "fine tuning of the annealing schedule" is; these numbers are what
/// one tunes against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaStats {
    /// Starting temperature (given or calibrated).
    pub initial_temperature: f64,
    /// Temperature when the run stopped.
    pub final_temperature: f64,
    /// Temperature steps executed.
    pub temperatures: usize,
    /// Moves proposed in total.
    pub proposals: usize,
    /// Moves accepted in total.
    pub accepted: usize,
    /// Whether the run ended by freezing (vs the temperature floor or
    /// the step cap).
    pub froze: bool,
}

impl SaStats {
    /// Overall acceptance ratio.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposals as f64
        }
    }
}

impl SimulatedAnnealing {
    /// As [`Refiner::refine`], additionally returning the run
    /// statistics.
    ///
    /// Convenience wrapper over
    /// [`SimulatedAnnealing::refine_with_stats_in`] with a throwaway
    /// workspace.
    pub fn refine_with_stats(
        &self,
        g: &Graph,
        init: Bisection,
        rng: &mut dyn RngCore,
    ) -> (Bisection, SaStats) {
        self.refine_with_stats_in(g, init, rng, &mut Workspace::new())
    }

    /// As [`SimulatedAnnealing::refine_with_stats`], drawing the gain
    /// cache, acceptance table, best-so-far buffer and unbalanced-swap
    /// member scratch from `ws`: once the workspace is warm, the
    /// per-temperature and per-move loops perform no heap allocations.
    ///
    /// This is the monomorphization boundary: the trait object is
    /// downcast once (never per draw) to the workspace's production
    /// generator or the test generator; any other `RngCore` runs the
    /// bit-identical `dyn` fallback.
    pub fn refine_with_stats_in(
        &self,
        g: &Graph,
        init: Bisection,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, SaStats) {
        if let Some(any) = rng.as_any_mut() {
            if let Some(r) = any.downcast_mut::<LaggedFibonacci>() {
                return self.anneal(g, init, r, ws);
            }
            if let Some(r) = any.downcast_mut::<StdRng>() {
                return self.anneal(g, init, r, ws);
            }
        }
        self.anneal(g, init, rng, ws)
    }

    /// The annealing loop, generic over the concrete generator so every
    /// per-draw call inlines. Bit-identical for every `R` wrapping the
    /// same underlying draw stream, and across [`ProposalEval`] modes.
    fn anneal<R: RngCore + ?Sized>(
        &self,
        g: &Graph,
        init: Bisection,
        rng: &mut R,
        ws: &mut Workspace,
    ) -> (Bisection, SaStats) {
        let n = g.num_vertices();
        let mut stats = SaStats {
            initial_temperature: 0.0,
            final_temperature: 0.0,
            temperatures: 0,
            proposals: 0,
            accepted: 0,
            froze: false,
        };
        if n < 2 {
            return (init, stats);
        }
        let schedule = &self.schedule;
        let cached = self.proposal_eval == ProposalEval::Cached;
        let mut current = init;
        // The cache is built once per run (no RNG draws) and updated
        // only on accepted moves; calibration below reads it too.
        if cached {
            ws.gain_cache.init(g, &current);
        }
        let mut temperature = self.initial_temperature(g, &current, rng, ws, cached);
        stats.initial_temperature = temperature;

        // Best balanced solution seen so far ("one must then save the
        // best bisection found as the algorithm progresses"). The
        // buffer is recycled via the workspace so tracking the best
        // never allocates after the first run.
        let mut best = ws.checkout_sa_best(&current);
        if !best.is_balanced(g) {
            rebalance(g, &mut best);
        }
        // Swap deltas are bounded: |δ| = |g_a + g_b − 2δ_ab| ≤ 4·max
        // weighted degree, which sizes the acceptance table.
        let exp_radius = if cached && matches!(self.move_kind, MoveKind::Swap) {
            let max_wdeg = g
                .vertices()
                .map(|v| g.weighted_degree(v))
                .max()
                .unwrap_or(0);
            (max_wdeg as usize).saturating_mul(4).min(EXP_TABLE_CAP)
        } else {
            0
        };
        let trials = schedule.sizefactor * n;
        let mut frozen_streak = 0usize;

        for _step in 0..schedule.max_temperatures {
            stats.temperatures += 1;
            let mut accepted = 0usize;
            let mut improved_best = false;
            // One dispatch per temperature; each arm is a tight loop
            // with the move kind and evaluation mode fixed.
            match (self.move_kind, cached) {
                (MoveKind::Swap, true) => {
                    fill_exp_table(&mut ws.sa_exp, exp_radius, temperature);
                    for _ in 0..trials {
                        stats.proposals += 1;
                        let Some((a, b)) = draw_swap_pair(g, &current, rng, &mut ws.sa_members)
                        else {
                            break;
                        };
                        let delta = -ws.gain_cache.swap_gain(g, a, b);
                        if accept_with_table(delta, temperature, &ws.sa_exp, rng) {
                            // A swap is two single moves; b's gain is
                            // re-read after a's move so the a–b edge
                            // adjustment is included.
                            let gain_a = ws.gain_cache.gain(a);
                            ws.gain_cache.record_move_untracked(g, &current, a);
                            current.move_vertex_with_gain(g, a, gain_a);
                            let gain_b = ws.gain_cache.gain(b);
                            ws.gain_cache.record_move_untracked(g, &current, b);
                            current.move_vertex_with_gain(g, b, gain_b);
                            accepted += 1;
                            if current.cut() < best.cut() {
                                best.copy_from(&current);
                                improved_best = true;
                            }
                        }
                    }
                }
                (MoveKind::Swap, false) => {
                    for _ in 0..trials {
                        stats.proposals += 1;
                        let Some((a, b)) = draw_swap_pair(g, &current, rng, &mut ws.sa_members)
                        else {
                            break;
                        };
                        let delta = -current.swap_gain(g, a, b);
                        if accept(delta as f64, temperature, rng) {
                            current.swap(g, a, b);
                            accepted += 1;
                            if current.cut() < best.cut() {
                                best.copy_from(&current);
                                improved_best = true;
                            }
                        }
                    }
                }
                (MoveKind::Flip { imbalance_factor }, true) => {
                    for _ in 0..trials {
                        stats.proposals += 1;
                        let Some(v) = draw_flip_vertex(g, rng) else {
                            break;
                        };
                        let gain = ws.gain_cache.gain(v);
                        let delta = flip_cost_delta(g, &current, imbalance_factor, v, gain);
                        if accept(delta, temperature, rng) {
                            ws.gain_cache.record_move_untracked(g, &current, v);
                            current.move_vertex_with_gain(g, v, gain);
                            accepted += 1;
                            if current.is_balanced(g) && current.cut() < best.cut() {
                                best.copy_from(&current);
                                improved_best = true;
                            }
                        }
                    }
                }
                (MoveKind::Flip { imbalance_factor }, false) => {
                    for _ in 0..trials {
                        stats.proposals += 1;
                        let Some(v) = draw_flip_vertex(g, rng) else {
                            break;
                        };
                        let delta =
                            flip_cost_delta(g, &current, imbalance_factor, v, current.gain(g, v));
                        if accept(delta, temperature, rng) {
                            current.move_vertex(g, v);
                            accepted += 1;
                            if current.is_balanced(g) && current.cut() < best.cut() {
                                best.copy_from(&current);
                                improved_best = true;
                            }
                        }
                    }
                }
            }
            stats.accepted += accepted;
            let acceptance = accepted as f64 / trials as f64;
            if acceptance < schedule.min_acceptance && !improved_best {
                frozen_streak += 1;
                if frozen_streak >= schedule.freeze_limit {
                    stats.froze = true;
                    break;
                }
            } else {
                frozen_streak = 0;
            }
            temperature *= schedule.cooling;
            if temperature < schedule.min_temperature {
                break;
            }
        }
        stats.final_temperature = temperature;

        // In flip mode the current state may beat `best` after
        // rebalancing; check both.
        if let MoveKind::Flip { .. } = self.move_kind {
            rebalance(g, &mut current);
            if current.cut() < best.cut() {
                best.copy_from(&current);
            }
        }
        debug_assert_eq!(best.cut(), best.recompute_cut(g));
        // Return a bisection equal to `best` while parking the tracking
        // buffer back in the workspace for the next run.
        current.copy_from(&best);
        ws.sa_best = Some(best);
        ws.add_proposals(stats.proposals as u64);
        (current, stats)
    }
}

impl Bisector for SimulatedAnnealing {
    fn name(&self) -> String {
        "SA".into()
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.bisect_in(g, rng, &mut Workspace::new())
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        let init = seed::random_balanced(g, rng);
        self.refine_with_stats_in(g, init, rng, ws).0
    }

    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let init = seed::random_balanced(g, rng);
        let (p, stats) = self.refine_with_stats_in(g, init, rng, ws);
        (p, stats.temperatures as u64)
    }
}

impl Refiner for SimulatedAnnealing {
    fn refine(&self, g: &Graph, init: Bisection, rng: &mut dyn RngCore) -> Bisection {
        self.refine_with_stats(g, init, rng).0
    }

    fn refine_counted(
        &self,
        g: &Graph,
        init: Bisection,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        let (p, stats) = self.refine_with_stats_in(g, init, rng, ws);
        (p, stats.temperatures as u64)
    }
}

/// The Metropolis criterion: accept downhill always (no draw), uphill
/// with probability `exp(-δ/T)` (one `f64` draw when `T > 0`).
#[inline]
fn accept<R: RngCore + ?Sized>(delta: f64, temperature: f64, rng: &mut R) -> bool {
    delta <= 0.0 || (temperature > 0.0 && rng.gen::<f64>() < (-delta / temperature).exp())
}

/// [`accept`] for integer deltas with the per-temperature table of
/// `exp(-δ/T)` values: draws and decisions are bit-identical because
/// table entries are computed by the exact expression `accept`
/// evaluates.
#[inline]
fn accept_with_table<R: RngCore + ?Sized>(
    delta: i64,
    temperature: f64,
    table: &[f64],
    rng: &mut R,
) -> bool {
    if delta <= 0 {
        return true;
    }
    if temperature <= 0.0 {
        return false;
    }
    let threshold = match table.get(delta as usize) {
        Some(&t) => t,
        // Beyond the precomputed radius (possible only past the
        // EXP_TABLE_CAP clamp): compute what the table would hold.
        None => (-(delta as f64) / temperature).exp(),
    };
    rng.gen::<f64>() < threshold
}

/// Fills `table[δ] = exp(-δ/T)` for `δ ∈ 0..=radius`, reusing the
/// slice's capacity across temperatures.
fn fill_exp_table(table: &mut Vec<f64>, radius: usize, temperature: f64) {
    table.clear();
    for d in 0..=radius {
        table.push((-(d as f64) / temperature).exp());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn swap_sa_is_balanced_and_consistent() {
        let g = special::grid(6, 6);
        let mut rng = StdRng::seed_from_u64(1);
        let p = SimulatedAnnealing::quick().bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
        assert_eq!(p.count(Side::A), 18);
    }

    #[test]
    fn flip_sa_returns_balanced() {
        let g = special::grid(6, 6);
        let sa = SimulatedAnnealing::quick().with_move_kind(MoveKind::Flip {
            imbalance_factor: 0.05,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let p = sa.bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn finds_small_cut_on_cycle() {
        let g = special::cycle(30);
        let mut rng = StdRng::seed_from_u64(5);
        let best = crate::bisector::best_of(&SimulatedAnnealing::quick(), &g, 2, &mut rng);
        assert!(best.cut() <= 4, "cut {}", best.cut());
    }

    #[test]
    fn beats_random_on_planted_instance() {
        let params = bisect_gen::g2set::G2setParams::with_average_degree(100, 4.0, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let g = bisect_gen::g2set::sample(&mut rng, &params);
        let random = crate::bisector::RandomBisector::new().bisect(&g, &mut rng);
        let annealed = SimulatedAnnealing::quick().bisect(&g, &mut rng);
        assert!(
            annealed.cut() < random.cut(),
            "{} !< {}",
            annealed.cut(),
            random.cut()
        );
    }

    #[test]
    fn respects_explicit_initial_temperature() {
        let g = special::cycle(12);
        let sa = SimulatedAnnealing::new().with_schedule(Schedule {
            initial_temperature: Some(0.5),
            max_temperatures: 10,
            sizefactor: 2,
            ..Schedule::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let p = sa.bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn tiny_graphs_do_not_crash() {
        for n in [0usize, 1, 2, 3] {
            let g = bisect_graph::Graph::empty(n);
            let mut rng = StdRng::seed_from_u64(1);
            let p = SimulatedAnnealing::quick().bisect(&g, &mut rng);
            assert_eq!(p.cut(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "cooling ratio")]
    fn bad_cooling_rejected() {
        let _ = SimulatedAnnealing::new().with_schedule(Schedule {
            cooling: 1.5,
            ..Schedule::default()
        });
    }

    #[test]
    #[should_panic(expected = "sizefactor")]
    fn zero_sizefactor_rejected() {
        let _ = SimulatedAnnealing::new().with_schedule(Schedule {
            sizefactor: 0,
            ..Schedule::default()
        });
    }

    #[test]
    fn accept_always_takes_downhill() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(accept(-1.0, 0.0, &mut rng));
        assert!(accept(0.0, 1e-9, &mut rng));
    }

    #[test]
    fn accept_rejects_uphill_at_zero_temperature() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!accept(1.0, 0.0, &mut rng));
        }
    }

    #[test]
    fn accept_rate_matches_boltzmann_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| accept(1.0, 1.0, &mut rng)).count();
        let rate = hits as f64 / trials as f64;
        let expected = (-1.0f64).exp();
        assert!((rate - expected).abs() < 0.02, "rate {rate} vs {expected}");
    }

    #[test]
    fn table_accept_matches_direct_accept_bit_for_bit() {
        // Same seeds, same integer deltas: the table path and the
        // direct path must make identical decisions AND leave the
        // generator in identical states. A deliberately undersized
        // table exercises the out-of-range fallback too.
        for temperature in [0.0, 0.3, 1.0, 7.5] {
            let mut table = Vec::new();
            fill_exp_table(&mut table, 8, temperature);
            let mut direct = StdRng::seed_from_u64(99);
            let mut tabled = StdRng::seed_from_u64(99);
            for delta in (-3..20).chain([1000, 5000]) {
                let want = accept(delta as f64, temperature, &mut direct);
                let got = accept_with_table(delta, temperature, &table, &mut tabled);
                assert_eq!(want, got, "delta {delta} at T={temperature}");
                assert_eq!(direct, tabled, "generator state diverged");
            }
        }
    }

    #[test]
    fn cached_and_naive_eval_are_bit_identical() {
        // The full-run pin lives in tests/sa_equivalence.rs; this is
        // the in-crate smoke version.
        let g = special::grid(8, 6);
        for move_kind in [
            MoveKind::Swap,
            MoveKind::Flip {
                imbalance_factor: 0.05,
            },
        ] {
            let cached = SimulatedAnnealing::quick()
                .with_move_kind(move_kind)
                .bisect(&g, &mut StdRng::seed_from_u64(21));
            let naive = SimulatedAnnealing::quick()
                .with_move_kind(move_kind)
                .with_proposal_eval(ProposalEval::Naive)
                .bisect(&g, &mut StdRng::seed_from_u64(21));
            assert_eq!(cached, naive, "{move_kind:?}");
        }
    }

    #[test]
    fn proposals_counter_reaches_workspace() {
        let g = special::grid(6, 6);
        let mut ws = Workspace::new();
        let mut rng = StdRng::seed_from_u64(12);
        let init = crate::seed::random_balanced(&g, &mut rng);
        let (_, stats) =
            SimulatedAnnealing::quick().refine_with_stats_in(&g, init, &mut rng, &mut ws);
        assert!(stats.proposals > 0);
        assert_eq!(ws.take_proposals(), stats.proposals as u64);
        assert_eq!(ws.take_proposals(), 0, "take drains the counter");
    }

    #[test]
    fn sa_better_than_kl_on_ladder_best_of_two() {
        // Observation 4: SA outperforms KL on ladder graphs. This holds
        // in aggregate; with fixed seeds we assert SA reaches a small
        // cut on a modest ladder.
        let g = special::ladder(24);
        let mut rng = StdRng::seed_from_u64(1989);
        let sa = crate::bisector::best_of(&SimulatedAnnealing::quick(), &g, 2, &mut rng);
        assert!(sa.cut() <= 6, "SA cut {}", sa.cut());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = special::grid(5, 4);
        let a = SimulatedAnnealing::quick().bisect(&g, &mut StdRng::seed_from_u64(3));
        let b = SimulatedAnnealing::quick().bisect(&g, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn workspace_reuse_does_not_change_results() {
        // A dirty workspace (left over from other graphs/runs) must not
        // leak into the next run.
        let small = special::grid(4, 4);
        let big = special::grid(6, 6);
        let sa = SimulatedAnnealing::quick();
        let mut ws = crate::workspace::Workspace::new();
        let _ = sa.bisect_in(&big, &mut StdRng::seed_from_u64(7), &mut ws);
        let reused = sa.bisect_in(&small, &mut StdRng::seed_from_u64(3), &mut ws);
        let fresh = sa.bisect(&small, &mut StdRng::seed_from_u64(3));
        assert_eq!(reused, fresh);
    }

    #[test]
    fn stats_are_consistent() {
        let g = special::grid(6, 6);
        let sa = SimulatedAnnealing::quick();
        let mut rng = StdRng::seed_from_u64(8);
        let init = crate::seed::random_balanced(&g, &mut rng);
        let (p, stats) = sa.refine_with_stats(&g, init, &mut rng);
        assert!(p.is_balanced(&g));
        assert!(stats.temperatures >= 1);
        assert!(stats.proposals >= stats.accepted);
        assert!(stats.initial_temperature > 0.0);
        assert!(stats.final_temperature <= stats.initial_temperature);
        let ratio = stats.acceptance_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn stats_trivial_graph() {
        let g = bisect_graph::Graph::empty(1);
        let sa = SimulatedAnnealing::quick();
        let mut rng = StdRng::seed_from_u64(8);
        let init = crate::seed::random_balanced(&g, &mut rng);
        let (_, stats) = sa.refine_with_stats(&g, init, &mut rng);
        assert_eq!(stats.proposals, 0);
        assert_eq!(stats.acceptance_ratio(), 0.0);
    }

    #[test]
    fn freezing_is_reported() {
        // A frozen run on an easy instance should report froze = true
        // before exhausting max_temperatures.
        let g = special::cycle(16);
        let sa = SimulatedAnnealing::new().with_schedule(Schedule {
            max_temperatures: 1000,
            sizefactor: 4,
            cooling: 0.8,
            ..Schedule::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let init = crate::seed::random_balanced(&g, &mut rng);
        let (_, stats) = sa.refine_with_stats(&g, init, &mut rng);
        assert!(
            stats.froze || stats.final_temperature < 1e-3,
            "run should end by freezing or the floor: {stats:?}"
        );
        assert!(stats.temperatures < 1000);
    }
}
