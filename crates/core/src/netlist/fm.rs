//! Fiduccia-Mattheyses refinement on netlists — the 1982 algorithm in
//! its native habitat, now boundary-seeded and workspace-resident like
//! the graph-side [`crate::fm::BoundaryFm`].
//!
//! Each pass seeds the shared [`crate::gain::GainBuckets`] from the
//! incrementally tracked cell boundary ([`NetlistGainCache`]) instead
//! of all cells: an interior cell has only uncut nets, hence gain
//! `≤ 0`, and can only become worth moving after a net-mate moves — at
//! which point the update loop inserts it lazily. A pass costs
//! `O(boundary + touched pins)` instead of `O(cells + pins)`.
//!
//! [`CompactedNetlistFm`] and [`MultilevelNetlistFm`] are thin presets
//! over [`super::NetlistPipeline`] (one compaction level / a full
//! V-cycle), kept as named types for the benchmark tables.

use bisect_graph::hypergraph::Netlist;
use rand::RngCore;

use crate::partition::Side;
use crate::pipeline::{CoarsenDepth, DEFAULT_COARSEST_SIZE};
use crate::workspace::Workspace;

use super::{gain_term, NetlistBisection, NetlistPipeline, NetlistRefiner};

/// Fiduccia-Mattheyses on netlists.
///
/// # Example
///
/// ```
/// use bisect_core::netlist::NetlistFm;
/// use bisect_graph::hypergraph::NetlistBuilder;
/// use rand::SeedableRng;
///
/// let mut b = NetlistBuilder::new(6);
/// for pins in [[0u32, 1, 2].as_slice(), &[3, 4, 5], &[2, 3]] {
///     b.add_net(pins).unwrap();
/// }
/// let nl = b.build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = NetlistFm::new().bisect(&nl, &mut rng);
/// assert_eq!(p.cut(), 1); // only the 2-pin bridge net is cut
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistFm {
    max_passes: usize,
    full_scan: bool,
}

impl Default for NetlistFm {
    fn default() -> NetlistFm {
        NetlistFm::new()
    }
}

impl NetlistFm {
    /// FM with passes run to a fixpoint (bounded by a safety cap).
    pub fn new() -> NetlistFm {
        NetlistFm {
            max_passes: 64,
            full_scan: false,
        }
    }

    /// Seeds every pass's gain buckets from *all* cells instead of the
    /// tracked cut boundary — the reference `O(cells + pins)` seeding
    /// the boundary-localized default replaces. A full-scan pass can
    /// also chain zero- and negative-gain moves from interior cells, so
    /// results may differ from (not just match more slowly than) the
    /// boundary-seeded passes; the `netlist_fm_boundary` bench compares
    /// the two on near-converged re-refinement.
    pub fn with_full_scan(mut self) -> NetlistFm {
        self.full_scan = true;
        self
    }

    /// Limits the number of passes.
    ///
    /// # Panics
    ///
    /// Panics if `max_passes == 0`.
    pub fn with_max_passes(mut self, max_passes: usize) -> NetlistFm {
        assert!(max_passes > 0, "at least one pass is required");
        self.max_passes = max_passes;
        self
    }

    /// Bisects from a weight-balanced random start.
    pub fn bisect(&self, nl: &Netlist, rng: &mut dyn RngCore) -> NetlistBisection {
        let init = super::weight_balanced_random(nl, rng);
        self.refine(nl, init)
    }

    /// Improves `init` to a pass fixpoint.
    ///
    /// Convenience wrapper with a throwaway workspace; drivers that
    /// refine repeatedly use the [`NetlistRefiner`] entry points with a
    /// shared [`Workspace`].
    pub fn refine(&self, nl: &Netlist, mut init: NetlistBisection) -> NetlistBisection {
        let mut ws = Workspace::new();
        if nl.num_cells() >= 2 {
            ws.netlist_cache.init(nl, &init);
        }
        self.refine_with_cache(nl, &[], &mut init, &mut ws);
        init
    }

    /// Runs one FM pass in place; returns the cut improvement (0 at a
    /// fixpoint).
    ///
    /// Convenience wrapper with a throwaway workspace.
    pub fn pass(&self, nl: &Netlist, p: &mut NetlistBisection) -> u64 {
        if nl.num_cells() < 2 {
            return 0;
        }
        let mut ws = Workspace::new();
        ws.netlist_cache.init(nl, p);
        let (base_tol, pass_tol) = prepare(nl, p, &mut ws);
        self.pass_with_cache(nl, &[], p, &mut ws, base_tol, pass_tol)
    }

    /// Runs passes to a fixpoint assuming `ws.netlist_cache` is already
    /// exact for `(nl, p)`; leaves it exact for the refined `p`.
    /// Returns the number of productive passes. Cells flagged in
    /// `fixed` never move.
    fn refine_with_cache(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        p: &mut NetlistBisection,
        ws: &mut Workspace,
    ) -> u64 {
        if nl.num_cells() < 2 {
            return 0;
        }
        let (base_tol, pass_tol) = prepare(nl, p, ws);
        let mut productive = 0u64;
        for _ in 0..self.max_passes {
            if self.pass_with_cache(nl, fixed, p, ws, base_tol, pass_tol) == 0 {
                break;
            }
            productive += 1;
        }
        productive
    }

    /// One boundary-seeded pass. On entry and exit: `ws.netlist_cache`
    /// is exact for `(nl, p)`, `ws.netlist_work` mirrors `p`,
    /// `ws.fm_buckets` are empty, `ws.locked` is all-false,
    /// `ws.fm_touched` is empty.
    // lint: allow(no-panic) — pass-loop expects: prepare() populated
    // netlist_work before any pass, `choice` is Some only when that bucket
    // had a peek, and the same Option is re-unwrapped at rollback.
    fn pass_with_cache(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        p: &mut NetlistBisection,
        ws: &mut Workspace,
        base_tol: u64,
        pass_tol: u64,
    ) -> u64 {
        let is_fixed = |c: u32| fixed.get(c as usize).copied().unwrap_or(false);
        let cache = &ws.netlist_cache;
        let buckets = &mut ws.fm_buckets;
        let touched = &mut ws.fm_touched;
        // Seed only the boundary: every cell with a cut net. Interior
        // cells have gain ≤ 0 and can only become candidates after a
        // net-mate moves; the update loop below inserts them then. The
        // full-scan reference seeds everything up front instead.
        if self.full_scan {
            for c in nl.cells() {
                if is_fixed(c) {
                    continue;
                }
                buckets[p.side(c).index()].insert(c, cache.gain(c));
                touched.push(c);
            }
        } else {
            for &c in cache.boundary() {
                if is_fixed(c) {
                    continue;
                }
                buckets[p.side(c).index()].insert(c, cache.gain(c));
                touched.push(c);
            }
        }
        let work = ws.netlist_work.as_mut().expect("netlist_work prepared");
        let locked = &mut ws.locked;
        ws.fm_moves.clear();
        let moves = &mut ws.fm_moves;
        ws.fm_cumulative.clear();
        let cumulative = &mut ws.fm_cumulative;
        ws.fm_balanced.clear();
        let balanced_after = &mut ws.fm_balanced;
        let mut running = 0i64;

        loop {
            // Identical candidate choice to the graph FM pass: best
            // gain within the pass tolerance, ties toward the heavier
            // side.
            let mut choice: Option<(i64, Side)> = None;
            for side in [Side::A, Side::B] {
                let Some((gain, c)) = buckets[side.index()].peek_best() else {
                    continue;
                };
                let w = nl.cell_weight(c) as i64;
                let imb = work.weight(Side::A) as i64 - work.weight(Side::B) as i64;
                let new_imb = if side == Side::A {
                    imb - 2 * w
                } else {
                    imb + 2 * w
                };
                if new_imb.unsigned_abs() > pass_tol {
                    continue;
                }
                let heavier = work.weight(side) >= work.weight(side.other());
                match choice {
                    Some((bg, bside)) => {
                        let better = gain > bg
                            || (gain == bg && heavier && work.weight(bside) < work.weight(side));
                        if better {
                            choice = Some((gain, side));
                        }
                    }
                    None => choice = Some((gain, side)),
                }
            }
            let Some((gain, side)) = choice else { break };
            let (_, c) = buckets[side.index()].pop_best().expect("peeked nonempty");
            locked[c as usize] = true;

            // Gain updates before the virtual move: per incident net
            // the per-pin deltas depend only on the pin counts, so
            // compute them once per side and walk the pins only when
            // some delta is nonzero.
            let s = side.index();
            for &net in nl.nets_of(c) {
                let counts = work.pins_on(net);
                let (my, other) = (counts[s], counts[1 - s]);
                let w = nl.net_weight(net) as i64;
                let ds = gain_term(my - 1, other + 1, w) - gain_term(my, other, w);
                let dt = gain_term(other + 1, my - 1, w) - gain_term(other, my, w);
                if ds == 0 && dt == 0 {
                    continue;
                }
                for &q in nl.pins(net) {
                    if q == c || locked[q as usize] || is_fixed(q) {
                        continue;
                    }
                    let delta = if work.side(q) == side { ds } else { dt };
                    if delta == 0 {
                        continue;
                    }
                    let b = &mut buckets[work.side(q).index()];
                    if b.contains(q) {
                        let cur = b.gain_of(q);
                        b.update(q, cur + delta);
                    } else {
                        // q had no moved net-mate yet (only pops remove
                        // bucket entries, and pops lock), so its
                        // virtual gain still equals the cached real
                        // gain.
                        b.insert(q, cache.gain(q) + delta);
                        touched.push(q);
                    }
                }
            }
            work.move_cell(nl, c);
            running += gain;
            moves.push(c);
            cumulative.push(running);
            balanced_after.push(work.weight_imbalance() <= base_tol);
        }

        // Best prefix that ends balanced with positive improvement.
        let mut best: Option<(usize, i64)> = None;
        for (i, (&cum, &ok)) in cumulative.iter().zip(balanced_after.iter()).enumerate() {
            if ok && cum > 0 && best.is_none_or(|(_, bc)| cum > bc) {
                best = Some((i, cum));
            }
        }
        let committed = match best {
            Some((k, _)) => k + 1,
            None => 0,
        };
        let before = p.cut();
        let cache = &mut ws.netlist_cache;
        for &c in &moves[..committed] {
            // record_move wants the pre-move bisection.
            cache.record_move(nl, p, c);
            p.move_cell(nl, c);
        }
        // Rewind the uncommitted virtual tail so netlist_work mirrors
        // `p` again. Each cell moved at most once per pass, so moving
        // it back restores its side regardless of order.
        let work = ws.netlist_work.as_mut().expect("netlist_work prepared");
        for &c in &moves[committed..] {
            work.move_cell(nl, c);
        }
        // O(touched) cleanup instead of O(cells) resets.
        for &c in ws.fm_touched.iter() {
            for b in ws.fm_buckets.iter_mut() {
                if b.contains(c) {
                    b.remove(c);
                }
            }
            ws.locked[c as usize] = false;
        }
        ws.fm_touched.clear();
        debug_assert_eq!(p.cut(), p.recompute_cut(nl));
        debug_assert!(before >= p.cut());
        before - p.cut()
    }
}

/// Per-refine O(cells) setup: tolerances, bucket reset, work mirror,
/// locked/touched clearing. Requires `ws.netlist_cache` exact for
/// `(nl, p)`.
fn prepare(nl: &Netlist, p: &NetlistBisection, ws: &mut Workspace) -> (u64, u64) {
    let n = nl.num_cells();
    let max_weight = nl.cells().map(|c| nl.cell_weight(c)).max().unwrap_or(1);
    let unit = nl.cells().all(|c| nl.cell_weight(c) == 1);
    let base_tol = if unit {
        nl.total_cell_weight() % 2
    } else {
        max_weight
    };
    // During the pass a single move may overshoot balance by one cell:
    // moving weight w changes the side *difference* by 2w, so the
    // classic FM criterion allows a difference up to twice the largest
    // cell weight.
    let pass_tol = base_tol.max(2 * max_weight);
    // A cell's gain is bounded by its weighted net degree: each
    // incident net contributes a value in [−w(net), w(net)].
    let max_gain = nl
        .cells()
        .map(|c| {
            nl.nets_of(c)
                .iter()
                .map(|&net| nl.net_weight(net))
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
        .min(i64::MAX as u64) as i64;
    for b in ws.fm_buckets.iter_mut() {
        b.reset(n, max_gain);
    }
    if let Some(w) = ws.netlist_work.as_mut() {
        w.copy_from(p);
    } else {
        ws.netlist_work = Some(p.clone());
    }
    ws.locked.clear();
    ws.locked.resize(n, false);
    ws.fm_touched.clear();
    (base_tol, pass_tol)
}

impl NetlistRefiner for NetlistFm {
    fn name(&self) -> String {
        "NetFM".into()
    }

    fn refine_counted(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        mut init: NetlistBisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (NetlistBisection, u64) {
        if nl.num_cells() >= 2 {
            ws.netlist_cache.init(nl, &init);
        }
        let passes = self.refine_with_cache(nl, fixed, &mut init, ws);
        (init, passes)
    }

    fn wants_projected_cache(&self) -> bool {
        true
    }

    fn refine_projected_counted(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        mut init: NetlistBisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (NetlistBisection, u64) {
        let passes = self.refine_with_cache(nl, fixed, &mut init, ws);
        (init, passes)
    }
}

/// The compaction heuristic (§V) in its netlist form: match cells along
/// nets, contract once, run [`NetlistFm`] on the coarse netlist,
/// project, rebalance, and refine — the paper's contribution
/// transplanted to the hypergraph objective. A named preset over
/// [`NetlistPipeline`] with [`CoarsenDepth::Levels`]`(1)`.
///
/// # Example
///
/// ```
/// use bisect_core::netlist::CompactedNetlistFm;
/// use bisect_graph::hypergraph::NetlistBuilder;
/// use rand::SeedableRng;
///
/// let mut b = NetlistBuilder::new(6);
/// for pins in [[0u32, 1, 2].as_slice(), &[3, 4, 5], &[2, 3]] {
///     b.add_net(pins).unwrap();
/// }
/// let nl = b.build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = CompactedNetlistFm::new().bisect(&nl, &mut rng);
/// assert_eq!(p.cut(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompactedNetlistFm {
    inner: NetlistFm,
}

impl CompactedNetlistFm {
    /// One level of netlist compaction around [`NetlistFm`].
    pub fn new() -> CompactedNetlistFm {
        CompactedNetlistFm {
            inner: NetlistFm::new(),
        }
    }

    /// Bisects `nl` by compaction.
    pub fn bisect(&self, nl: &Netlist, rng: &mut dyn RngCore) -> NetlistBisection {
        NetlistPipeline::new(CoarsenDepth::Levels(1), self.inner.clone(), "NetCFM")
            // lint: allow(no-panic) — Levels(1) always validates
            .expect("Levels(1) is a valid depth")
            .bisect(nl, rng)
    }
}

/// Multilevel netlist bisection: coarsen by repeated cell matchings,
/// bisect the coarsest netlist, then project and FM-refine level by
/// level — hMETIS avant la lettre, completing the parallel with the
/// graph-side multilevel pipeline. A named preset over
/// [`NetlistPipeline`] with [`CoarsenDepth::ToSize`].
///
/// # Example
///
/// ```
/// use bisect_core::netlist::MultilevelNetlistFm;
/// use bisect_graph::hypergraph::NetlistBuilder;
/// use rand::SeedableRng;
///
/// let mut b = NetlistBuilder::new(8);
/// for pins in [[0u32, 1, 2, 3].as_slice(), &[4, 5, 6, 7], &[3, 4]] {
///     b.add_net(pins).unwrap();
/// }
/// let nl = b.build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ml = MultilevelNetlistFm::new().with_coarsest_size(4);
/// let p = ml.bisect(&nl, &mut rng);
/// assert_eq!(p.cut(), 1); // the clusters contract; only the bridge is cut
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultilevelNetlistFm {
    inner: NetlistFm,
    coarsest_size: usize,
}

impl Default for MultilevelNetlistFm {
    fn default() -> MultilevelNetlistFm {
        MultilevelNetlistFm::new()
    }
}

impl MultilevelNetlistFm {
    /// Multilevel FM coarsening down to at most
    /// [`DEFAULT_COARSEST_SIZE`] cells.
    pub fn new() -> MultilevelNetlistFm {
        MultilevelNetlistFm {
            inner: NetlistFm::new(),
            coarsest_size: DEFAULT_COARSEST_SIZE,
        }
    }

    /// Sets the size at which coarsening stops.
    ///
    /// # Panics
    ///
    /// Panics if `coarsest_size < 2`.
    pub fn with_coarsest_size(mut self, coarsest_size: usize) -> MultilevelNetlistFm {
        assert!(coarsest_size >= 2, "coarsest size must be at least 2");
        self.coarsest_size = coarsest_size;
        self
    }

    /// Bisects `nl` with a full V-cycle.
    pub fn bisect(&self, nl: &Netlist, rng: &mut dyn RngCore) -> NetlistBisection {
        NetlistPipeline::new(
            CoarsenDepth::ToSize(self.coarsest_size),
            self.inner.clone(),
            "NetMLFM",
        )
        // lint: allow(no-panic) — coarsest_size ≥ 2 is enforced at construction
        .expect("coarsest size validated at construction")
        .bisect(nl, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{brute_force_cut, two_clusters};
    use super::*;
    use bisect_graph::hypergraph::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fm_finds_the_bridge_cut() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(3);
        let p = NetlistFm::new().bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 1);
        assert!(p.is_balanced(&nl));
    }

    #[test]
    fn fm_matches_brute_force_on_small_netlists() {
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..20 {
            // Random netlist on 10 cells with 8 nets of 2-4 pins.
            let mut b = NetlistBuilder::new(10);
            for _ in 0..8 {
                let size = rng.gen_range(2..=4usize);
                let mut pins: Vec<u32> = (0..10).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..size]).unwrap();
            }
            let nl = b.build();
            let optimal = brute_force_cut(&nl);
            let mut best = u64::MAX;
            for seed in 0..8 {
                let p = NetlistFm::new().bisect(&nl, &mut StdRng::seed_from_u64(seed));
                assert!(p.cut() >= optimal, "trial {trial}: below optimum");
                best = best.min(p.cut());
            }
            assert!(
                best <= optimal + 1,
                "trial {trial}: FM best {best} far from optimum {optimal}"
            );
        }
    }

    #[test]
    fn full_scan_variant_refines_validly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = NetlistBuilder::new(24);
        for _ in 0..40 {
            let size = rng.gen_range(2..=5usize);
            let mut pins: Vec<u32> = (0..24).collect();
            pins.shuffle(&mut rng);
            b.add_net(&pins[..size]).unwrap();
        }
        let nl = b.build();
        for seed in 0..6 {
            let init = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(seed));
            for fm in [NetlistFm::new(), NetlistFm::new().with_full_scan()] {
                let mut ws = Workspace::new();
                let (p, _) = fm.refine_counted(
                    &nl,
                    &[],
                    init.clone(),
                    &mut StdRng::seed_from_u64(0),
                    &mut ws,
                );
                assert!(p.cut() <= init.cut());
                assert!(p.is_balanced(&nl));
                assert_eq!(p.cut(), p.recompute_cut(&nl));
                // Repeat runs are bit-identical for both seedings.
                let mut ws2 = Workspace::new();
                let (q, _) = fm.refine_counted(
                    &nl,
                    &[],
                    init.clone(),
                    &mut StdRng::seed_from_u64(0),
                    &mut ws2,
                );
                assert_eq!(p.sides(), q.sides());
            }
        }
    }

    #[test]
    fn pass_never_increases_cut() {
        let nl = two_clusters();
        let fm = NetlistFm::new();
        for seed in 0..10 {
            let mut p = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(seed));
            let before = p.cut();
            let improvement = fm.pass(&nl, &mut p);
            assert_eq!(before - p.cut(), improvement);
            assert!(p.is_balanced(&nl));
        }
    }

    #[test]
    fn refine_leaves_cache_exact() {
        let nl = two_clusters();
        let fm = NetlistFm::new();
        let mut ws = Workspace::new();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = NetlistBisection::random_balanced(&nl, &mut rng);
            let (refined, _) = fm.refine_counted(&nl, &[], init, &mut rng, &mut ws);
            for c in nl.cells() {
                assert_eq!(
                    ws.netlist_cache.gain(c),
                    refined.gain(&nl, c),
                    "seed {seed}, cell {c}"
                );
            }
        }
    }

    #[test]
    fn refine_respects_fixed_cells() {
        let nl = two_clusters();
        let fm = NetlistFm::new();
        let mut ws = Workspace::new();
        // Adversarial start: the fixed cells open on the "wrong" sides.
        let init =
            NetlistBisection::from_sides(&nl, vec![false, true, false, true, false, true]).unwrap();
        let fixed = vec![true, false, false, false, false, true];
        let mut rng = StdRng::seed_from_u64(1);
        let (refined, _) = fm.refine_counted(&nl, &fixed, init.clone(), &mut rng, &mut ws);
        assert_eq!(refined.side(0), init.side(0));
        assert_eq!(refined.side(5), init.side(5));
        assert!(refined.cut() <= init.cut());
    }

    #[test]
    fn tiny_netlists() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 0..3usize {
            let nl = NetlistBuilder::new(n).build();
            let p = NetlistFm::new().bisect(&nl, &mut rng);
            assert_eq!(p.cut(), 0);
        }
    }

    #[test]
    fn weighted_nets_and_cells() {
        let mut b = NetlistBuilder::new(4);
        b.add_weighted_net(&[0, 1], 10).unwrap();
        b.add_weighted_net(&[1, 2], 1).unwrap();
        b.add_weighted_net(&[2, 3], 10).unwrap();
        let nl = b.build();
        let mut rng = StdRng::seed_from_u64(2);
        let p = NetlistFm::new().bisect(&nl, &mut rng);
        // Optimal: cut the middle weight-1 net.
        assert_eq!(p.cut(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let _ = NetlistFm::new().with_max_passes(0);
    }

    #[test]
    fn compacted_fm_finds_the_bridge() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(4);
        let p = CompactedNetlistFm::new().bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 1);
        assert!(p.is_balanced(&nl));
    }

    #[test]
    fn compacted_fm_on_netless_cells() {
        let nl = NetlistBuilder::new(8).build();
        let mut rng = StdRng::seed_from_u64(4);
        let p = CompactedNetlistFm::new().bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 0);
        assert!(p.is_balanced(&nl));
    }

    #[test]
    fn compacted_fm_never_beats_brute_force() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let mut b = NetlistBuilder::new(10);
            for _ in 0..8 {
                let size = rng.gen_range(2..=4usize);
                let mut pins: Vec<u32> = (0..10).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..size]).unwrap();
            }
            let nl = b.build();
            let optimal = brute_force_cut(&nl);
            let p = CompactedNetlistFm::new().bisect(&nl, &mut StdRng::seed_from_u64(1));
            assert!(p.cut() >= optimal);
            assert!(p.is_balanced(&nl));
        }
    }

    #[test]
    fn multilevel_fm_finds_the_bridge() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(5);
        let p = MultilevelNetlistFm::new()
            .with_coarsest_size(3)
            .bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 1);
        assert!(p.is_balanced(&nl));
    }

    #[test]
    fn multilevel_fm_valid_on_random_netlists() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let mut b = NetlistBuilder::new(60);
            for _ in 0..80 {
                let size = rng.gen_range(2..=5usize);
                let mut pins: Vec<u32> = (0..60).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..size]).unwrap();
            }
            let nl = b.build();
            let p = MultilevelNetlistFm::new().bisect(&nl, &mut StdRng::seed_from_u64(3));
            assert!(p.is_balanced(&nl));
            assert_eq!(p.cut(), p.recompute_cut(&nl));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn multilevel_rejects_tiny_coarsest() {
        let _ = MultilevelNetlistFm::new().with_coarsest_size(1);
    }

    #[test]
    fn compacted_fm_competitive_on_clusters() {
        // Larger clustered netlist: compacted FM should match plain FM
        // or better on most seeds.
        let mut b = NetlistBuilder::new(40);
        let mut rng = StdRng::seed_from_u64(8);
        for cluster in 0..4 {
            let base = cluster * 10;
            for _ in 0..12 {
                let size = rng.gen_range(2..=4usize);
                let mut pins: Vec<u32> = (base..base + 10).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..size]).unwrap();
            }
        }
        b.add_net(&[9, 10]).unwrap();
        b.add_net(&[19, 20]).unwrap();
        b.add_net(&[29, 30]).unwrap();
        let nl = b.build();
        let mut fm_total = 0u64;
        let mut cfm_total = 0u64;
        for seed in 0..5 {
            fm_total += NetlistFm::new()
                .bisect(&nl, &mut StdRng::seed_from_u64(seed))
                .cut();
            cfm_total += CompactedNetlistFm::new()
                .bisect(&nl, &mut StdRng::seed_from_u64(seed))
                .cut();
        }
        assert!(
            cfm_total <= fm_total + 2,
            "compacted FM ({cfm_total}) should be competitive with FM ({fm_total})"
        );
    }
}
