//! Hypergraph-native bisection: the full multilevel pipeline on
//! netlists.
//!
//! The paper's VLSI motivation minimizes *net cut* — the number of nets
//! (hyperedges) with pins on both sides — which the graph abstraction
//! only approximates (a cut k-pin net contributes up to `⌊k/2⌋·⌈k/2⌉`
//! clique edges). This module mirrors the graph-side stack
//! ([`crate::pipeline`], [`crate::gain_cache`], [`crate::fm`]) on the
//! hypergraph objective:
//!
//! * [`NetlistBisection`] — incremental net-cut bookkeeping (per-net
//!   pin counts per side);
//! * [`NetlistGainCache`] — workspace-resident per-cell gains, cut-net
//!   degrees, and the cell boundary, maintained in `O(pins touched)`
//!   per move and projected coarse→fine across uncoarsening;
//! * [`NetlistFm`] — boundary-seeded Fiduccia-Mattheyses in its native
//!   habitat (single-cell moves, shared gain buckets, balance
//!   tolerance, best balanced prefix per pass), behind the
//!   [`NetlistRefiner`] trait;
//! * [`NetlistPipeline`] — coarsen→partition→refine on netlists, with
//!   [`CompactedNetlistFm`] and [`MultilevelNetlistFm`] as its classic
//!   one-level / full-V-cycle presets;
//! * [`recursive_placement`] — recursive k-way bisection with terminal
//!   propagation, scoring [`NetlistPlacement`]s by net cut and HPWL.
//!
//! The `hypergraph_netlist` example and the `placement` benchmark
//! experiment compare this against bisecting the clique expansion with
//! graph algorithms.

use bisect_graph::hypergraph::{NetId, Netlist};
use bisect_graph::{VertexId, VertexWeight};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use crate::partition::{Side, SideLengthError};
use crate::workspace::Workspace;

mod coarsen;
mod fm;
mod gain_cache;
mod kway;
mod par_fm;
mod pipeline;

pub use coarsen::ParallelCellMatching;
pub use fm::{CompactedNetlistFm, MultilevelNetlistFm, NetlistFm};
pub use gain_cache::NetlistGainCache;
pub use kway::{
    part_regions, recursive_placement, recursive_placement_counted, NetlistPlacement, Rect,
};
pub use par_fm::ParallelNetlistFm;
pub use pipeline::NetlistPipeline;

/// A net's contribution to the FM gain of one of its pins, given the
/// pin counts `mine` (the pin's side, including the pin itself) and
/// `others` (the far side) and the net weight `w`. The single formula
/// shared by [`NetlistBisection::gain`] and the incremental
/// [`NetlistGainCache`] delta updates.
pub(crate) fn gain_term(mine: u32, others: u32, w: i64) -> i64 {
    if others == 0 {
        // Net entirely on the pin's side: moving the pin cuts it,
        // unless the pin is the only one.
        if mine == 1 {
            0
        } else {
            -w
        }
    } else if mine == 1 {
        // The pin is the last one on its side: moving it uncuts the
        // net.
        w
    } else {
        0
    }
}

/// A two-way partition of a netlist's cells with incrementally
/// maintained net cut.
///
/// # Example
///
/// ```
/// use bisect_core::netlist::NetlistBisection;
/// use bisect_graph::hypergraph::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new(4);
/// b.add_net(&[0, 1, 2]).unwrap();
/// b.add_net(&[2, 3]).unwrap();
/// let nl = b.build();
/// let p = NetlistBisection::from_sides(&nl, vec![false, false, true, true]).unwrap();
/// assert_eq!(p.cut(), 1); // the 3-pin net spans; {2,3} sits inside B
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistBisection {
    side: Vec<bool>,
    /// Pins of each net on side A / side B.
    pins_on: Vec<[u32; 2]>,
    cut: u64,
    counts: [usize; 2],
    weights: [VertexWeight; 2],
}

impl NetlistBisection {
    /// Creates a bisection from a raw side vector (`false` = side A).
    ///
    /// # Errors
    ///
    /// Returns [`SideLengthError`] if the length differs from the cell
    /// count.
    pub fn from_sides(nl: &Netlist, side: Vec<bool>) -> Result<NetlistBisection, SideLengthError> {
        if side.len() != nl.num_cells() {
            return Err(SideLengthError {
                got: side.len(),
                expected: nl.num_cells(),
            });
        }
        let mut counts = [0usize; 2];
        let mut weights = [0u64; 2];
        for c in nl.cells() {
            let s = side[c as usize] as usize;
            counts[s] += 1;
            weights[s] += nl.cell_weight(c);
        }
        let mut pins_on = vec![[0u32; 2]; nl.num_nets()];
        let mut cut = 0u64;
        for n in nl.net_ids() {
            for &p in nl.pins(n) {
                pins_on[n as usize][side[p as usize] as usize] += 1;
            }
            if pins_on[n as usize][0] > 0 && pins_on[n as usize][1] > 0 {
                cut += nl.net_weight(n);
            }
        }
        Ok(NetlistBisection {
            side,
            pins_on,
            cut,
            counts,
            weights,
        })
    }

    /// A uniformly random cell-count-balanced bisection.
    pub fn random_balanced<R: Rng + ?Sized>(nl: &Netlist, rng: &mut R) -> NetlistBisection {
        let n = nl.num_cells();
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        perm.shuffle(rng);
        let mut side = vec![true; n];
        for &c in &perm[..n.div_ceil(2)] {
            side[c as usize] = false;
        }
        // lint: allow(no-panic) — side was sized to the cell count just above
        NetlistBisection::from_sides(nl, side).expect("length matches")
    }

    /// The side of cell `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn side(&self, c: VertexId) -> Side {
        if self.side[c as usize] {
            Side::B
        } else {
            Side::A
        }
    }

    /// The raw side vector.
    pub fn sides(&self) -> &[bool] {
        &self.side
    }

    /// Pins of net `n` on side A / side B — the per-net counters behind
    /// the incremental cut, exposed for gain bookkeeping
    /// ([`NetlistGainCache`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn pins_on(&self, n: NetId) -> [u32; 2] {
        self.pins_on[n as usize]
    }

    /// The maintained weighted net cut.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Cells on the given side.
    pub fn count(&self, side: Side) -> usize {
        self.counts[side.index()]
    }

    /// Total cell weight of the given side.
    pub fn weight(&self, side: Side) -> VertexWeight {
        self.weights[side.index()]
    }

    /// Absolute side weight difference.
    pub fn weight_imbalance(&self) -> VertexWeight {
        self.weights[0].abs_diff(self.weights[1])
    }

    /// Whether side weights differ by at most the parity remainder
    /// (unit weights) or the largest cell weight.
    pub fn is_balanced(&self, nl: &Netlist) -> bool {
        let unit = nl.cells().all(|c| nl.cell_weight(c) == 1);
        let tolerance = if unit {
            nl.total_cell_weight() % 2
        } else {
            nl.cells().map(|c| nl.cell_weight(c)).max().unwrap_or(0)
        };
        self.weight_imbalance() <= tolerance
    }

    /// Overwrites `self` with `other`, reusing existing capacity — the
    /// allocation-free analogue of `clone_from` used by the workspace
    /// work-mirror arena.
    pub fn copy_from(&mut self, other: &NetlistBisection) {
        self.side.clear();
        self.side.extend_from_slice(&other.side);
        self.pins_on.clear();
        self.pins_on.extend_from_slice(&other.pins_on);
        self.cut = other.cut;
        self.counts = other.counts;
        self.weights = other.weights;
    }

    /// Recomputes the net cut from scratch (for validation).
    pub fn recompute_cut(&self, nl: &Netlist) -> u64 {
        let mut cut = 0;
        for n in nl.net_ids() {
            let pins = nl.pins(n);
            let has_a = pins.iter().any(|&p| !self.side[p as usize]);
            let has_b = pins.iter().any(|&p| self.side[p as usize]);
            if has_a && has_b {
                cut += nl.net_weight(n);
            }
        }
        cut
    }

    /// The FM gain of moving cell `c`: weighted nets uncut minus nets
    /// newly cut.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for `nl`.
    pub fn gain(&self, nl: &Netlist, c: VertexId) -> i64 {
        nl.nets_of(c)
            .iter()
            .map(|&n| self.net_contribution(nl, n, c))
            .sum()
    }

    /// Net `n`'s contribution to the gain of its pin `c`.
    fn net_contribution(&self, nl: &Netlist, n: NetId, c: VertexId) -> i64 {
        let s = self.side[c as usize] as usize;
        let [my, other] = [self.pins_on[n as usize][s], self.pins_on[n as usize][1 - s]];
        gain_term(my, other, nl.net_weight(n) as i64)
    }

    /// Moves cell `c` to the other side, updating the cut in
    /// `O(nets_of(c))`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range for `nl`.
    pub fn move_cell(&mut self, nl: &Netlist, c: VertexId) {
        let from = self.side[c as usize] as usize;
        let to = 1 - from;
        for &n in nl.nets_of(c) {
            let counts = &mut self.pins_on[n as usize];
            let was_cut = counts[0] > 0 && counts[1] > 0;
            counts[from] -= 1;
            counts[to] += 1;
            let now_cut = counts[0] > 0 && counts[1] > 0;
            match (was_cut, now_cut) {
                (false, true) => self.cut += nl.net_weight(n),
                (true, false) => self.cut -= nl.net_weight(n),
                _ => {}
            }
        }
        self.side[c as usize] = !self.side[c as usize];
        self.counts[from] -= 1;
        self.counts[to] += 1;
        let w = nl.cell_weight(c);
        self.weights[from] -= w;
        self.weights[to] += w;
    }
}

/// A refinement algorithm on netlist bisections, mirroring the
/// graph-side [`crate::bisector::Refiner`] so the
/// [`NetlistPipeline`] engine can drive any implementation through its
/// uncoarsening ladder. `fixed` flags cells that must never move
/// (terminal-propagation anchors); an empty slice fixes nothing.
pub trait NetlistRefiner {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Improves `init`, drawing every scratch buffer from `ws`; returns
    /// the refined bisection and the number of productive passes. Cells
    /// flagged in `fixed` stay on their side.
    fn refine_counted(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        init: NetlistBisection,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (NetlistBisection, u64);

    /// Whether this refiner consumes a workspace gain cache projected
    /// across uncoarsening steps (see
    /// [`NetlistRefiner::refine_projected_counted`]).
    fn wants_projected_cache(&self) -> bool {
        false
    }

    /// As [`NetlistRefiner::refine_counted`], but the workspace gain
    /// cache is already exact for `(nl, init)` — projected from the
    /// previous (coarser) level — and must be left exact for the
    /// returned bisection. Default: ignore the cache and refine
    /// normally.
    fn refine_projected_counted(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        init: NetlistBisection,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (NetlistBisection, u64) {
        self.refine_counted(nl, fixed, init, rng, ws)
    }
}

/// Moves minimum-damage cells from the heavier side until the
/// bisection is balanced — the netlist analogue of
/// [`crate::partition::rebalance`], used after projecting a coarse
/// bisection.
pub fn rebalance(nl: &Netlist, p: &mut NetlistBisection) {
    rebalance_fixed(nl, p, &[]);
}

/// As [`rebalance`], but cells flagged in `fixed` are never moved. An
/// empty slice fixes nothing; a short slice treats missing entries as
/// movable.
pub fn rebalance_fixed(nl: &Netlist, p: &mut NetlistBisection, fixed: &[bool]) {
    let is_fixed = |c: VertexId| fixed.get(c as usize).copied().unwrap_or(false);
    while !p.is_balanced(nl) {
        let heavy = if p.weight(Side::A) > p.weight(Side::B) {
            Side::A
        } else {
            Side::B
        };
        let imbalance = p.weight_imbalance();
        let candidate = nl
            .cells()
            .filter(|&c| p.side(c) == heavy && !is_fixed(c) && nl.cell_weight(c) < imbalance)
            .max_by_key(|&c| (p.gain(nl, c), std::cmp::Reverse(c)));
        match candidate {
            Some(c) => p.move_cell(nl, c),
            None => return, // every movable heavy cell is at least the imbalance
        }
    }
}

/// As [`rebalance_fixed`], but reads gains from — and keeps exact — a
/// [`NetlistGainCache`] that is exact for `(nl, p)` on entry: the
/// netlist analogue of the graph-side cache-maintaining rebalance used
/// between projected-cache refinement levels.
pub fn rebalance_with_cache(
    nl: &Netlist,
    p: &mut NetlistBisection,
    fixed: &[bool],
    cache: &mut NetlistGainCache,
) {
    let is_fixed = |c: VertexId| fixed.get(c as usize).copied().unwrap_or(false);
    while !p.is_balanced(nl) {
        let heavy = if p.weight(Side::A) > p.weight(Side::B) {
            Side::A
        } else {
            Side::B
        };
        let imbalance = p.weight_imbalance();
        let candidate = nl
            .cells()
            .filter(|&c| p.side(c) == heavy && !is_fixed(c) && nl.cell_weight(c) < imbalance)
            .max_by_key(|&c| (cache.gain(c), std::cmp::Reverse(c)));
        match candidate {
            Some(c) => {
                cache.record_move(nl, p, c);
                p.move_cell(nl, c);
            }
            None => return,
        }
    }
}

/// A random bisection balanced by cell weight (greedy lighter-side
/// assignment in random order).
pub(crate) fn weight_balanced_random<R: Rng + ?Sized>(
    nl: &Netlist,
    rng: &mut R,
) -> NetlistBisection {
    weight_balanced_random_fixed(nl, &[], rng)
}

/// As [`weight_balanced_random`], but cells with a `Some(side)` entry
/// in `fixed` are pinned to that side (and counted toward its weight)
/// before the movable cells are greedily assigned. An empty slice fixes
/// nothing; a short slice treats missing entries as movable.
pub(crate) fn weight_balanced_random_fixed<R: Rng + ?Sized>(
    nl: &Netlist,
    fixed: &[Option<Side>],
    rng: &mut R,
) -> NetlistBisection {
    let n = nl.num_cells();
    let mut side = vec![false; n];
    let mut weights = [0u64; 2];
    let mut movable: Vec<VertexId> = Vec::with_capacity(n);
    for c in nl.cells() {
        match fixed.get(c as usize).copied().flatten() {
            Some(s) => {
                side[c as usize] = s == Side::B;
                weights[s.index()] += nl.cell_weight(c);
            }
            None => movable.push(c),
        }
    }
    movable.shuffle(rng);
    for &c in &movable {
        let target = usize::from(weights[1] < weights[0]);
        side[c as usize] = target == 1;
        weights[target] += nl.cell_weight(c);
    }
    // lint: allow(no-panic) — side was sized to the cell count just above
    NetlistBisection::from_sides(nl, side).expect("length matches")
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use bisect_graph::hypergraph::NetlistBuilder;

    /// Two 3-cell clusters joined by one bridge net.
    pub(crate) fn two_clusters() -> Netlist {
        let mut b = NetlistBuilder::new(6);
        b.add_net(&[0, 1, 2]).unwrap();
        b.add_net(&[0, 1]).unwrap();
        b.add_net(&[3, 4, 5]).unwrap();
        b.add_net(&[4, 5]).unwrap();
        b.add_net(&[2, 3]).unwrap();
        b.build()
    }

    /// The optimal balanced net cut by exhaustive enumeration (≤ 16
    /// cells).
    pub(crate) fn brute_force_cut(nl: &Netlist) -> u64 {
        let n = nl.num_cells();
        assert!(n <= 16);
        let half = n.div_ceil(2);
        let mut best = u64::MAX;
        for mask in 0..1u32 << n {
            if mask.count_ones() as usize != half {
                continue;
            }
            let sides: Vec<bool> = (0..n).map(|c| mask >> c & 1 == 0).collect();
            let cut = NetlistBisection::from_sides(nl, sides).unwrap().cut();
            best = best.min(cut);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::two_clusters;
    use super::*;
    use bisect_graph::hypergraph::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cut_counts_spanning_nets_once() {
        let nl = two_clusters();
        let p =
            NetlistBisection::from_sides(&nl, vec![false, false, false, true, true, true]).unwrap();
        assert_eq!(p.cut(), 1);
        let q =
            NetlistBisection::from_sides(&nl, vec![false, true, false, true, false, true]).unwrap();
        assert_eq!(q.cut(), q.recompute_cut(&nl));
        assert_eq!(q.cut(), 5);
    }

    #[test]
    fn from_sides_rejects_wrong_length() {
        let nl = two_clusters();
        assert!(NetlistBisection::from_sides(&nl, vec![false; 3]).is_err());
    }

    #[test]
    fn gain_matches_definition() {
        let nl = two_clusters();
        let p =
            NetlistBisection::from_sides(&nl, vec![false, false, false, true, true, true]).unwrap();
        // Moving cell 2: cuts nets {0,1,2}; uncuts the bridge {2,3}.
        assert_eq!(p.gain(&nl, 2), 0);
        // Moving cell 0: cuts {0,1,2} and {0,1}: -2.
        assert_eq!(p.gain(&nl, 0), -2);
    }

    #[test]
    fn pins_on_tracks_moves() {
        let nl = two_clusters();
        let mut p =
            NetlistBisection::from_sides(&nl, vec![false, false, false, true, true, true]).unwrap();
        assert_eq!(p.pins_on(0), [3, 0]);
        assert_eq!(p.pins_on(4), [1, 1]);
        p.move_cell(&nl, 2);
        assert_eq!(p.pins_on(0), [2, 1]);
        assert_eq!(p.pins_on(4), [0, 2]);
    }

    #[test]
    fn move_cell_keeps_cut_consistent() {
        let nl = two_clusters();
        let mut p = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(1));
        for c in [0u32, 3, 2, 5, 0, 1] {
            let gain = p.gain(&nl, c);
            let before = p.cut();
            p.move_cell(&nl, c);
            assert_eq!(p.cut(), p.recompute_cut(&nl), "after moving {c}");
            assert_eq!(
                before as i64 - p.cut() as i64,
                gain,
                "gain mismatch for {c}"
            );
        }
    }

    #[test]
    fn copy_from_matches_clone() {
        let nl = two_clusters();
        let a = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(7));
        let mut b = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(8));
        b.move_cell(&nl, 0);
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_nets_never_cut() {
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[]).unwrap();
        b.add_net(&[2]).unwrap();
        b.add_net(&[0, 1, 2, 3]).unwrap();
        let nl = b.build();
        let p = NetlistBisection::from_sides(&nl, vec![false, false, true, true]).unwrap();
        assert_eq!(p.cut(), 1); // only the 4-pin net spans
        let mut rng = StdRng::seed_from_u64(1);
        let q = NetlistFm::new().bisect(&nl, &mut rng);
        assert_eq!(q.cut(), q.recompute_cut(&nl));
    }

    #[test]
    fn rebalance_netlist_reaches_balance() {
        let nl = two_clusters();
        let mut p = NetlistBisection::from_sides(&nl, vec![false; 6]).unwrap();
        rebalance(&nl, &mut p);
        assert!(p.is_balanced(&nl));
        assert_eq!(p.cut(), p.recompute_cut(&nl));
    }

    #[test]
    fn rebalance_fixed_respects_pins() {
        let nl = two_clusters();
        // Everything on side A; cells 0 and 1 are pinned there.
        let mut p = NetlistBisection::from_sides(&nl, vec![false; 6]).unwrap();
        let fixed = vec![true, true, false, false, false, false];
        rebalance_fixed(&nl, &mut p, &fixed);
        assert!(p.is_balanced(&nl));
        assert_eq!(p.side(0), Side::A);
        assert_eq!(p.side(1), Side::A);
    }

    #[test]
    fn rebalance_with_cache_matches_plain() {
        let nl = two_clusters();
        let mut plain = NetlistBisection::from_sides(&nl, vec![false; 6]).unwrap();
        let mut cached = plain.clone();
        let mut cache = NetlistGainCache::default();
        cache.init(&nl, &cached);
        rebalance(&nl, &mut plain);
        rebalance_with_cache(&nl, &mut cached, &[], &mut cache);
        assert_eq!(plain, cached);
        for c in nl.cells() {
            assert_eq!(cache.gain(c), cached.gain(&nl, c));
        }
    }

    #[test]
    fn weight_balanced_random_fixed_pins_sides() {
        let nl = two_clusters();
        let fixed = vec![Some(Side::B), None, None, Some(Side::A), None, None];
        for seed in 0..8 {
            let p = weight_balanced_random_fixed(&nl, &fixed, &mut StdRng::seed_from_u64(seed));
            assert_eq!(p.side(0), Side::B, "seed {seed}");
            assert_eq!(p.side(3), Side::A, "seed {seed}");
            assert_eq!(p.cut(), p.recompute_cut(&nl));
        }
    }

    #[test]
    fn weight_balanced_random_empty_fixed_is_plain() {
        let nl = two_clusters();
        let a = weight_balanced_random(&nl, &mut StdRng::seed_from_u64(11));
        let b = weight_balanced_random_fixed(&nl, &[], &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
