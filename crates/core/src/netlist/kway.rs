//! Recursive k-way netlist partitioning with terminal propagation —
//! the placement-flavored counterpart of [`crate::pipeline::kway`].
//!
//! The unit square is split recursively into `parts` rectangular
//! regions (always along the longer dimension), and the netlist is
//! bisected recursively in lockstep: the cells assigned to a region
//! are bisected again between its two halves. Each sub-bisection runs
//! with *terminal propagation* (Dunlop & Kernighan, 1985): two fixed
//! anchor cells — one per half — join the subproblem, and every net
//! with pins outside the subproblem gains the anchor nearer those
//! external pins' mean position. Cuts that would separate a cell from
//! its external net-mates are thereby penalized in the FM gains, which
//! is what makes recursive bisection placement-aware instead of
//! cut-greedy.
//!
//! The result is a [`NetlistPlacement`]: a part label per cell plus
//! the part regions, scoring both the k-way **net cut** and the
//! half-perimeter wirelength (**HPWL**) of every net over its pins'
//! region centers.

use bisect_graph::hypergraph::{Netlist, NetlistBuilder};
use bisect_graph::VertexId;
use rand::RngCore;
use std::collections::VecDeque;

use crate::error::BisectError;
use crate::partition::Side;
use crate::workspace::Workspace;

use super::{NetlistBisection, NetlistPipeline};

/// An axis-aligned rectangle in the abstract placement plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// The unit square `[0, 1] × [0, 1]`.
    pub fn unit() -> Rect {
        Rect {
            x0: 0.0,
            y0: 0.0,
            x1: 1.0,
            y1: 1.0,
        }
    }

    /// The center point.
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Splits the rectangle in half along its longer dimension
    /// (vertically on ties), returning the lower-coordinate half first.
    pub fn split(&self) -> (Rect, Rect) {
        if self.x1 - self.x0 >= self.y1 - self.y0 {
            let mid = (self.x0 + self.x1) / 2.0;
            (Rect { x1: mid, ..*self }, Rect { x0: mid, ..*self })
        } else {
            let mid = (self.y0 + self.y1) / 2.0;
            (Rect { y1: mid, ..*self }, Rect { y0: mid, ..*self })
        }
    }
}

/// The regions the unit square is split into for a `parts`-way
/// placement, indexed by part label. Deterministic: region `base` of a
/// split takes the lower-coordinate half, region `base + count/2` the
/// upper — the same numbering [`recursive_placement`] assigns.
///
/// # Panics
///
/// Panics unless `parts` is a positive power of two.
pub fn part_regions(parts: usize) -> Vec<Rect> {
    assert!(
        parts > 0 && parts.is_power_of_two(),
        "part count must be a positive power of two, got {parts}"
    );
    let mut regions = vec![Rect::unit(); parts];
    // Iterative halving: after each round every region of the previous
    // round is split once, lower half keeping the label.
    let mut count = parts;
    while count > 1 {
        let stride = count / 2;
        let mut base = 0;
        while base < parts {
            let (lo, hi) = regions[base].split();
            regions[base] = lo;
            regions[base + stride] = hi;
            base += count;
        }
        count = stride;
    }
    regions
}

/// A k-way placement of a netlist: a part label per cell plus the part
/// regions in the unit square.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistPlacement {
    labels: Vec<u32>,
    num_parts: usize,
    regions: Vec<Rect>,
}

impl NetlistPlacement {
    /// Builds a placement from explicit labels — used to score
    /// partitions produced by other means (e.g. the clique-expansion
    /// pipeline) with the same net-cut and HPWL yardsticks.
    ///
    /// # Errors
    ///
    /// [`BisectError::InvalidPartCount`] unless `parts` is a positive
    /// power of two; [`BisectError::InvalidConfig`] if the label vector
    /// length differs from the cell count or a label is out of range.
    pub fn from_labels(
        nl: &Netlist,
        labels: Vec<u32>,
        parts: usize,
    ) -> Result<NetlistPlacement, BisectError> {
        if parts == 0 || !parts.is_power_of_two() {
            return Err(BisectError::InvalidPartCount { parts });
        }
        if labels.len() != nl.num_cells() {
            return Err(BisectError::InvalidConfig(format!(
                "expected {} labels, got {}",
                nl.num_cells(),
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l as usize >= parts) {
            return Err(BisectError::InvalidConfig(format!(
                "label {bad} out of range for {parts} parts"
            )));
        }
        Ok(NetlistPlacement {
            labels,
            num_parts: parts,
            regions: part_regions(parts),
        })
    }

    /// The part of cell `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn part(&self, c: VertexId) -> u32 {
        self.labels[c as usize]
    }

    /// The per-cell part labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// The region of each part, indexed by label.
    pub fn regions(&self) -> &[Rect] {
        &self.regions
    }

    /// Cells per part, indexed by label.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// The weighted k-way net cut: total weight of nets with pins in
    /// more than one part.
    pub fn net_cut(&self, nl: &Netlist) -> u64 {
        let mut cut = 0u64;
        for n in nl.net_ids() {
            let pins = nl.pins(n);
            let Some((&first, rest)) = pins.split_first() else {
                continue;
            };
            let label = self.labels[first as usize];
            if rest.iter().any(|&p| self.labels[p as usize] != label) {
                cut += nl.net_weight(n);
            }
        }
        cut
    }

    /// The weighted half-perimeter wirelength: for every net, the
    /// width plus height of the bounding box of its pins' region
    /// centers, weighted by the net weight. The standard placement
    /// quality proxy — unlike net cut it also charges *how far apart*
    /// a cut net's parts ended up.
    pub fn hpwl(&self, nl: &Netlist) -> f64 {
        let mut total = 0.0f64;
        for n in nl.net_ids() {
            let pins = nl.pins(n);
            if pins.len() < 2 {
                continue;
            }
            let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
            let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for &p in pins {
                let (x, y) = self.regions[self.labels[p as usize] as usize].center();
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
            }
            total += nl.net_weight(n) as f64 * ((max_x - min_x) + (max_y - min_y));
        }
        total
    }
}

/// Recursively bisects `nl` into `parts` regions with terminal
/// propagation; see the [module docs](self) for the scheme.
///
/// # Errors
///
/// [`BisectError::InvalidPartCount`] unless `parts` is a positive
/// power of two.
pub fn recursive_placement(
    pipeline: &NetlistPipeline,
    nl: &Netlist,
    parts: usize,
    rng: &mut dyn RngCore,
    ws: &mut Workspace,
) -> Result<NetlistPlacement, BisectError> {
    recursive_placement_counted(pipeline, nl, parts, rng, ws).map(|(p, _)| p)
}

/// As [`recursive_placement`], also returning the summed
/// productive-pass count of every sub-bisection.
///
/// # Errors
///
/// [`BisectError::InvalidPartCount`] unless `parts` is a positive
/// power of two.
// lint: allow(no-panic) — indexing stays in range: i < m, local pins are
// < m + 2, and netlist cell weights are ≥ 1.
pub fn recursive_placement_counted(
    pipeline: &NetlistPipeline,
    nl: &Netlist,
    parts: usize,
    rng: &mut dyn RngCore,
    ws: &mut Workspace,
) -> Result<(NetlistPlacement, u64), BisectError> {
    if parts == 0 || !parts.is_power_of_two() {
        return Err(BisectError::InvalidPartCount { parts });
    }
    let n = nl.num_cells();
    let levels = parts.trailing_zeros();
    let mut labels = vec![0u32; n];
    let mut work = 0u64;
    // Current region center of every cell, refined as the recursion
    // deepens — the positions terminal propagation reads for pins
    // outside the active subproblem.
    let mut centers: Vec<(f64, f64)> = vec![Rect::unit().center(); n];
    // Scratch reused across subproblems: fine→local cell ids and a
    // seen-stamp per net, reset via the touched lists.
    let mut local = vec![u32::MAX; n];
    let mut net_seen = vec![false; nl.num_nets()];
    let mut seen_nets: Vec<u32> = Vec::new();
    let mut pins_local: Vec<u32> = Vec::new();

    // Breadth-first over (cells, region, first label, levels left):
    // whole levels settle before the next descends, so external pins
    // sit at the finest centers available when a subproblem reads them.
    let mut queue: VecDeque<(Vec<VertexId>, Rect, u32, u32)> = VecDeque::new();
    queue.push_back((nl.cells().collect(), Rect::unit(), 0, levels));
    while let Some((cells, rect, base, levels_left)) = queue.pop_front() {
        if levels_left == 0 {
            for &c in &cells {
                labels[c as usize] = base;
            }
            continue;
        }
        let (r0, r1) = rect.split();
        let m = cells.len();
        // Sub-netlist: the subproblem's cells (locally renumbered) plus
        // two weight-1 anchor cells, `m` fixed to side A / region `r0`
        // and `m + 1` to side B / region `r1`.
        for (i, &c) in cells.iter().enumerate() {
            local[c as usize] = i as u32;
        }
        let mut builder = NetlistBuilder::new(m + 2);
        for (i, &c) in cells.iter().enumerate() {
            builder
                .set_cell_weight(i as u32, nl.cell_weight(c))
                .expect("local id in range, weight positive");
        }
        let (c0x, c0y) = r0.center();
        let (c1x, c1y) = r1.center();
        for &c in &cells {
            for &net in nl.nets_of(c) {
                if net_seen[net as usize] {
                    continue;
                }
                net_seen[net as usize] = true;
                seen_nets.push(net);
                pins_local.clear();
                let mut ext = 0usize;
                let (mut sx, mut sy) = (0.0f64, 0.0f64);
                for &q in nl.pins(net) {
                    let l = local[q as usize];
                    if l != u32::MAX {
                        pins_local.push(l);
                    } else {
                        ext += 1;
                        let (x, y) = centers[q as usize];
                        sx += x;
                        sy += y;
                    }
                }
                // Terminal propagation: a net with external pins gains
                // the anchor of the child region nearer their mean
                // position (no anchor on ties).
                if ext > 0 {
                    let (ex, ey) = (sx / ext as f64, sy / ext as f64);
                    let d0 = (ex - c0x) * (ex - c0x) + (ey - c0y) * (ey - c0y);
                    let d1 = (ex - c1x) * (ex - c1x) + (ey - c1y) * (ey - c1y);
                    if d0 < d1 {
                        pins_local.push(m as u32);
                    } else if d1 < d0 {
                        pins_local.push(m as u32 + 1);
                    }
                }
                if pins_local.len() >= 2 {
                    builder
                        .add_weighted_net(&pins_local, nl.net_weight(net))
                        .expect("local pins in range, weight positive");
                }
            }
        }
        for &c in &cells {
            local[c as usize] = u32::MAX;
        }
        for &net in &seen_nets {
            net_seen[net as usize] = false;
        }
        seen_nets.clear();
        let sub = builder.build();
        let anchors = [(m as u32, Side::A), (m as u32 + 1, Side::B)];
        let (bisection, stage) = pipeline.bisect_fixed_counted(&sub, &anchors, rng, ws);
        work += stage;

        let mut left: Vec<VertexId> = Vec::with_capacity(m.div_ceil(2));
        let mut right: Vec<VertexId> = Vec::with_capacity(m.div_ceil(2));
        for (i, &c) in cells.iter().enumerate() {
            if bisection.side(i as u32) == Side::A {
                centers[c as usize] = r0.center();
                left.push(c);
            } else {
                centers[c as usize] = r1.center();
                right.push(c);
            }
        }
        let half = (1u32 << levels_left) / 2;
        queue.push_back((left, r0, base, levels_left - 1));
        queue.push_back((right, r1, base + half, levels_left - 1));
    }
    let placement = NetlistPlacement {
        labels,
        num_parts: parts,
        regions: part_regions(parts),
    };
    Ok((placement, work))
}

/// Keeps `NetlistBisection` nameable in rustdoc links above.
#[allow(unused_imports)]
use NetlistBisection as _NetlistBisectionDocAnchor;

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_graph::hypergraph::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn random_netlist(cells: usize, nets: usize, seed: u64) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new(cells);
        for _ in 0..nets {
            let size = rng.gen_range(2..=5usize);
            let mut pins: Vec<u32> = (0..cells as u32).collect();
            pins.shuffle(&mut rng);
            b.add_net(&pins[..size]).unwrap();
        }
        b.build()
    }

    #[test]
    fn part_regions_tile_the_unit_square() {
        for parts in [1usize, 2, 4, 8, 16] {
            let regions = part_regions(parts);
            assert_eq!(regions.len(), parts);
            let area: f64 = regions.iter().map(|r| (r.x1 - r.x0) * (r.y1 - r.y0)).sum();
            assert!((area - 1.0).abs() < 1e-12, "{parts} parts: area {area}");
            // Pairwise-distinct centers ⇒ regions do not coincide.
            for (i, a) in regions.iter().enumerate() {
                for b in &regions[i + 1..] {
                    assert_ne!(a.center(), b.center(), "{parts} parts");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn part_regions_reject_non_power() {
        let _ = part_regions(3);
    }

    #[test]
    fn placement_covers_all_cells_and_parts() {
        let nl = random_netlist(64, 90, 5);
        let pipeline = NetlistPipeline::multilevel_fm_to(8).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ws = Workspace::new();
        let p = recursive_placement(&pipeline, &nl, 8, &mut rng, &mut ws).unwrap();
        assert_eq!(p.labels().len(), 64);
        assert_eq!(p.num_parts(), 8);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        assert!(sizes.iter().all(|&s| s > 0), "empty part in {sizes:?}");
        // Unit weights and balanced bisections: parts stay near even.
        assert!(sizes.iter().all(|&s| s <= 64 / 8 + 3), "skewed {sizes:?}");
        assert!(p.hpwl(&nl) > 0.0);
        assert!(p.net_cut(&nl) > 0);
    }

    #[test]
    fn placement_is_deterministic() {
        let nl = random_netlist(48, 60, 7);
        let pipeline = NetlistPipeline::multilevel_fm_to(6).unwrap();
        let run = || {
            let mut rng = StdRng::seed_from_u64(11);
            recursive_placement(&pipeline, &nl, 4, &mut rng, &mut Workspace::new()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn one_part_is_trivial() {
        let nl = random_netlist(10, 8, 1);
        let pipeline = NetlistPipeline::flat_fm();
        let mut rng = StdRng::seed_from_u64(1);
        let p = recursive_placement(&pipeline, &nl, 1, &mut rng, &mut Workspace::new()).unwrap();
        assert!(p.labels().iter().all(|&l| l == 0));
        assert_eq!(p.net_cut(&nl), 0);
        assert_eq!(p.hpwl(&nl), 0.0);
    }

    #[test]
    fn invalid_part_counts_rejected() {
        let nl = random_netlist(8, 6, 1);
        let pipeline = NetlistPipeline::flat_fm();
        for parts in [0usize, 3, 6] {
            let mut rng = StdRng::seed_from_u64(1);
            let r = recursive_placement(&pipeline, &nl, parts, &mut rng, &mut Workspace::new());
            assert!(matches!(r, Err(BisectError::InvalidPartCount { .. })));
        }
    }

    #[test]
    fn net_cut_matches_manual_recount() {
        let nl = random_netlist(32, 40, 3);
        let pipeline = NetlistPipeline::compacted_fm();
        let mut rng = StdRng::seed_from_u64(4);
        let p = recursive_placement(&pipeline, &nl, 4, &mut rng, &mut Workspace::new()).unwrap();
        let mut expected = 0u64;
        for n in nl.net_ids() {
            let labels: Vec<u32> = nl.pins(n).iter().map(|&q| p.part(q)).collect();
            if labels.windows(2).any(|w| w[0] != w[1]) {
                expected += nl.net_weight(n);
            }
        }
        assert_eq!(p.net_cut(&nl), expected);
    }

    #[test]
    fn from_labels_round_trips() {
        let nl = random_netlist(24, 30, 9);
        let pipeline = NetlistPipeline::multilevel_fm_to(4).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let p = recursive_placement(&pipeline, &nl, 4, &mut rng, &mut Workspace::new()).unwrap();
        let q = NetlistPlacement::from_labels(&nl, p.labels().to_vec(), 4).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.net_cut(&nl), q.net_cut(&nl));
        assert_eq!(p.hpwl(&nl), q.hpwl(&nl));
    }

    #[test]
    fn from_labels_validates() {
        let nl = random_netlist(6, 5, 2);
        assert!(matches!(
            NetlistPlacement::from_labels(&nl, vec![0; 6], 3),
            Err(BisectError::InvalidPartCount { .. })
        ));
        assert!(matches!(
            NetlistPlacement::from_labels(&nl, vec![0; 5], 4),
            Err(BisectError::InvalidConfig(_))
        ));
        assert!(matches!(
            NetlistPlacement::from_labels(&nl, vec![7; 6], 4),
            Err(BisectError::InvalidConfig(_))
        ));
    }

    #[test]
    fn terminal_propagation_prefers_external_neighbors() {
        // Two dense 8-cell clusters bridged by many 2-pin nets: with 4
        // parts the recursion should keep each cluster contiguous and
        // place bridged cells in adjacent regions most of the time —
        // weak signal, so just require validity plus a sane HPWL.
        let mut b = NetlistBuilder::new(16);
        let mut rng = StdRng::seed_from_u64(12);
        for base in [0u32, 8] {
            for _ in 0..14 {
                let mut pins: Vec<u32> = (base..base + 8).collect();
                pins.shuffle(&mut rng);
                b.add_net(&pins[..3]).unwrap();
            }
        }
        for i in 0..4u32 {
            b.add_net(&[i, i + 8]).unwrap();
        }
        let nl = b.build();
        let pipeline = NetlistPipeline::multilevel_fm_to(4).unwrap();
        let mut r = StdRng::seed_from_u64(3);
        let p = recursive_placement(&pipeline, &nl, 4, &mut r, &mut Workspace::new()).unwrap();
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 16);
        assert!(p.hpwl(&nl).is_finite());
    }
}
