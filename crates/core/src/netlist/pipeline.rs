//! The coarsen → partition → refine engine on netlists — the
//! hypergraph counterpart of [`crate::pipeline`]'s graph engine, sharing
//! its [`CoarsenDepth`] vocabulary and its projected-cache protocol.
//!
//! Coarsening contracts random cell matchings along nets (hMETIS-style
//! pin-connectivity scores, see
//! [`bisect_graph::hypergraph::random_cell_matching`]); the coarsest
//! netlist gets a weight-balanced random bisection; refinement walks
//! the ladder back up, projecting sides — and, for refiners that opt
//! in, the [`super::NetlistGainCache`] — level by level.
//!
//! The engine additionally supports *fixed cells*: cells pinned to a
//! side that never match, never move, and survive every coarsening
//! level as singletons. [`super::recursive_placement`] uses this for
//! terminal propagation, fixing one anchor cell per side whose nets
//! bias the gains of cells connected outside the current subproblem.

use std::sync::Arc;

use bisect_graph::hypergraph::{
    contract_cells, random_cell_matching_with_skip, Netlist, NetlistContraction,
};
use bisect_graph::VertexId;
use rand::RngCore;

use crate::error::BisectError;
use crate::partition::Side;
use crate::pipeline::{CoarsenDepth, DEFAULT_COARSEST_SIZE};
use crate::workspace::Workspace;

use super::{
    rebalance_fixed, rebalance_with_cache, weight_balanced_random_fixed, NetlistBisection,
    NetlistFm, NetlistRefiner,
};

/// A named, reusable netlist bisection pipeline: a [`CoarsenDepth`]
/// plus a [`NetlistRefiner`], mirroring the graph-side
/// [`crate::pipeline::Pipeline`] descriptor.
///
/// # Example
///
/// ```
/// use bisect_core::netlist::NetlistPipeline;
/// use bisect_graph::hypergraph::NetlistBuilder;
/// use rand::SeedableRng;
///
/// let mut b = NetlistBuilder::new(8);
/// for pins in [[0u32, 1, 2, 3].as_slice(), &[4, 5, 6, 7], &[3, 4]] {
///     b.add_net(pins).unwrap();
/// }
/// let nl = b.build();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = NetlistPipeline::multilevel_fm().bisect(&nl, &mut rng);
/// assert!(p.is_balanced(&nl));
/// ```
#[derive(Clone)]
pub struct NetlistPipeline {
    depth: CoarsenDepth,
    refiner: Arc<dyn NetlistRefiner + Send + Sync>,
    name: String,
}

impl std::fmt::Debug for NetlistPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistPipeline")
            .field("name", &self.name)
            .field("depth", &self.depth)
            .field("refiner", &self.refiner.name())
            .finish()
    }
}

impl NetlistPipeline {
    /// A pipeline from a coarsening depth, a refiner, and a display
    /// name.
    ///
    /// # Errors
    ///
    /// Returns [`BisectError::InvalidConfig`] for
    /// [`CoarsenDepth::ToSize`] targets below 2.
    pub fn new<R: NetlistRefiner + Send + Sync + 'static>(
        depth: CoarsenDepth,
        refiner: R,
        name: impl Into<String>,
    ) -> Result<NetlistPipeline, BisectError> {
        Ok(NetlistPipeline {
            depth: depth.validate()?,
            refiner: Arc::new(refiner),
            name: name.into(),
        })
    }

    /// [`NetlistFm`] directly on the input netlist (no coarsening).
    pub fn flat_fm() -> NetlistPipeline {
        NetlistPipeline::new(CoarsenDepth::Flat, NetlistFm::new(), "NetFM")
            // lint: allow(no-panic) — Flat always validates
            .expect("Flat is a valid depth")
    }

    /// One compaction level around [`NetlistFm`] (the paper's §V on the
    /// hypergraph objective).
    pub fn compacted_fm() -> NetlistPipeline {
        NetlistPipeline::new(CoarsenDepth::Levels(1), NetlistFm::new(), "NetCFM")
            // lint: allow(no-panic) — Levels(1) always validates
            .expect("Levels(1) is a valid depth")
    }

    /// A full multilevel V-cycle around [`NetlistFm`], coarsening to
    /// [`DEFAULT_COARSEST_SIZE`] cells.
    pub fn multilevel_fm() -> NetlistPipeline {
        NetlistPipeline::multilevel_fm_to(DEFAULT_COARSEST_SIZE)
            // lint: allow(no-panic) — the default coarsest size is ≥ 2
            .expect("default coarsest size is valid")
    }

    /// As [`NetlistPipeline::multilevel_fm`] with an explicit coarsest
    /// size.
    ///
    /// # Errors
    ///
    /// Returns [`BisectError::InvalidConfig`] if `coarsest_size < 2`.
    pub fn multilevel_fm_to(coarsest_size: usize) -> Result<NetlistPipeline, BisectError> {
        NetlistPipeline::new(
            CoarsenDepth::ToSize(coarsest_size),
            NetlistFm::new(),
            "NetMLFM",
        )
    }

    /// The pipeline's display name (benchmark tables, reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bisects `nl` with a throwaway workspace.
    pub fn bisect(&self, nl: &Netlist, rng: &mut dyn RngCore) -> NetlistBisection {
        self.bisect_counted(nl, rng, &mut Workspace::new()).0
    }

    /// Bisects `nl`, drawing scratch memory from `ws`; returns the
    /// bisection and the summed productive-pass count of every
    /// refinement stage.
    pub fn bisect_counted(
        &self,
        nl: &Netlist,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (NetlistBisection, u64) {
        self.bisect_fixed_counted(nl, &[], rng, ws)
    }

    /// As [`NetlistPipeline::bisect_counted`], with cells pinned to
    /// sides: each `(cell, side)` pair is excluded from matching and
    /// movement at every level, so the returned bisection honors every
    /// assignment. Duplicate pairs must agree.
    ///
    /// # Panics
    ///
    /// Panics if a fixed cell is out of range or assigned both sides.
    pub fn bisect_fixed_counted(
        &self,
        nl: &Netlist,
        fixed: &[(VertexId, Side)],
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (NetlistBisection, u64) {
        run(self.depth, self.refiner.as_ref(), nl, fixed, rng, ws)
    }
}

/// The engine. Mirrors the graph-side `pipeline::engine::run` step for
/// step: (1) one matching per coarsening level, finest first, with
/// fixed cells skipped; (2) a weight-balanced random bisection of the
/// coarsest netlist honoring fixed sides (or, in `Levels` mode with no
/// coarsening progress and nothing fixed, the legacy fallback of a
/// plain random start); (3) one refinement per level, coarsest first,
/// each from the projected and rebalanced bisection of the level below,
/// with the gain cache projected alongside for refiners that opt in.
// lint: allow(no-panic) — V-cycle shape invariants: fixed_ladder has one
// entry per level, the ladder is non-empty when indexed, and
// project_sides returns one entry per fine cell.
fn run(
    depth: CoarsenDepth,
    refiner: &(dyn NetlistRefiner + Send + Sync),
    nl: &Netlist,
    fixed_pairs: &[(VertexId, Side)],
    rng: &mut dyn RngCore,
    ws: &mut Workspace,
) -> (NetlistBisection, u64) {
    let n = nl.num_cells();
    let has_fixed = !fixed_pairs.is_empty();
    let mut fixed0: Vec<Option<Side>> = vec![None; if has_fixed { n } else { 0 }];
    for &(c, s) in fixed_pairs {
        assert!(
            (c as usize) < n,
            "fixed cell {c} out of range for {n} cells"
        );
        let slot = &mut fixed0[c as usize];
        assert!(
            slot.is_none() || *slot == Some(s),
            "cell {c} fixed to both sides"
        );
        *slot = Some(s);
    }

    // Coarsening ladder, finest first; `fixed_ladder[i]` holds the
    // per-cell side pins of level `i`'s netlist (level 0 = input).
    // Fixed cells are skipped by the matcher, so each survives as a
    // singleton coarse cell and its pin maps through unambiguously.
    let mut ladder: Vec<NetlistContraction> = Vec::new();
    let mut fixed_ladder: Vec<Vec<Option<Side>>> = vec![fixed0];
    let mut skip: Vec<bool> = Vec::new();
    loop {
        let contraction = {
            let cur: &Netlist = ladder.last().map_or(nl, |c| c.coarse());
            if !depth.wants_more(ladder.len(), cur.num_cells()) {
                break;
            }
            if has_fixed {
                let cur_fixed = fixed_ladder.last().expect("one entry per level");
                skip.clear();
                skip.extend(cur_fixed.iter().map(Option::is_some));
            }
            let skip_slice: &[bool] = if has_fixed { &skip } else { &[] };
            let pairs = random_cell_matching_with_skip(cur, skip_slice, rng);
            if pairs.is_empty() {
                break;
            }
            contract_cells(cur, &pairs)
        };
        let next_fixed = if has_fixed {
            let cur_fixed = fixed_ladder.last().expect("one entry per level");
            let mut next: Vec<Option<Side>> = vec![None; contraction.coarse().num_cells()];
            for (c, s) in cur_fixed.iter().enumerate() {
                if let Some(side) = s {
                    next[contraction.map(c as VertexId) as usize] = Some(*side);
                }
            }
            next
        } else {
            Vec::new()
        };
        fixed_ladder.push(next_fixed);
        ladder.push(contraction);
    }

    // Initial bisection of the coarsest netlist.
    let mut flags: Vec<bool> = Vec::new();
    let coarsest_idx = ladder.len();
    let (mut current, mut work) =
        if ladder.is_empty() && matches!(depth, CoarsenDepth::Levels(_)) && !has_fixed {
            // Legacy §V fallback: the matcher made no progress on the
            // input itself, so compaction degenerates to the plain
            // heuristic from its own random start.
            let init = NetlistBisection::random_balanced(nl, rng);
            refiner.refine_counted(nl, &[], init, rng, ws)
        } else {
            let coarsest: &Netlist = ladder.last().map_or(nl, |c| c.coarse());
            let init = weight_balanced_random_fixed(coarsest, &fixed_ladder[coarsest_idx], rng);
            flags.clear();
            flags.extend(fixed_ladder[coarsest_idx].iter().map(Option::is_some));
            refiner.refine_counted(coarsest, &flags, init, rng, ws)
        };

    // Uncoarsening: project and refine level by level. Boundary-seeded
    // refiners opt into the projected-cache protocol — the cache is
    // built once on the (small) coarsest netlist and projected through
    // each step, so no level pays an O(cells + pins) rebuild;
    // rebalancing rides the same cache.
    let coarsest_cells = ladder.last().map_or(nl, |c| c.coarse()).num_cells();
    let projected_cache =
        refiner.wants_projected_cache() && !ladder.is_empty() && coarsest_cells >= 2;
    if projected_cache {
        let coarsest: &Netlist = ladder.last().map(|c| c.coarse()).expect("nonempty ladder");
        ws.netlist_cache.init(coarsest, &current);
    }
    for i in (0..ladder.len()).rev() {
        let fine: &Netlist = if i == 0 { nl } else { ladder[i - 1].coarse() };
        let sides = ladder[i].project_sides(current.sides());
        let mut projected =
            NetlistBisection::from_sides(fine, sides).expect("projection covers every fine cell");
        flags.clear();
        flags.extend(fixed_ladder[i].iter().map(Option::is_some));
        let (refined, stage) = if projected_cache {
            ws.netlist_cache
                .project(fine, &projected, ladder[i].fine_to_coarse());
            rebalance_with_cache(fine, &mut projected, &flags, &mut ws.netlist_cache);
            refiner.refine_projected_counted(fine, &flags, projected, rng, ws)
        } else {
            rebalance_fixed(fine, &mut projected, &flags);
            refiner.refine_counted(fine, &flags, projected, rng, ws)
        };
        current = refined;
        work += stage;
    }
    if !current.is_balanced(nl) {
        flags.clear();
        flags.extend(fixed_ladder[0].iter().map(Option::is_some));
        rebalance_fixed(nl, &mut current, &flags);
    }
    (current, work)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::two_clusters;
    use super::*;
    use bisect_graph::hypergraph::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn random_netlist(cells: usize, nets: usize, seed: u64) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new(cells);
        for _ in 0..nets {
            let size = rng.gen_range(2..=5usize);
            let mut pins: Vec<u32> = (0..cells as u32).collect();
            pins.shuffle(&mut rng);
            b.add_net(&pins[..size]).unwrap();
        }
        b.build()
    }

    #[test]
    fn all_depths_produce_balanced_bisections() {
        let nl = random_netlist(48, 64, 2);
        for p in [
            NetlistPipeline::flat_fm(),
            NetlistPipeline::compacted_fm(),
            NetlistPipeline::multilevel_fm_to(8).unwrap(),
        ] {
            let mut rng = StdRng::seed_from_u64(5);
            let b = p.bisect(&nl, &mut rng);
            assert!(b.is_balanced(&nl), "{}", p.name());
            assert_eq!(b.cut(), b.recompute_cut(&nl), "{}", p.name());
        }
    }

    #[test]
    fn multilevel_finds_the_bridge() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(5);
        let p = NetlistPipeline::multilevel_fm_to(3)
            .unwrap()
            .bisect(&nl, &mut rng);
        assert_eq!(p.cut(), 1);
    }

    #[test]
    fn rejects_tiny_coarsest() {
        assert!(NetlistPipeline::multilevel_fm_to(1).is_err());
        assert!(NetlistPipeline::multilevel_fm_to(2).is_ok());
    }

    #[test]
    fn deterministic_across_runs_and_workspace_reuse() {
        let nl = random_netlist(60, 80, 9);
        let pipeline = NetlistPipeline::multilevel_fm_to(8).unwrap();
        let mut ws = Workspace::new();
        let run = |ws: &mut Workspace| {
            let mut rng = StdRng::seed_from_u64(17);
            pipeline.bisect_counted(&nl, &mut rng, ws)
        };
        let (a, wa) = run(&mut ws);
        // Warm (differently sized) workspace must not change anything.
        let small = two_clusters();
        let mut srng = StdRng::seed_from_u64(1);
        let _ = pipeline.bisect_counted(&small, &mut srng, &mut ws);
        let (b, wb) = run(&mut ws);
        let (c, wc) = run(&mut Workspace::new());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(wa, wb);
        assert_eq!(wa, wc);
    }

    #[test]
    fn parallel_refiner_rides_the_projected_cache_protocol() {
        // ParallelNetlistFm opts into the projected cache, so the
        // engine initializes it once at the coarsest level and projects
        // it down the ladder; the result must be valid, balanced, and
        // deterministic at a fixed thread count.
        let nl = random_netlist(64, 90, 12);
        let pipeline = NetlistPipeline::new(
            CoarsenDepth::ToSize(8),
            crate::netlist::ParallelNetlistFm::new().with_threads(2),
            "PNetMLFM",
        )
        .unwrap();
        let run = || {
            let mut rng = StdRng::seed_from_u64(5);
            pipeline.bisect(&nl, &mut rng)
        };
        let a = run();
        assert!(a.is_balanced(&nl));
        assert_eq!(a.cut(), a.recompute_cut(&nl));
        assert_eq!(a, run());
        // And it never loses to the projected start it was handed: the
        // serial-FM pipeline at the same seed is a sanity yardstick.
        let serial = NetlistPipeline::multilevel_fm_to(8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let s = serial.bisect(&nl, &mut rng);
        assert!(a.cut() <= 2 * s.cut().max(4), "parallel cut far off serial");
    }

    #[test]
    fn fixed_cells_stay_put_through_every_depth() {
        let nl = random_netlist(40, 50, 4);
        let fixed = [(0u32, Side::A), (7u32, Side::B), (13u32, Side::B)];
        for p in [
            NetlistPipeline::flat_fm(),
            NetlistPipeline::compacted_fm(),
            NetlistPipeline::multilevel_fm_to(6).unwrap(),
        ] {
            for seed in 0..6 {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut ws = Workspace::new();
                let (b, _) = p.bisect_fixed_counted(&nl, &fixed, &mut rng, &mut ws);
                for &(c, s) in &fixed {
                    assert_eq!(b.side(c), s, "{} seed {seed} cell {c}", p.name());
                }
                assert_eq!(b.cut(), b.recompute_cut(&nl), "{} seed {seed}", p.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fixed_out_of_range_rejected() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = NetlistPipeline::flat_fm().bisect_fixed_counted(
            &nl,
            &[(99, Side::A)],
            &mut rng,
            &mut Workspace::new(),
        );
    }

    #[test]
    #[should_panic(expected = "both sides")]
    fn conflicting_fixed_sides_rejected() {
        let nl = two_clusters();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = NetlistPipeline::flat_fm().bisect_fixed_counted(
            &nl,
            &[(2, Side::A), (2, Side::B)],
            &mut rng,
            &mut Workspace::new(),
        );
    }

    #[test]
    fn tiny_netlists_across_depths() {
        for n in 0..4usize {
            let nl = NetlistBuilder::new(n).build();
            for p in [
                NetlistPipeline::flat_fm(),
                NetlistPipeline::compacted_fm(),
                NetlistPipeline::multilevel_fm(),
            ] {
                let mut rng = StdRng::seed_from_u64(1);
                let b = p.bisect(&nl, &mut rng);
                assert_eq!(b.cut(), 0, "{} on {n} cells", p.name());
            }
        }
    }
}
