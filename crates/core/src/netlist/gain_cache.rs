//! Workspace-resident incremental gain state for netlist FM — the
//! hypergraph analogue of [`crate::gain_cache::GainCache`].
//!
//! For every cell the cache holds its FM gain (weighted nets uncut
//! minus nets newly cut if the cell moved) and its *cut degree* (the
//! number of incident cut nets), plus the *boundary* — the cells with
//! at least one cut net — as a dense list with an O(1) position index.
//! [`NetlistGainCache::record_move`] maintains all three in
//! `O(Σ pins of affected nets)` per move, walking a net's pins only
//! when the move actually changes that net's contribution to them.
//! [`NetlistGainCache::project`] carries the state coarse→fine across
//! an uncoarsening step without an O(cells + pins) rebuild for interior
//! cells, mirroring the graph-side projection contract.

use bisect_graph::hypergraph::Netlist;
use bisect_graph::VertexId;

use super::{gain_term, NetlistBisection};

/// Per-cell gains, cut degrees, and the cell boundary of a netlist
/// bisection, maintained incrementally. Lives in the
/// [`crate::workspace::Workspace`]; exact for a given `(nl, p)` after
/// [`NetlistGainCache::init`] and kept exact by reporting every move
/// through [`NetlistGainCache::record_move`] *before* applying it.
#[derive(Debug, Clone, Default)]
pub struct NetlistGainCache {
    /// FM gain of moving each cell to the other side.
    gains: Vec<i64>,
    /// Number of cut nets incident to each cell.
    cut_nets: Vec<u32>,
    /// Cells with at least one cut net, in insertion order.
    boundary: Vec<VertexId>,
    /// Position of each cell in `boundary`; `u32::MAX` = interior.
    bpos: Vec<u32>,
    /// Scratch for [`NetlistGainCache::project`]: which *coarse* cells
    /// were boundary before the projection.
    coarse_boundary: Vec<bool>,
}

impl NetlistGainCache {
    /// (Re)computes the cache for `(nl, p)` in `O(cells + pins)`.
    pub fn init(&mut self, nl: &Netlist, p: &NetlistBisection) {
        let n = nl.num_cells();
        self.gains.clear();
        self.cut_nets.clear();
        self.bpos.clear();
        self.bpos.resize(n, u32::MAX);
        self.boundary.clear();
        for c in nl.cells() {
            let s = p.side(c).index();
            let mut gain = 0i64;
            let mut cut = 0u32;
            for &net in nl.nets_of(c) {
                let counts = p.pins_on(net);
                gain += gain_term(counts[s], counts[1 - s], nl.net_weight(net) as i64);
                if counts[0] > 0 && counts[1] > 0 {
                    cut += 1;
                }
            }
            self.gains.push(gain);
            self.cut_nets.push(cut);
            if cut > 0 {
                self.bpos[c as usize] = self.boundary.len() as u32;
                self.boundary.push(c);
            }
        }
    }

    /// The cached gain of cell `c`.
    pub fn gain(&self, c: VertexId) -> i64 {
        self.gains[c as usize]
    }

    /// The number of cut nets incident to cell `c`.
    pub fn cut_degree(&self, c: VertexId) -> u32 {
        self.cut_nets[c as usize]
    }

    /// Whether cell `c` has a cut net.
    pub fn is_boundary(&self, c: VertexId) -> bool {
        self.bpos[c as usize] != u32::MAX
    }

    /// The cells with at least one cut net, in insertion order. The
    /// order is deterministic (it depends only on the move history),
    /// but otherwise unspecified.
    pub fn boundary(&self) -> &[VertexId] {
        &self.boundary
    }

    /// The position of cell `c` in [`NetlistGainCache::boundary`], or
    /// `None` if `c` is interior — an O(1) membership-and-index lookup
    /// for consumers that partition the boundary list (the
    /// boundary-seeded parallel refiner chunks it by position).
    #[inline]
    pub fn boundary_index(&self, c: VertexId) -> Option<usize> {
        let p = self.bpos[c as usize];
        (p != u32::MAX).then_some(p as usize)
    }

    fn boundary_insert(&mut self, c: VertexId) {
        debug_assert_eq!(self.bpos[c as usize], u32::MAX);
        self.bpos[c as usize] = self.boundary.len() as u32;
        self.boundary.push(c);
    }

    fn boundary_remove(&mut self, c: VertexId) {
        let pos = self.bpos[c as usize] as usize;
        debug_assert!(pos < self.boundary.len());
        self.boundary.swap_remove(pos);
        if let Some(&moved) = self.boundary.get(pos) {
            self.bpos[moved as usize] = pos as u32;
        }
        self.bpos[c as usize] = u32::MAX;
    }

    /// Updates the cache for moving cell `c` to the other side. Must be
    /// called with the **pre-move** bisection `p`; the caller applies
    /// [`NetlistBisection::move_cell`] afterwards.
    ///
    /// Per incident net the per-pin gain deltas depend only on the
    /// net's pin counts, so they are computed once per side and the
    /// net's pins are walked only when some delta (or the net's cut
    /// state) actually changes.
    pub fn record_move(&mut self, nl: &Netlist, p: &NetlistBisection, c: VertexId) {
        let ci = c as usize;
        let s = p.side(c).index();
        let mut new_gain = 0i64;
        let mut new_cut = 0u32;
        for &net in nl.nets_of(c) {
            let counts = p.pins_on(net);
            let (my, other) = (counts[s], counts[1 - s]);
            let w = nl.net_weight(net) as i64;
            // c's own contribution after the move: it sits on the far
            // side of a net with counts (other + 1, my - 1).
            new_gain += gain_term(other + 1, my - 1, w);
            // `my >= 1` always: c is a pin of this net.
            let was_cut = other > 0;
            let now_cut = my > 1;
            if now_cut {
                new_cut += 1;
            }
            // Delta for the remaining pins on c's side / the far side.
            let ds = gain_term(my - 1, other + 1, w) - gain_term(my, other, w);
            let dt = gain_term(other + 1, my - 1, w) - gain_term(other, my, w);
            if ds == 0 && dt == 0 && was_cut == now_cut {
                continue;
            }
            for &q in nl.pins(net) {
                if q == c {
                    continue;
                }
                let qi = q as usize;
                self.gains[qi] += if p.side(q).index() == s { ds } else { dt };
                match (was_cut, now_cut) {
                    (false, true) => {
                        if self.cut_nets[qi] == 0 {
                            self.boundary_insert(q);
                        }
                        self.cut_nets[qi] += 1;
                    }
                    (true, false) => {
                        self.cut_nets[qi] -= 1;
                        if self.cut_nets[qi] == 0 {
                            self.boundary_remove(q);
                        }
                    }
                    _ => {}
                }
            }
        }
        let was_boundary = self.bpos[ci] != u32::MAX;
        self.gains[ci] = new_gain;
        self.cut_nets[ci] = new_cut;
        if new_cut > 0 && !was_boundary {
            self.boundary_insert(c);
        } else if new_cut == 0 && was_boundary {
            self.boundary_remove(c);
        }
    }

    /// Projects the cache through one uncoarsening step: on entry it is
    /// exact for the *coarse* bisection whose sides `p` inherits
    /// (`p` must be the projected sides, before any fine-level moves);
    /// on exit it is exact for `(nl, p)` at the fine level.
    ///
    /// A cut fine net keeps pins on both sides after mapping through
    /// `fine_to_coarse`, so its (merged) coarse net is cut and every
    /// pin's image is coarse-boundary. Fine cells whose image was
    /// *interior* therefore have only uncut nets: cut degree 0 and the
    /// closed-form gain `−Σ w(net)` over incident nets with ≥ 2 pins —
    /// no pin-count walk needed. Only the boundary image is recomputed
    /// exactly.
    pub fn project(&mut self, nl: &Netlist, p: &NetlistBisection, fine_to_coarse: &[VertexId]) {
        let n = nl.num_cells();
        debug_assert_eq!(n, fine_to_coarse.len());
        let n_coarse = self.gains.len();
        self.coarse_boundary.clear();
        self.coarse_boundary.resize(n_coarse, false);
        for &c in &self.boundary {
            self.coarse_boundary[c as usize] = true;
        }
        self.gains.clear();
        self.gains.resize(n, 0);
        self.cut_nets.clear();
        self.cut_nets.resize(n, 0);
        self.bpos.clear();
        self.bpos.resize(n, u32::MAX);
        self.boundary.clear();
        for c in nl.cells() {
            let ci = c as usize;
            if self.coarse_boundary[fine_to_coarse[ci] as usize] {
                let s = p.side(c).index();
                let mut gain = 0i64;
                let mut cut = 0u32;
                for &net in nl.nets_of(c) {
                    let counts = p.pins_on(net);
                    gain += gain_term(counts[s], counts[1 - s], nl.net_weight(net) as i64);
                    if counts[0] > 0 && counts[1] > 0 {
                        cut += 1;
                    }
                }
                self.gains[ci] = gain;
                self.cut_nets[ci] = cut;
                if cut > 0 {
                    self.bpos[ci] = self.boundary.len() as u32;
                    self.boundary.push(c);
                }
            } else {
                let mut gain = 0i64;
                for &net in nl.nets_of(c) {
                    if nl.pins(net).len() >= 2 {
                        gain -= nl.net_weight(net) as i64;
                    }
                }
                self.gains[ci] = gain;
            }
        }
        #[cfg(debug_assertions)]
        for c in nl.cells() {
            debug_assert_eq!(
                self.gains[c as usize],
                p.gain(nl, c),
                "projected gain mismatch at cell {c}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::two_clusters;
    use super::*;
    use bisect_graph::hypergraph::{contract_cells, random_cell_matching, NetlistBuilder};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn assert_consistent(cache: &NetlistGainCache, nl: &Netlist, p: &NetlistBisection) {
        let mut expected_boundary = Vec::new();
        for c in nl.cells() {
            assert_eq!(cache.gain(c), p.gain(nl, c), "gain of {c}");
            let cut = nl
                .nets_of(c)
                .iter()
                .filter(|&&n| {
                    let k = p.pins_on(n);
                    k[0] > 0 && k[1] > 0
                })
                .count() as u32;
            assert_eq!(cache.cut_degree(c), cut, "cut degree of {c}");
            assert_eq!(cache.is_boundary(c), cut > 0, "boundary flag of {c}");
            if cut > 0 {
                expected_boundary.push(c);
            }
        }
        let mut listed: Vec<VertexId> = cache.boundary().to_vec();
        listed.sort_unstable();
        assert_eq!(listed, expected_boundary, "boundary list");
    }

    fn random_netlist(cells: usize, nets: usize, rng: &mut StdRng) -> Netlist {
        let mut b = NetlistBuilder::new(cells);
        for _ in 0..nets {
            let size = rng.gen_range(2..=5usize.min(cells));
            let mut pins: Vec<u32> = (0..cells as u32).collect();
            pins.shuffle(rng);
            let w = rng.gen_range(1..=3u64);
            b.add_weighted_net(&pins[..size], w).unwrap();
        }
        b.build()
    }

    #[test]
    fn init_matches_brute_force() {
        let nl = two_clusters();
        let mut cache = NetlistGainCache::default();
        for seed in 0..8 {
            let p = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(seed));
            cache.init(&nl, &p);
            assert_consistent(&cache, &nl, &p);
        }
    }

    #[test]
    fn record_move_stays_consistent_over_random_sequences() {
        let mut rng = StdRng::seed_from_u64(21);
        for trial in 0..10 {
            let nl = random_netlist(12, 10, &mut rng);
            let mut p = NetlistBisection::random_balanced(&nl, &mut rng);
            let mut cache = NetlistGainCache::default();
            cache.init(&nl, &p);
            for step in 0..24 {
                let c = rng.gen_range(0..nl.num_cells()) as VertexId;
                cache.record_move(&nl, &p, c);
                p.move_cell(&nl, c);
                assert_consistent(&cache, &nl, &p);
                let _ = (trial, step);
            }
        }
    }

    #[test]
    fn record_move_handles_degenerate_nets() {
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[]).unwrap();
        b.add_net(&[2]).unwrap();
        b.add_net(&[0, 1, 2, 3]).unwrap();
        let nl = b.build();
        let mut p = NetlistBisection::from_sides(&nl, vec![false, false, true, true]).unwrap();
        let mut cache = NetlistGainCache::default();
        cache.init(&nl, &p);
        for c in [2u32, 0, 2, 3, 1] {
            cache.record_move(&nl, &p, c);
            p.move_cell(&nl, c);
            assert_consistent(&cache, &nl, &p);
        }
    }

    #[test]
    fn project_matches_fresh_init() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..6 {
            let fine = random_netlist(20, 18, &mut rng);
            let pairs = random_cell_matching(&fine, &mut rng);
            if pairs.is_empty() {
                continue;
            }
            let contraction = contract_cells(&fine, &pairs);
            let coarse = contraction.coarse();
            let mut cp = NetlistBisection::random_balanced(coarse, &mut rng);
            let mut cache = NetlistGainCache::default();
            cache.init(coarse, &cp);
            // Drift the coarse bisection so the tracked boundary is not
            // just the initial one.
            for _ in 0..6 {
                let c = rng.gen_range(0..coarse.num_cells()) as VertexId;
                cache.record_move(coarse, &cp, c);
                cp.move_cell(coarse, c);
            }
            let fp =
                NetlistBisection::from_sides(&fine, contraction.project_sides(cp.sides())).unwrap();
            cache.project(&fine, &fp, contraction.fine_to_coarse());
            assert_consistent(&cache, &fine, &fp);
            // And the projected cache keeps tracking.
            let mut fp = fp;
            for _ in 0..6 {
                let c = rng.gen_range(0..fine.num_cells()) as VertexId;
                cache.record_move(&fine, &fp, c);
                fp.move_cell(&fine, c);
                assert_consistent(&cache, &fine, &fp);
            }
        }
    }
}
