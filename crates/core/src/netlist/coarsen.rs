//! Range-partitioned parallel cell matching for million-cell
//! coarsening — the hypergraph counterpart of
//! [`crate::pipeline::ParallelMatching`].
//!
//! Workers match cells within disjoint contiguous id ranges using the
//! same hMETIS-style connectivity score as
//! [`bisect_graph::hypergraph::random_cell_matching`] (`Σ
//! w(net)/(|net|−1)` over shared nets, ties to the lowest cell id),
//! then a serial sweep matches the leftover cells across range
//! boundaries, so the result is maximal.
//!
//! Like the graph-side scheme this draws **no randomness** and is
//! deterministic at a fixed thread count but not across thread counts
//! (range boundaries move which partners a worker can see). It is
//! intended for the huge-profile netlist pipeline, not the
//! golden-pinned paper experiments — the serial
//! `random_cell_matching` paths are untouched.

use std::collections::BTreeMap;

use bisect_graph::hypergraph::Netlist;
use bisect_graph::VertexId;

/// Parallel maximal cell matching over contiguous cell ranges.
///
/// # Example
///
/// ```
/// use bisect_core::netlist::ParallelCellMatching;
/// use bisect_graph::hypergraph::{contract_cells, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new(4);
/// b.add_net(&[0, 1]).unwrap();
/// b.add_net(&[2, 3]).unwrap();
/// let nl = b.build();
/// let pairs = ParallelCellMatching::new().with_threads(2).matching(&nl);
/// let c = contract_cells(&nl, &pairs);
/// assert_eq!(c.coarse().num_cells(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelCellMatching {
    /// Worker count; `None` defers to [`bisect_par::num_threads`].
    threads: Option<usize>,
}

impl ParallelCellMatching {
    /// Creates the matcher with the process-default thread count.
    pub fn new() -> ParallelCellMatching {
        ParallelCellMatching { threads: None }
    }

    /// Pins the worker (and range) count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> ParallelCellMatching {
        assert!(threads > 0, "thread count must be positive");
        self.threads = Some(threads);
        self
    }

    /// The worker count a call will use right now.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(bisect_par::num_threads)
    }

    /// Computes a maximal cell matching of `nl`; the pairs feed
    /// [`bisect_graph::hypergraph::contract_cells`] (or its
    /// scratch-reusing `contract_cells_into` variant) directly.
    pub fn matching(&self, nl: &Netlist) -> Vec<(VertexId, VertexId)> {
        range_cell_matching(nl, self.threads())
    }
}

/// The best unmatched partner of `c` by connectivity score, restricted
/// to cells passing `admit`. `score` is caller-owned scratch (cleared
/// here) so the per-cell walk allocates nothing in steady state; a
/// `BTreeMap` keeps the f64 accumulation and tie-break order
/// independent of hasher state, exactly as the serial matcher does.
fn best_partner(
    nl: &Netlist,
    c: VertexId,
    admit: &dyn Fn(VertexId) -> bool,
    score: &mut BTreeMap<VertexId, f64>,
) -> Option<VertexId> {
    score.clear();
    for &net in nl.nets_of(c) {
        let pins = nl.pins(net);
        if pins.len() < 2 {
            continue;
        }
        let contribution = nl.net_weight(net) as f64 / (pins.len() - 1) as f64;
        for &p in pins {
            if p != c && admit(p) {
                *score.entry(p).or_insert(0.0) += contribution;
            }
        }
    }
    score
        .iter()
        .max_by(|a, b| {
            a.1.partial_cmp(b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0.cmp(a.0))
        })
        .map(|(&partner, _)| partner)
}

/// The matching behind [`ParallelCellMatching`]: parallel in-range
/// greedy phase (ascending cell order, both endpoints inside one range
/// so disjoint ranges cannot conflict), then a serial ascending-order
/// cleanup for cells whose only partners cross a range boundary.
/// Maximal by construction.
fn range_cell_matching(nl: &Netlist, threads: usize) -> Vec<(VertexId, VertexId)> {
    let n = nl.num_cells();
    if n == 0 {
        return Vec::new();
    }
    let t = threads.max(1).min(n);
    let chunk = n.div_ceil(t);
    let ranges = n.div_ceil(chunk);
    let local: Vec<Vec<(VertexId, VertexId)>> = bisect_par::par_map_with(t, ranges, |k| {
        let lo = k * chunk;
        let hi = ((k + 1) * chunk).min(n);
        let mut matched = vec![false; hi - lo];
        let mut pairs = Vec::new();
        let mut score = BTreeMap::new();
        for c in lo..hi {
            if matched[c - lo] {
                continue;
            }
            let mate = best_partner(
                nl,
                c as VertexId,
                &|p| {
                    let pi = p as usize;
                    pi >= lo && pi < hi && !matched[pi - lo]
                },
                &mut score,
            );
            if let Some(p) = mate {
                matched[c - lo] = true;
                matched[p as usize - lo] = true;
                pairs.push((c as VertexId, p));
            }
        }
        pairs
    });
    let mut taken = vec![false; n];
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for local_pairs in &local {
        for &(a, b) in local_pairs {
            taken[a as usize] = true;
            taken[b as usize] = true;
        }
        pairs.extend_from_slice(local_pairs);
    }
    let mut score = BTreeMap::new();
    for c in 0..n {
        if taken[c] {
            continue;
        }
        let mate = best_partner(nl, c as VertexId, &|p| !taken[p as usize], &mut score);
        if let Some(p) = mate {
            taken[c] = true;
            taken[p as usize] = true;
            pairs.push((c as VertexId, p));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::super::testutil::two_clusters;
    use super::*;
    use bisect_graph::hypergraph::{contract_cells, NetlistBuilder};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn random_netlist(cells: usize, nets: usize, seed: u64) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new(cells);
        for _ in 0..nets {
            let size = rng.gen_range(2..=5usize.min(cells));
            let mut pins: Vec<u32> = (0..cells as u32).collect();
            pins.shuffle(&mut rng);
            b.add_net(&pins[..size]).unwrap();
        }
        b.build()
    }

    /// Maximal: no two unmatched cells share a ≥ 2-pin net.
    fn assert_maximal(nl: &Netlist, pairs: &[(VertexId, VertexId)]) {
        let mut matched = vec![false; nl.num_cells()];
        for &(a, b) in pairs {
            assert_ne!(a, b, "self-pair");
            assert!(!matched[a as usize] && !matched[b as usize], "overlap");
            matched[a as usize] = true;
            matched[b as usize] = true;
        }
        for n in nl.net_ids() {
            let pins = nl.pins(n);
            if pins.len() < 2 {
                continue;
            }
            let free: Vec<VertexId> = pins
                .iter()
                .copied()
                .filter(|&p| !matched[p as usize])
                .collect();
            assert!(free.len() <= 1, "net {n} still joins free cells {free:?}");
        }
    }

    #[test]
    fn matching_is_maximal_and_deterministic_per_thread_count() {
        for seed in [2u64, 9] {
            let nl = random_netlist(40, 55, seed);
            for threads in [1usize, 2, 4] {
                let m = ParallelCellMatching::new().with_threads(threads);
                let pairs = m.matching(&nl);
                assert_maximal(&nl, &pairs);
                assert_eq!(pairs, m.matching(&nl), "threads {threads}");
            }
        }
    }

    #[test]
    fn matching_contracts_and_preserves_weight() {
        let nl = random_netlist(30, 40, 5);
        let pairs = ParallelCellMatching::new().with_threads(4).matching(&nl);
        assert!(!pairs.is_empty());
        let c = contract_cells(&nl, &pairs);
        assert!(c.coarse().num_cells() < nl.num_cells());
        assert_eq!(c.coarse().total_cell_weight(), nl.total_cell_weight());
    }

    #[test]
    fn single_thread_matches_full_range_greedy() {
        // One worker sees the whole netlist, so the serial cleanup has
        // nothing to do and the result is the plain ascending greedy.
        let nl = two_clusters();
        let pairs = ParallelCellMatching::new().with_threads(1).matching(&nl);
        assert_maximal(&nl, &pairs);
    }

    #[test]
    fn handles_netless_and_empty_netlists() {
        let empty = NetlistBuilder::new(0).build();
        assert!(ParallelCellMatching::new()
            .with_threads(2)
            .matching(&empty)
            .is_empty());
        let netless = NetlistBuilder::new(5).build();
        assert!(ParallelCellMatching::new()
            .with_threads(2)
            .matching(&netless)
            .is_empty());
    }

    #[test]
    fn degenerate_nets_never_match() {
        let mut b = NetlistBuilder::new(4);
        b.add_net(&[]).unwrap();
        b.add_net(&[1]).unwrap();
        b.add_net(&[2, 3]).unwrap();
        let nl = b.build();
        let pairs = ParallelCellMatching::new().with_threads(2).matching(&nl);
        assert_eq!(pairs, vec![(2, 3)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = ParallelCellMatching::new().with_threads(0);
    }
}
