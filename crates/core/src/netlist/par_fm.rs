//! Coarse-grained parallel netlist refinement for million-cell
//! instances — the hypergraph counterpart of [`crate::par_fm`].
//!
//! [`ParallelNetlistFm`] chunks the cell boundary tracked by the
//! workspace [`NetlistGainCache`] by position, lets one worker per
//! chunk run a greedy positive-gain sweep against a *snapshot* of the
//! bisection (Gauss–Seidel within a chunk, Jacobi across chunks), then
//! merges the proposed moves serially: sorted by `(gain desc, cell
//! asc)`, each proposal is re-validated against the live cached gain
//! and applied only if it still improves the cut within the FM balance
//! tolerance. A best-balanced-prefix rollback — the discipline shared
//! with [`super::NetlistFm`] — guarantees every round ends balanced
//! with a cut no larger than it started.
//!
//! Workers never touch the live bisection: each keeps a private
//! overlay of per-net pin counts for its own virtual moves, so gain
//! deltas use the same [`super::gain_term`] algebra as the serial pass
//! while reading everything else from the frozen snapshot. Starting
//! gains come straight from the exact cache — a round costs
//! `O(boundary · pins)` rather than `O(cells + pins)`.
//!
//! # Determinism contract
//!
//! Like [`crate::par_fm::ParallelFm`], this refiner draws **no
//! randomness** and is **deterministic at a fixed thread count**: the
//! boundary order is a pure function of the init state and move
//! history, the chunking is a pure function of that order and the
//! thread count, workers are pure functions of their chunk and the
//! snapshot, and the merge order is total. It is *not* bit-identical
//! across different thread counts (chunk boundaries move). The
//! golden-pinned serial netlist paths are unaffected.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use bisect_graph::hypergraph::{NetId, Netlist};
use bisect_graph::VertexId;
use rand::RngCore;

use crate::partition::Side;
use crate::workspace::Workspace;

use super::{gain_term, NetlistBisection, NetlistGainCache, NetlistRefiner};

/// Boundary-chunked parallel Fiduccia–Mattheyses on netlists.
///
/// Rounds of *propose in parallel, resolve serially* run until a round
/// fails to improve the net cut (or `max_rounds` is hit). Implements
/// [`NetlistRefiner`] with the projected-cache protocol, so
/// [`super::NetlistPipeline`] and the huge-netlist driver can seed each
/// uncoarsening level from the projected cache instead of an
/// `O(cells + pins)` rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelNetlistFm {
    /// Worker count; `None` defers to [`bisect_par::num_threads`].
    threads: Option<usize>,
    /// Safety cap on propose/resolve rounds.
    max_rounds: usize,
}

impl Default for ParallelNetlistFm {
    fn default() -> ParallelNetlistFm {
        ParallelNetlistFm::new()
    }
}

impl ParallelNetlistFm {
    /// Creates the refiner with the process-default thread count and a
    /// generous round cap (rounds strictly decrease the cut, so the cap
    /// only guards against pathological inputs).
    pub fn new() -> ParallelNetlistFm {
        ParallelNetlistFm {
            threads: None,
            max_rounds: 64,
        }
    }

    /// Pins the worker (and chunk) count. The determinism regression
    /// tests use this to compare repeat runs at a fixed width.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> ParallelNetlistFm {
        assert!(threads > 0, "thread count must be positive");
        self.threads = Some(threads);
        self
    }

    /// Caps the number of propose/resolve rounds.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> ParallelNetlistFm {
        assert!(max_rounds > 0, "need at least one round");
        self.max_rounds = max_rounds;
        self
    }

    /// The worker count a call will use right now.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(bisect_par::num_threads)
    }

    /// One propose/resolve round. `cache` must be exact for `(nl, p)`
    /// on entry and is exact for the updated `p` on exit. Returns
    /// `(cut improvement, gain evaluations)`; an improvement of zero
    /// means the round applied nothing and the refiner is done.
    fn round_boundary(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        p: &mut NetlistBisection,
        cache: &mut NetlistGainCache,
        threads: usize,
    ) -> (u64, u64) {
        // Chunk the boundary list by *position* — no copy, no sort,
        // O(1) membership via the cache's position index. The list
        // order is a pure function of the init state and move history,
        // so the chunking (and the whole round) stays deterministic at
        // a fixed thread count.
        let m = cache.boundary().len();
        if m == 0 {
            return (0, 0);
        }
        let t = threads.max(1).min(m);
        let chunk = m.div_ceil(t);
        let ranges = m.div_ceil(chunk);

        let frozen: &NetlistBisection = p;
        let shared: &NetlistGainCache = cache;
        let results = bisect_par::par_map_with(t, ranges, |k| {
            let lo = k * chunk;
            let hi = ((k + 1) * chunk).min(m);
            propose_chunk(nl, frozen, shared, fixed, lo, hi)
        });

        let mut evals: u64 = 0;
        let mut all: Vec<(i64, VertexId)> = Vec::new();
        for (proposals, e) in results {
            evals += e;
            all.extend(proposals);
        }
        // Total merge order: best estimated gain first, cell id as the
        // deterministic tie-break.
        all.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        // Serial resolve: same tolerances as the serial netlist FM
        // pass; the live re-validation is a cached O(1) lookup, and
        // every applied (or rolled-back) move is recorded so the cache
        // stays exact round to round.
        let max_weight = nl.cells().map(|c| nl.cell_weight(c)).max().unwrap_or(1);
        let unit = nl.cells().all(|c| nl.cell_weight(c) == 1);
        let base_tol = if unit {
            nl.total_cell_weight() % 2
        } else {
            max_weight
        };
        let pass_tol = base_tol.max(2 * max_weight);

        let start_cut = p.cut();
        let mut best_cut = start_cut;
        let mut best_prefix = 0usize;
        let mut applied: Vec<VertexId> = Vec::new();
        for &(_, c) in &all {
            let live = cache.gain(c);
            evals += 1;
            if live <= 0 {
                continue;
            }
            let w = nl.cell_weight(c) as i64;
            let imb = p.weight(Side::A) as i64 - p.weight(Side::B) as i64;
            let new_imb = if p.side(c) == Side::A {
                imb - 2 * w
            } else {
                imb + 2 * w
            };
            if new_imb.unsigned_abs() > pass_tol {
                continue;
            }
            cache.record_move(nl, p, c);
            p.move_cell(nl, c);
            applied.push(c);
            if p.weight_imbalance() <= base_tol && p.cut() < best_cut {
                best_prefix = applied.len();
                best_cut = p.cut();
            }
        }
        // Roll back to the best balanced prefix (possibly empty). Each
        // cell moved at most once, so moving it back restores its side.
        for &c in applied[best_prefix..].iter().rev() {
            cache.record_move(nl, p, c);
            p.move_cell(nl, c);
        }
        debug_assert_eq!(p.cut(), best_cut);
        debug_assert_eq!(p.cut(), p.recompute_cut(nl));
        (start_cut - p.cut(), evals)
    }

    /// Round loop shared by both refine entry points; assumes
    /// `ws.netlist_cache` is exact for `(nl, init)` on entry.
    fn refine_rounds(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        init: &mut NetlistBisection,
        ws: &mut Workspace,
        threads: usize,
    ) -> u64 {
        let mut productive = 0u64;
        for _ in 0..self.max_rounds {
            let (improvement, evals) =
                self.round_boundary(nl, fixed, init, &mut ws.netlist_cache, threads);
            ws.add_proposals(evals);
            if improvement == 0 {
                break;
            }
            productive += 1;
        }
        productive
    }
}

/// Greedy positive-gain sweep over the boundary-list positions
/// `lo..hi` against the frozen bisection, with starting gains served
/// straight from the exact cache. The worker's own virtual moves are
/// tracked in a private per-net pin-count overlay (`BTreeMap`, so
/// nothing depends on hasher state); in-chunk net-mate gains are
/// maintained with the same [`gain_term`] delta algebra as the serial
/// pass, while out-of-chunk pins stay frozen at their snapshot sides.
/// Every cell moves at most once. Returns the moves in the order they
/// were made, each with its local gain estimate, plus the number of
/// gain evaluations performed.
fn propose_chunk(
    nl: &Netlist,
    frozen: &NetlistBisection,
    cache: &NetlistGainCache,
    fixed: &[bool],
    lo: usize,
    hi: usize,
) -> (Vec<(i64, VertexId)>, u64) {
    let is_fixed = |c: VertexId| fixed.get(c as usize).copied().unwrap_or(false);
    let cells = &cache.boundary()[lo..hi];
    let len = cells.len();
    let mut gains: Vec<i64> = Vec::with_capacity(len);
    let mut locked = vec![false; len];
    let mut heap: BinaryHeap<(i64, Reverse<VertexId>)> = BinaryHeap::new();
    for (i, &c) in cells.iter().enumerate() {
        let gain = cache.gain(c);
        gains.push(gain);
        if is_fixed(c) {
            // Fixed cells never move and never receive delta updates.
            locked[i] = true;
        } else if gain > 0 {
            heap.push((gain, Reverse(c)));
        }
    }
    let mut evals = len as u64;
    // Virtual pin counts of nets the worker's own moves touched;
    // everything else reads the frozen bisection.
    let mut overlay: BTreeMap<NetId, [u32; 2]> = BTreeMap::new();
    let mut proposals: Vec<(i64, VertexId)> = Vec::new();
    while let Some((gain, Reverse(c))) = heap.pop() {
        let i = match cache.boundary_index(c) {
            Some(b) if b >= lo && b < hi => b - lo,
            _ => {
                debug_assert!(false, "heap entries always come from the chunk");
                continue;
            }
        };
        // Lazy deletion: stale entries (locked, or superseded by a
        // fresher gain) are skipped.
        if locked[i] || gains[i] != gain {
            continue;
        }
        locked[i] = true;
        proposals.push((gain, c));
        // Unmoved cells sit on their snapshot sides (each cell moves at
        // most once and locks), so the pre-move pin counts of every net
        // of `c` are the frozen counts plus this worker's overlay.
        let s = frozen.side(c).index();
        for &net in nl.nets_of(c) {
            let mut counts = *overlay.get(&net).unwrap_or(&frozen.pins_on(net));
            let (my, other) = (counts[s], counts[1 - s]);
            let w = nl.net_weight(net) as i64;
            counts[s] -= 1;
            counts[1 - s] += 1;
            overlay.insert(net, counts);
            let ds = gain_term(my - 1, other + 1, w) - gain_term(my, other, w);
            let dt = gain_term(other + 1, my - 1, w) - gain_term(other, my, w);
            if ds == 0 && dt == 0 {
                continue;
            }
            for &q in nl.pins(net) {
                if q == c {
                    continue;
                }
                let j = match cache.boundary_index(q) {
                    Some(b) if b >= lo && b < hi => b - lo,
                    _ => continue,
                };
                if locked[j] {
                    continue;
                }
                let delta = if frozen.side(q).index() == s { ds } else { dt };
                if delta == 0 {
                    continue;
                }
                gains[j] += delta;
                evals += 1;
                if gains[j] > 0 {
                    heap.push((gains[j], Reverse(q)));
                }
            }
        }
    }
    (proposals, evals)
}

impl NetlistRefiner for ParallelNetlistFm {
    fn name(&self) -> String {
        "PNetFM".into()
    }

    fn refine_counted(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        mut init: NetlistBisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (NetlistBisection, u64) {
        if nl.num_cells() < 2 {
            return (init, 0);
        }
        ws.netlist_cache.init(nl, &init);
        let threads = self.threads();
        let rounds = self.refine_rounds(nl, fixed, &mut init, ws, threads);
        (init, rounds)
    }

    fn wants_projected_cache(&self) -> bool {
        true
    }

    fn refine_projected_counted(
        &self,
        nl: &Netlist,
        fixed: &[bool],
        mut init: NetlistBisection,
        _rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (NetlistBisection, u64) {
        if nl.num_cells() < 2 {
            return (init, 0);
        }
        let threads = self.threads();
        let rounds = self.refine_rounds(nl, fixed, &mut init, ws, threads);
        (init, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::two_clusters;
    use super::super::weight_balanced_random;
    use super::*;
    use bisect_graph::hypergraph::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn random_netlist(cells: usize, nets: usize, seed: u64) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new(cells);
        for _ in 0..nets {
            let size = rng.gen_range(2..=5usize);
            let mut pins: Vec<u32> = (0..cells as u32).collect();
            pins.shuffle(&mut rng);
            b.add_net(&pins[..size]).unwrap();
        }
        b.build()
    }

    fn refine(
        pfm: &ParallelNetlistFm,
        nl: &Netlist,
        init: NetlistBisection,
    ) -> (NetlistBisection, u64) {
        let mut dummy = StdRng::seed_from_u64(0);
        let mut ws = Workspace::new();
        pfm.refine_counted(nl, &[], init, &mut dummy, &mut ws)
    }

    #[test]
    fn refine_never_increases_cut_and_keeps_balance() {
        let nl = random_netlist(48, 70, 3);
        let pfm = ParallelNetlistFm::new().with_threads(4);
        for seed in 0..10 {
            let init = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(seed));
            let before = init.cut();
            let (p, _) = refine(&pfm, &nl, init);
            assert!(p.cut() <= before, "seed {seed}");
            assert!(p.is_balanced(&nl), "seed {seed}");
            assert_eq!(p.cut(), p.recompute_cut(&nl), "seed {seed}");
        }
    }

    #[test]
    fn finds_the_bridge_cut() {
        let nl = two_clusters();
        let pfm = ParallelNetlistFm::new().with_threads(2);
        let mut best = u64::MAX;
        for seed in 0..8 {
            let init = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(seed));
            let (p, _) = refine(&pfm, &nl, init);
            best = best.min(p.cut());
        }
        assert_eq!(best, 1);
    }

    #[test]
    fn repeat_runs_at_fixed_threads_are_identical() {
        let nl = random_netlist(60, 90, 7);
        let init = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(42));
        for threads in [1usize, 2, 4] {
            let pfm = ParallelNetlistFm::new().with_threads(threads);
            let (a, ra) = refine(&pfm, &nl, init.clone());
            let (b, rb) = refine(&pfm, &nl, init.clone());
            assert_eq!(a, b, "threads {threads}");
            assert_eq!(ra, rb, "threads {threads}");
        }
    }

    #[test]
    fn consumes_no_randomness_when_refining() {
        let nl = random_netlist(30, 40, 1);
        let pfm = ParallelNetlistFm::new().with_threads(3);
        let mut rng = StdRng::seed_from_u64(7);
        let init = NetlistBisection::random_balanced(&nl, &mut rng);
        let probe = rng.clone();
        let mut ws = Workspace::new();
        let _ = pfm.refine_counted(&nl, &[], init, &mut rng, &mut ws);
        assert_eq!(rng.next_u64(), probe.clone().next_u64());
    }

    #[test]
    fn projected_entry_matches_plain_refine() {
        let nl = random_netlist(40, 60, 5);
        let pfm = ParallelNetlistFm::new().with_threads(2);
        assert!(pfm.wants_projected_cache());
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = NetlistBisection::random_balanced(&nl, &mut rng);
            let mut ws_a = Workspace::new();
            let (plain, _) = pfm.refine_counted(&nl, &[], init.clone(), &mut rng, &mut ws_a);
            let mut ws_b = Workspace::new();
            ws_b.prepare_netlist_cache(&nl, &init);
            let (projected, _) = pfm.refine_projected_counted(&nl, &[], init, &mut rng, &mut ws_b);
            assert_eq!(plain, projected, "seed {seed}");
        }
    }

    #[test]
    fn leaves_cache_exact() {
        let nl = random_netlist(36, 50, 9);
        let pfm = ParallelNetlistFm::new().with_threads(3);
        let mut ws = Workspace::new();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = NetlistBisection::random_balanced(&nl, &mut rng);
            let (p, _) = pfm.refine_counted(&nl, &[], init, &mut rng, &mut ws);
            for c in nl.cells() {
                assert_eq!(ws.netlist_cache().gain(c), p.gain(&nl, c), "seed {seed}");
            }
        }
    }

    #[test]
    fn respects_fixed_cells() {
        let nl = two_clusters();
        let pfm = ParallelNetlistFm::new().with_threads(2);
        // Adversarial start: fixed cells open on the "wrong" sides.
        let init =
            NetlistBisection::from_sides(&nl, vec![false, true, false, true, false, true]).unwrap();
        let fixed = vec![true, false, false, false, false, true];
        let mut rng = StdRng::seed_from_u64(1);
        let mut ws = Workspace::new();
        let (p, _) = pfm.refine_counted(&nl, &fixed, init.clone(), &mut rng, &mut ws);
        assert_eq!(p.side(0), init.side(0));
        assert_eq!(p.side(5), init.side(5));
        assert!(p.cut() <= init.cut());
    }

    #[test]
    fn weighted_netlists_respect_tolerance() {
        let mut b = NetlistBuilder::new(6);
        for c in 0..6u32 {
            b.set_cell_weight(c, (c as u64 % 3) + 1).unwrap();
        }
        for pins in [[0u32, 1].as_slice(), &[1, 2], &[2, 3], &[3, 4], &[4, 5]] {
            b.add_net(pins).unwrap();
        }
        let nl = b.build();
        let pfm = ParallelNetlistFm::new().with_threads(2);
        let mut rng = StdRng::seed_from_u64(5);
        let init = weight_balanced_random(&nl, &mut rng);
        let balanced_before = init.is_balanced(&nl);
        let (p, _) = refine(&pfm, &nl, init);
        if balanced_before {
            assert!(p.is_balanced(&nl));
        }
        assert_eq!(p.cut(), p.recompute_cut(&nl));
    }

    #[test]
    fn counts_proposals_in_workspace() {
        let nl = random_netlist(40, 60, 11);
        let pfm = ParallelNetlistFm::new().with_threads(2);
        let mut rng = StdRng::seed_from_u64(11);
        let init = NetlistBisection::random_balanced(&nl, &mut rng);
        let mut ws = Workspace::new();
        let (_, rounds) = pfm.refine_counted(&nl, &[], init, &mut rng, &mut ws);
        assert!(rounds >= 1);
        assert!(ws.take_proposals() > 0);
    }

    #[test]
    fn tiny_netlists_are_no_ops() {
        let pfm = ParallelNetlistFm::new();
        for n in 0..2usize {
            let nl = NetlistBuilder::new(n).build();
            let init = NetlistBisection::from_sides(&nl, vec![false; n]).unwrap();
            let (p, rounds) = refine(&pfm, &nl, init);
            assert_eq!(rounds, 0);
            assert_eq!(p.cut(), 0);
        }
    }

    #[test]
    fn brute_force_cross_check_after_every_resolved_move() {
        // Single-round refinement on tiny netlists, checking the
        // maintained cut against a from-scratch recompute after the
        // round lands (the round itself asserts per-move consistency in
        // debug builds via record_move/move_cell).
        let pfm = ParallelNetlistFm::new().with_threads(2).with_max_rounds(1);
        for seed in 0..12 {
            let nl = random_netlist(14, 16, seed);
            let init = NetlistBisection::random_balanced(&nl, &mut StdRng::seed_from_u64(seed));
            let (p, _) = refine(&pfm, &nl, init);
            assert_eq!(p.cut(), p.recompute_cut(&nl), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = ParallelNetlistFm::new().with_threads(0);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let _ = ParallelNetlistFm::new().with_max_rounds(0);
    }
}
