//! Coarsening schemes: how one level of the pipeline contracts a graph.
//!
//! A [`CoarsenScheme`] produces at most one [`Contraction`] per call;
//! the [engine](super) drives it repeatedly according to the pipeline's
//! [`CoarsenDepth`](super::CoarsenDepth). All three schemes here match
//! a maximal matching and contract it — they differ only in how the
//! matching is chosen:
//!
//! * [`RandomMatching`] — the paper's "maximum random matching" (§V
//!   step 1): random vertex order, random free neighbor.
//! * [`HeavyEdgeMatching`] — random vertex order, heaviest free
//!   neighbor; the refinement later multilevel partitioners (Chaco,
//!   METIS) settled on, where it concentrates weight inside coarse
//!   vertices and keeps the projected cut small on weighted graphs.
//! * [`EdgeOrderMatching`] — greedy over a random edge order, for the
//!   `ablate-matching` benchmark.

use bisect_graph::contraction::{contract_matching, Contraction};
use bisect_graph::{matching, Graph};
use rand::RngCore;

/// One level of coarsening. Implementations draw all randomness from
/// the supplied rng (and nothing else), so a pipeline built from them
/// inherits the crate-wide determinism guarantee: same graph, same rng
/// stream, same ladder.
pub trait CoarsenScheme: Send + Sync {
    /// Scheme name for diagnostics and pipeline descriptions.
    fn name(&self) -> &'static str;

    /// Contracts one matching of `g`, or returns `None` when the scheme
    /// cannot make progress (its matching came back empty — for the
    /// matching-based schemes that means `g` has no edges).
    ///
    /// Implementations must consume the rng exactly as their matching
    /// routine does even when returning `None`, so that legacy callers
    /// and pipeline callers observe identical streams.
    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction>;
}

/// The paper's compaction matching: random vertex visiting order,
/// uniformly random free neighbor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomMatching;

impl CoarsenScheme for RandomMatching {
    fn name(&self) -> &'static str {
        "random-matching"
    }

    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction> {
        let m = matching::random_maximal(g, rng);
        (!m.is_empty()).then(|| contract_matching(g, &m))
    }
}

/// Heavy-edge matching: random vertex order, heaviest free neighbor
/// (ties broken randomly). On unit-weight graphs this degenerates to a
/// random maximal matching with a different tie-breaking distribution;
/// on the weighted coarse graphs deeper in a multilevel ladder it hides
/// heavy edges inside coarse vertices, which is why later multilevel
/// partitioners adopted it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeavyEdgeMatching;

impl CoarsenScheme for HeavyEdgeMatching {
    fn name(&self) -> &'static str {
        "heavy-edge-matching"
    }

    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction> {
        let m = matching::heavy_edge(g, rng);
        (!m.is_empty()).then(|| contract_matching(g, &m))
    }
}

/// Greedy matching over a uniformly random edge order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeOrderMatching;

impl CoarsenScheme for EdgeOrderMatching {
    fn name(&self) -> &'static str {
        "edge-order-matching"
    }

    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction> {
        let m = matching::random_edge_order(g, rng);
        (!m.is_empty()).then(|| contract_matching(g, &m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schemes_contract_nontrivial_graphs() {
        let g = special::grid(6, 6);
        let schemes: [&dyn CoarsenScheme; 3] =
            [&RandomMatching, &HeavyEdgeMatching, &EdgeOrderMatching];
        for s in schemes {
            let mut rng = StdRng::seed_from_u64(1);
            let c = s.coarsen(&g, &mut rng).expect("grid has edges");
            assert!(c.coarse().num_vertices() < g.num_vertices(), "{}", s.name());
            assert_eq!(
                c.coarse().total_vertex_weight(),
                g.num_vertices() as u64,
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn edgeless_graph_yields_none() {
        let g = bisect_graph::Graph::empty(5);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(RandomMatching.coarsen(&g, &mut rng).is_none());
        assert!(HeavyEdgeMatching.coarsen(&g, &mut rng).is_none());
        assert!(EdgeOrderMatching.coarsen(&g, &mut rng).is_none());
    }

    #[test]
    fn random_matching_stream_matches_legacy_call() {
        // The scheme must consume the rng exactly like a direct
        // `matching::random_maximal` call so the pipeline stays
        // bit-identical to the legacy compaction path.
        let g = special::ladder(10);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let c = RandomMatching.coarsen(&g, &mut a).unwrap();
        let m = matching::random_maximal(&g, &mut b);
        let d = contract_matching(&g, &m);
        assert_eq!(c.fine_to_coarse(), d.fine_to_coarse());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            RandomMatching.name(),
            HeavyEdgeMatching.name(),
            EdgeOrderMatching.name(),
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
