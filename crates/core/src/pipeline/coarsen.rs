//! Coarsening schemes: how one level of the pipeline contracts a graph.
//!
//! A [`CoarsenScheme`] produces at most one [`Contraction`] per call;
//! the [engine](super) drives it repeatedly according to the pipeline's
//! [`CoarsenDepth`](super::CoarsenDepth). All three schemes here match
//! a maximal matching and contract it — they differ only in how the
//! matching is chosen:
//!
//! * [`RandomMatching`] — the paper's "maximum random matching" (§V
//!   step 1): random vertex order, random free neighbor.
//! * [`HeavyEdgeMatching`] — random vertex order, heaviest free
//!   neighbor; the refinement later multilevel partitioners (Chaco,
//!   METIS) settled on, where it concentrates weight inside coarse
//!   vertices and keeps the projected cut small on weighted graphs.
//! * [`EdgeOrderMatching`] — greedy over a random edge order, for the
//!   `ablate-matching` benchmark.

use bisect_graph::contraction::{contract_matching, Contraction};
use bisect_graph::matching::Matching;
use bisect_graph::{matching, Graph, VertexId};
use rand::RngCore;

/// One level of coarsening. Implementations draw all randomness from
/// the supplied rng (and nothing else), so a pipeline built from them
/// inherits the crate-wide determinism guarantee: same graph, same rng
/// stream, same ladder.
pub trait CoarsenScheme: Send + Sync {
    /// Scheme name for diagnostics and pipeline descriptions.
    fn name(&self) -> &'static str;

    /// Contracts one matching of `g`, or returns `None` when the scheme
    /// cannot make progress (its matching came back empty — for the
    /// matching-based schemes that means `g` has no edges).
    ///
    /// Implementations must consume the rng exactly as their matching
    /// routine does even when returning `None`, so that legacy callers
    /// and pipeline callers observe identical streams.
    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction>;
}

/// The paper's compaction matching: random vertex visiting order,
/// uniformly random free neighbor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomMatching;

impl CoarsenScheme for RandomMatching {
    fn name(&self) -> &'static str {
        "random-matching"
    }

    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction> {
        let m = matching::random_maximal(g, rng);
        (!m.is_empty()).then(|| contract_matching(g, &m))
    }
}

/// Heavy-edge matching: random vertex order, heaviest free neighbor
/// (ties broken randomly). On unit-weight graphs this degenerates to a
/// random maximal matching with a different tie-breaking distribution;
/// on the weighted coarse graphs deeper in a multilevel ladder it hides
/// heavy edges inside coarse vertices, which is why later multilevel
/// partitioners adopted it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeavyEdgeMatching;

impl CoarsenScheme for HeavyEdgeMatching {
    fn name(&self) -> &'static str {
        "heavy-edge-matching"
    }

    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction> {
        let m = matching::heavy_edge(g, rng);
        (!m.is_empty()).then(|| contract_matching(g, &m))
    }
}

/// Greedy matching over a uniformly random edge order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeOrderMatching;

impl CoarsenScheme for EdgeOrderMatching {
    fn name(&self) -> &'static str {
        "edge-order-matching"
    }

    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction> {
        let m = matching::random_edge_order(g, rng);
        (!m.is_empty()).then(|| contract_matching(g, &m))
    }
}

/// Range-partitioned parallel greedy matching for million-vertex
/// coarsening: workers match within disjoint contiguous vertex ranges
/// (heaviest free incident edge, ties to the lowest neighbor id), then
/// a serial sweep matches the leftover vertices across range
/// boundaries, so the result is maximal.
///
/// Unlike the other schemes this one draws **no randomness** — the rng
/// argument is untouched, trivially satisfying the stream contract of
/// [`CoarsenScheme::coarsen`]. Like
/// [`ParallelFm`](crate::par_fm::ParallelFm) it is deterministic at a
/// fixed thread count but not across thread counts (range boundaries
/// move); it is intended for the huge-profile pipelines, not the
/// golden-pinned paper experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelMatching {
    /// Worker count; `None` defers to [`bisect_par::num_threads`].
    threads: Option<usize>,
}

impl ParallelMatching {
    /// Creates the scheme with the process-default thread count.
    pub fn new() -> ParallelMatching {
        ParallelMatching { threads: None }
    }

    /// Pins the worker (and range) count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> ParallelMatching {
        assert!(threads > 0, "thread count must be positive");
        self.threads = Some(threads);
        self
    }

    /// The worker count a call will use right now.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(bisect_par::num_threads)
    }
}

impl CoarsenScheme for ParallelMatching {
    fn name(&self) -> &'static str {
        "parallel-matching"
    }

    fn coarsen(&self, g: &Graph, rng: &mut dyn RngCore) -> Option<Contraction> {
        // Deterministic and rng-free: nothing to consume, so the
        // stream-preservation contract holds vacuously.
        let _ = rng;
        let m = range_matching(g, self.threads());
        (!m.is_empty()).then(|| contract_matching(g, &m))
    }
}

/// The matching behind [`ParallelMatching`]: parallel in-range greedy
/// phase, serial cross-range cleanup. Maximal by construction.
///
/// Each vertex prefers its *heaviest* free edge (ties broken by lowest
/// neighbor id) — the heavy-edge rule. On contracted graphs heavy
/// edges mark clusters that earlier levels already merged, so
/// following them keeps the coarsening inside natural communities
/// instead of randomly welding across them; on unit-weight inputs the
/// rule degrades to first-free-neighbor.
fn range_matching(g: &Graph, threads: usize) -> Matching {
    let n = g.num_vertices();
    if n == 0 {
        return Matching::empty(0);
    }
    // Heaviest admissible free neighbor of `v`; `admit` filters the
    // candidate ids (range membership / global freeness).
    let heaviest = |v: VertexId, admit: &dyn Fn(VertexId) -> bool| -> Option<VertexId> {
        let mut best: Option<(u64, VertexId)> = None;
        for (u, w) in g.neighbors(v).iter().copied().zip(g.neighbor_weights(v)) {
            if admit(u) && best.is_none_or(|(bw, bu)| (*w > bw) || (*w == bw && u < bu)) {
                best = Some((*w, u));
            }
        }
        best.map(|(_, u)| u)
    };
    let t = threads.max(1).min(n);
    let chunk = n.div_ceil(t);
    let ranges = n.div_ceil(chunk);
    // Parallel phase: only pairs with both endpoints inside one range,
    // so the disjoint ranges cannot produce conflicting pairs.
    let local: Vec<Vec<(VertexId, VertexId)>> = bisect_par::par_map_with(t, ranges, |k| {
        let lo = k * chunk;
        let hi = ((k + 1) * chunk).min(n);
        let mut matched = vec![false; hi - lo];
        let mut pairs = Vec::new();
        for v in lo..hi {
            if matched[v - lo] {
                continue;
            }
            let mate = heaviest(v as VertexId, &|u| {
                let ui = u as usize;
                ui >= lo && ui < hi && !matched[ui - lo]
            });
            if let Some(u) = mate {
                matched[v - lo] = true;
                matched[u as usize - lo] = true;
                pairs.push((v as VertexId, u));
            }
        }
        pairs
    });
    // Serial cleanup: match the still-free vertices (whose only free
    // neighbors cross a range boundary) in ascending id order.
    let mut taken = vec![false; n];
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for local_pairs in &local {
        for &(u, v) in local_pairs {
            taken[u as usize] = true;
            taken[v as usize] = true;
        }
        pairs.extend_from_slice(local_pairs);
    }
    for v in 0..n {
        if taken[v] {
            continue;
        }
        let mate = heaviest(v as VertexId, &|u| !taken[u as usize]);
        if let Some(u) = mate {
            taken[v] = true;
            taken[u as usize] = true;
            pairs.push((v as VertexId, u));
        }
    }
    Matching::from_pairs(n, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schemes_contract_nontrivial_graphs() {
        let g = special::grid(6, 6);
        let schemes: [&dyn CoarsenScheme; 3] =
            [&RandomMatching, &HeavyEdgeMatching, &EdgeOrderMatching];
        for s in schemes {
            let mut rng = StdRng::seed_from_u64(1);
            let c = s.coarsen(&g, &mut rng).expect("grid has edges");
            assert!(c.coarse().num_vertices() < g.num_vertices(), "{}", s.name());
            assert_eq!(
                c.coarse().total_vertex_weight(),
                g.num_vertices() as u64,
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn edgeless_graph_yields_none() {
        let g = bisect_graph::Graph::empty(5);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(RandomMatching.coarsen(&g, &mut rng).is_none());
        assert!(HeavyEdgeMatching.coarsen(&g, &mut rng).is_none());
        assert!(EdgeOrderMatching.coarsen(&g, &mut rng).is_none());
    }

    #[test]
    fn random_matching_stream_matches_legacy_call() {
        // The scheme must consume the rng exactly like a direct
        // `matching::random_maximal` call so the pipeline stays
        // bit-identical to the legacy compaction path.
        let g = special::ladder(10);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let c = RandomMatching.coarsen(&g, &mut a).unwrap();
        let m = matching::random_maximal(&g, &mut b);
        let d = contract_matching(&g, &m);
        assert_eq!(c.fine_to_coarse(), d.fine_to_coarse());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn parallel_matching_is_maximal_and_deterministic() {
        let g = special::grid(9, 7);
        for threads in [1, 2, 4] {
            let m = range_matching(&g, threads);
            assert!(m.is_maximal(&g), "threads {threads}");
            assert!(m.respects_graph(&g), "threads {threads}");
            let again = range_matching(&g, threads);
            assert_eq!(m.pairs(), again.pairs(), "threads {threads}");
        }
    }

    #[test]
    fn parallel_matching_contracts_and_preserves_weight() {
        let g = special::grid(6, 6);
        let scheme = ParallelMatching::new().with_threads(4);
        let mut rng = StdRng::seed_from_u64(1);
        let c = scheme.coarsen(&g, &mut rng).expect("grid has edges");
        assert!(c.coarse().num_vertices() < g.num_vertices());
        assert_eq!(c.coarse().total_vertex_weight(), g.num_vertices() as u64);
    }

    #[test]
    fn parallel_matching_draws_no_randomness() {
        let g = special::ladder(10);
        let scheme = ParallelMatching::new().with_threads(2);
        let mut rng = StdRng::seed_from_u64(3);
        let probe = rng.clone();
        let _ = scheme.coarsen(&g, &mut rng);
        assert_eq!(rng.clone().next_u64(), probe.clone().next_u64());
    }

    #[test]
    fn parallel_matching_handles_edgeless_and_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        let scheme = ParallelMatching::new().with_threads(2);
        assert!(scheme
            .coarsen(&bisect_graph::Graph::empty(5), &mut rng)
            .is_none());
        assert!(scheme
            .coarsen(&bisect_graph::Graph::empty(0), &mut rng)
            .is_none());
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            RandomMatching.name(),
            HeavyEdgeMatching.name(),
            EdgeOrderMatching.name(),
            ParallelMatching::new().name(),
        ];
        assert_eq!(
            names.len(),
            names.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }
}
