//! The shared coarsen → partition → refine engine.
//!
//! One function, [`run`], subsumes the three bespoke drivers the crate
//! used to carry:
//!
//! * one-shot compaction (§V of the paper; CKL/CSA) is
//!   [`CoarsenDepth::Levels`]`(1)`,
//! * multilevel (V-cycle) bisection is [`CoarsenDepth::ToSize`], and
//! * a plain heuristic from a random start is [`CoarsenDepth::Flat`].
//!
//! [`Pipeline`](super::Pipeline) is a thin descriptor around this one
//! call — which is what made the pipeline *bit-identical* to the
//! bespoke drivers it replaced: both sides executed this exact
//! sequence of rng draws (pinned today by the golden values in
//! `tests/pipeline_equivalence.rs`).
//!
//! The rng-draw order is part of the contract and must not be
//! reordered: (1) one matching per coarsening level, finest first;
//! (2) the initial partition of the coarsest graph — or, in `Levels`
//! mode when the coarsener made no progress, the refiner's own
//! from-scratch bisection (the legacy §V fallback for edgeless
//! graphs); (3) one refinement per level, coarsest first, each from
//! the projected and rebalanced bisection of the level below.

use bisect_graph::contraction::Contraction;
use bisect_graph::Graph;
use rand::RngCore;

use crate::bisector::Refiner;
use crate::error::BisectError;
use crate::partition::{rebalance, rebalance_with_cache, Bisection};
use crate::workspace::Workspace;

use super::coarsen::CoarsenScheme;
use super::initial::InitialPartitioner;

/// How far the pipeline coarsens before the initial partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoarsenDepth {
    /// No coarsening: initial partition and refinement happen directly
    /// on the input graph.
    Flat,
    /// Exactly this many contraction levels (stopping early only when
    /// the coarsener makes no progress). The paper's compaction is
    /// `Levels(1)`.
    Levels(usize),
    /// Contract until the graph has at most this many vertices — the
    /// multilevel (V-cycle) regime. Must be at least 2.
    ToSize(usize),
}

impl CoarsenDepth {
    /// Whether another coarsening level should be attempted given how
    /// many levels exist and how large the current coarsest graph is.
    pub(crate) fn wants_more(self, levels_done: usize, vertices: usize) -> bool {
        match self {
            CoarsenDepth::Flat => false,
            CoarsenDepth::Levels(k) => levels_done < k,
            CoarsenDepth::ToSize(target) => vertices > target,
        }
    }

    /// Validates the depth, rejecting `ToSize` targets below 2 (a
    /// 1-vertex coarsest graph has no bisection to refine).
    pub(crate) fn validate(self) -> Result<CoarsenDepth, BisectError> {
        if let CoarsenDepth::ToSize(target) = self {
            if target < 2 {
                return Err(BisectError::InvalidConfig(format!(
                    "coarsest size must be at least 2, got {target}"
                )));
            }
        }
        Ok(self)
    }
}

/// Runs the full coarsen → partition → refine cycle. Returns the final
/// balanced bisection of `g` together with the summed work count of
/// every refinement stage (see
/// [`Bisector::bisect_counted`](crate::bisector::Bisector::bisect_counted)).
///
/// # Errors
///
/// Propagates the initial partitioner's error (e.g.
/// [`BisectError::TooLarge`] from the exact partitioner); the built-in
/// random partitioners never fail.
pub fn run(
    coarsener: &dyn CoarsenScheme,
    depth: CoarsenDepth,
    initial: &dyn InitialPartitioner,
    refiner: &dyn Refiner,
    g: &Graph,
    rng: &mut dyn RngCore,
    ws: &mut Workspace,
) -> Result<(Bisection, u64), BisectError> {
    // Coarsening phase: a ladder of contractions, finest first.
    let mut ladder: Vec<Contraction> = Vec::new();
    loop {
        let step = {
            let current: &Graph = ladder.last().map_or(g, |c| c.coarse());
            if depth.wants_more(ladder.len(), current.num_vertices()) {
                coarsener.coarsen(current, rng)
            } else {
                None
            }
        };
        match step {
            Some(c) => ladder.push(c),
            None => break,
        }
    }

    // Initial bisection of the coarsest graph. In Levels mode an empty
    // ladder means the coarsener made no progress on the input graph
    // itself; the paper's compaction then falls through to the plain
    // heuristic (its own random start), which we preserve exactly.
    let (mut current, mut work) = if ladder.is_empty() && matches!(depth, CoarsenDepth::Levels(_)) {
        refiner.bisect_counted(g, rng, ws)
    } else {
        let coarsest: &Graph = ladder.last().map_or(g, |c| c.coarse());
        let init = initial.partition(coarsest, rng)?;
        refiner.refine_counted(coarsest, init, rng, ws)
    };

    // Uncoarsening phase: project and refine level by level. The fine
    // graph of ladder level `i` is the coarse graph of level `i − 1`
    // (or the input graph at the bottom). Projection can be off by one
    // weight unit when a matching leaves singletons, so each level
    // rebalances before refining.
    //
    // Boundary-localized refiners opt into the projected-cache
    // protocol: the engine builds the gain cache once on the (small)
    // coarsest graph and *projects* it through each uncoarsening step,
    // so no level ever pays the O(V + E) rebuild — rebalancing then
    // rides the same cache. Refiners on the default path see the exact
    // sequence of calls (and rng draws) they always did.
    let projected_cache = refiner.wants_projected_cache() && !ladder.is_empty();
    if projected_cache {
        // lint: allow(no-panic) — guarded by !ladder.is_empty() above
        let coarsest: &Graph = ladder.last().map(|c| c.coarse()).expect("nonempty ladder");
        ws.gain_cache.init(coarsest, &current);
    }
    for i in (0..ladder.len()).rev() {
        let fine: &Graph = if i == 0 { g } else { ladder[i - 1].coarse() };
        let mut projected = Bisection::from_sides(fine, ladder[i].project_sides(current.sides()))?;
        let (refined, stage_work) = if projected_cache {
            ws.gain_cache
                .project(fine, &projected, ladder[i].fine_to_coarse());
            rebalance_with_cache(fine, &mut projected, &mut ws.gain_cache);
            refiner.refine_projected_counted(fine, projected, rng, ws)
        } else {
            rebalance(fine, &mut projected);
            refiner.refine_counted(fine, projected, rng, ws)
        };
        current = refined;
        work += stage_work;
    }
    if !current.is_balanced(g) {
        rebalance(g, &mut current);
    }
    Ok((current, work))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kl::KernighanLin;
    use crate::pipeline::coarsen::RandomMatching;
    use crate::pipeline::initial::WeightBalancedInit;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_kl(g: &Graph, depth: CoarsenDepth, seed: u64) -> (Bisection, u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        run(
            &RandomMatching,
            depth,
            &WeightBalancedInit,
            &KernighanLin::new(),
            g,
            &mut rng,
            &mut Workspace::new(),
        )
        .expect("infallible stages")
    }

    #[test]
    fn all_depths_produce_balanced_bisections() {
        let g = special::grid(8, 8);
        for depth in [
            CoarsenDepth::Flat,
            CoarsenDepth::Levels(1),
            CoarsenDepth::Levels(3),
            CoarsenDepth::ToSize(16),
        ] {
            let (p, _) = run_kl(&g, depth, 5);
            assert!(p.is_balanced(&g), "{depth:?}");
            assert_eq!(p.cut(), p.recompute_cut(&g), "{depth:?}");
        }
    }

    #[test]
    fn deeper_coarsening_still_terminates_on_tiny_graphs() {
        let g = special::path(3);
        let (p, _) = run_kl(&g, CoarsenDepth::ToSize(2), 1);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn levels_mode_on_edgeless_graph_falls_through() {
        let g = Graph::empty(8);
        let (p, _) = run_kl(&g, CoarsenDepth::Levels(1), 3);
        assert_eq!(p.cut(), 0);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn work_count_accumulates_over_levels() {
        let g = special::grid(10, 10);
        let (_, flat) = run_kl(&g, CoarsenDepth::Flat, 8);
        let (_, ml) = run_kl(&g, CoarsenDepth::ToSize(8), 8);
        assert!(flat >= 1);
        // The multilevel run refines at every level of the ladder.
        assert!(ml >= flat.min(2));
    }

    #[test]
    fn projected_cache_path_is_balanced_consistent_and_deterministic() {
        use crate::fm::BoundaryFm;
        let g = special::grid(12, 12);
        let run_once = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            run(
                &RandomMatching,
                CoarsenDepth::ToSize(16),
                &WeightBalancedInit,
                &BoundaryFm::new(),
                &g,
                &mut rng,
                &mut Workspace::new(),
            )
            .expect("infallible stages")
        };
        for seed in 0..6 {
            let (p, work) = run_once(seed);
            assert!(p.is_balanced(&g), "seed {seed}");
            assert_eq!(p.cut(), p.recompute_cut(&g), "seed {seed}");
            assert!(work >= 1, "seed {seed}");
            // Multilevel boundary FM should land near the optimum 12.
            assert!(p.cut() <= 20, "seed {seed}: cut {}", p.cut());
            let (q, _) = run_once(seed);
            assert_eq!(p, q, "seed {seed}: nondeterministic");
        }
    }

    #[test]
    fn projected_cache_flat_depth_falls_back_gracefully() {
        use crate::fm::BoundaryFm;
        let g = special::grid(6, 6);
        let mut rng = StdRng::seed_from_u64(9);
        let (p, _) = run(
            &RandomMatching,
            CoarsenDepth::Flat,
            &WeightBalancedInit,
            &BoundaryFm::new(),
            &g,
            &mut rng,
            &mut Workspace::new(),
        )
        .expect("infallible stages");
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn depth_validation() {
        assert!(CoarsenDepth::ToSize(1).validate().is_err());
        assert!(CoarsenDepth::ToSize(2).validate().is_ok());
        assert!(CoarsenDepth::Levels(0).validate().is_ok());
        assert!(CoarsenDepth::Flat.validate().is_ok());
    }
}
