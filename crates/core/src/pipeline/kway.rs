//! Recursive `2^k`-way partitioning on top of any bisector — the
//! min-cut VLSI placement loop the paper's introduction motivates,
//! expressed as a pipeline post-stage: bisect, then recurse on each
//! half's *induced subgraph*, so edges already cut at a higher level
//! are paid for once.

use bisect_graph::{subgraph, Graph, VertexId};
use rand::RngCore;

use crate::bisector::Bisector;
use crate::error::BisectError;

/// A partition of a graph's vertices into `num_parts` labeled parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWayPartition {
    labels: Vec<u32>,
    num_parts: usize,
}

impl KWayPartition {
    /// The part of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn part(&self, v: VertexId) -> u32 {
        self.labels[v as usize]
    }

    /// Labels indexed by vertex id, each in `0..num_parts`.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Vertices per part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Total weight of edges whose endpoints lie in different parts.
    ///
    /// # Panics
    ///
    /// Panics if `g` does not match the partition's vertex count.
    pub fn cut(&self, g: &Graph) -> u64 {
        assert_eq!(
            g.num_vertices(),
            self.labels.len(),
            "partition does not match graph"
        );
        g.edges()
            .filter(|&(u, v, _)| self.labels[u as usize] != self.labels[v as usize])
            .map(|(_, _, w)| w)
            .sum()
    }
}

/// Partitions `g` into `parts` (a positive power of two) balanced parts
/// by recursive bisection with `bisector`. Part sizes differ by at most
/// `⌈n / parts⌉ − ⌊n / parts⌋ + 1`.
///
/// # Errors
///
/// Returns [`BisectError::InvalidPartCount`] unless `parts` is a
/// positive power of two.
pub fn recursive_partition<B: Bisector + ?Sized>(
    bisector: &B,
    g: &Graph,
    parts: usize,
    rng: &mut dyn RngCore,
) -> Result<KWayPartition, BisectError> {
    if parts == 0 || !parts.is_power_of_two() {
        return Err(BisectError::InvalidPartCount { parts });
    }
    let mut labels = vec![0u32; g.num_vertices()];
    let all: Vec<VertexId> = g.vertices().collect();
    split(bisector, g, &all, parts, 0, &mut labels, rng)?;
    Ok(KWayPartition {
        labels,
        num_parts: parts,
    })
}

fn split<B: Bisector + ?Sized>(
    bisector: &B,
    g: &Graph,
    region: &[VertexId],
    parts: usize,
    first_label: u32,
    labels: &mut [u32],
    rng: &mut dyn RngCore,
) -> Result<(), BisectError> {
    if parts == 1 {
        for &v in region {
            labels[v as usize] = first_label;
        }
        return Ok(());
    }
    let (sub, map) = subgraph::induced_subgraph(g, region)?;
    let bisection = bisector.bisect(&sub, rng);
    let mut side_a = Vec::with_capacity(region.len() / 2 + 1);
    let mut side_b = Vec::with_capacity(region.len() / 2 + 1);
    for (new_id, &old_id) in map.iter().enumerate() {
        if bisection.sides()[new_id] {
            side_b.push(old_id);
        } else {
            side_a.push(old_id);
        }
    }
    split(bisector, g, &side_a, parts / 2, first_label, labels, rng)?;
    split(
        bisector,
        g,
        &side_b,
        parts / 2,
        first_label + (parts / 2) as u32,
        labels,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kl::KernighanLin;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quad(g: &Graph, parts: usize, seed: u64) -> KWayPartition {
        let mut rng = StdRng::seed_from_u64(seed);
        recursive_partition(&KernighanLin::new(), g, parts, &mut rng).unwrap()
    }

    #[test]
    fn rejects_non_power_of_two() {
        let g = special::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(0);
        for parts in [0usize, 3, 6, 12] {
            let err = recursive_partition(&KernighanLin::new(), &g, parts, &mut rng).unwrap_err();
            assert_eq!(err, BisectError::InvalidPartCount { parts });
        }
    }

    #[test]
    fn one_part_is_trivial() {
        let g = special::grid(4, 4);
        let p = quad(&g, 1, 0);
        assert_eq!(p.cut(&g), 0);
        assert_eq!(p.part_sizes(), vec![16]);
    }

    #[test]
    fn four_way_grid_partition_is_good() {
        // Optimal 4-way cut of an 8x8 grid (quadrants) costs 16.
        let g = special::grid(8, 8);
        let p = quad(&g, 4, 3);
        assert_eq!(p.part_sizes(), vec![16, 16, 16, 16]);
        assert!(p.cut(&g) <= 28, "cut {}", p.cut(&g));
        assert!(p.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn eight_way_with_uneven_total() {
        let g = special::binary_tree(100);
        let p = quad(&g, 8, 4);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 2, "sizes {sizes:?}");
    }

    #[test]
    fn cut_counts_inter_part_edges_exactly() {
        let g = special::cycle(16);
        let p = quad(&g, 4, 5);
        assert!(p.cut(&g) >= 4);
        let manual: u64 = g
            .edges()
            .filter(|&(u, v, _)| p.part(u) != p.part(v))
            .map(|(_, _, w)| w)
            .sum();
        assert_eq!(p.cut(&g), manual);
    }

    #[test]
    fn parts_equal_vertices_gives_singletons() {
        let g = special::grid(2, 4); // 8 vertices
        let p = quad(&g, 8, 6);
        assert_eq!(p.part_sizes(), vec![1; 8]);
        assert_eq!(p.cut(&g), g.num_edges() as u64);
    }
}
