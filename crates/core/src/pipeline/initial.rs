//! Initial partitioners: how the pipeline bisects the coarsest graph.
//!
//! An [`InitialPartitioner`] produces the starting bisection that the
//! pipeline's [`Refiner`](crate::bisector::Refiner) then improves at
//! every level. The paper's protocol corresponds to [`RandomInit`]
//! (flat pipelines) and [`WeightBalancedInit`] (coarse graphs, where
//! count balance does not project to vertex balance); the structured
//! alternatives ([`GreedyInit`], [`SpectralInit`], [`ExactInit`],
//! [`BfsInit`], [`DfsInit`]) slot in alternative initial solutions the
//! way later multilevel partitioners do.

use bisect_graph::Graph;
use rand::RngCore;

use crate::bisector::Bisector;
use crate::error::BisectError;
use crate::exact;
use crate::greedy::GreedyGrowth;
use crate::partition::Bisection;
use crate::seed;
use crate::spectral::SpectralBisector;

/// Produces the initial bisection of (usually) the coarsest graph.
///
/// Implementations must return a *balanced* bisection (per
/// [`Bisection::is_balanced`]) and draw all randomness from the
/// supplied rng, preserving the crate's determinism guarantee.
pub trait InitialPartitioner: Send + Sync {
    /// Partitioner name for diagnostics and pipeline descriptions.
    fn name(&self) -> &'static str;

    /// Computes a balanced starting bisection of `g`.
    ///
    /// # Errors
    ///
    /// Implementation-specific; the only built-in fallible partitioner
    /// is [`ExactInit`], which refuses graphs beyond the exact solver's
    /// limit with [`BisectError::TooLarge`].
    fn partition(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Bisection, BisectError>;
}

/// A uniformly random *count*-balanced bisection
/// ([`seed::random_balanced`]) — the paper's starting configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomInit;

impl InitialPartitioner for RandomInit {
    fn name(&self) -> &'static str {
        "random"
    }

    fn partition(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Bisection, BisectError> {
        Ok(seed::random_balanced(g, rng))
    }
}

/// A random *weight*-balanced bisection
/// ([`seed::weight_balanced_random`]): what contracted graphs need so
/// the projection is vertex-balanced on the fine graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightBalancedInit;

impl InitialPartitioner for WeightBalancedInit {
    fn name(&self) -> &'static str {
        "weight-balanced"
    }

    fn partition(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Bisection, BisectError> {
        Ok(seed::weight_balanced_random(g, rng))
    }
}

/// BFS region growing ([`GreedyGrowth`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GreedyInit(pub GreedyGrowth);

impl GreedyInit {
    /// Greedy growth with its default number of attempts.
    pub fn new() -> GreedyInit {
        GreedyInit(GreedyGrowth::new())
    }
}

impl InitialPartitioner for GreedyInit {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn partition(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Bisection, BisectError> {
        Ok(self.0.bisect(g, rng))
    }
}

/// Fiedler-vector bisection ([`SpectralBisector`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpectralInit(pub SpectralBisector);

impl SpectralInit {
    /// Spectral bisection with its default iteration budget.
    pub fn new() -> SpectralInit {
        SpectralInit(SpectralBisector::new())
    }
}

impl InitialPartitioner for SpectralInit {
    fn name(&self) -> &'static str {
        "spectral"
    }

    fn partition(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Bisection, BisectError> {
        Ok(self.0.bisect(g, rng))
    }
}

/// Branch-and-bound optimum ([`exact::minimum_bisection`]) — only for
/// coarsest graphs within the solver's limit
/// ([`exact::MAX_VERTICES`]); larger graphs yield
/// [`BisectError::TooLarge`]. Pairs naturally with
/// [`CoarsenDepth::ToSize`](super::CoarsenDepth::ToSize) at or below
/// the limit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactInit;

impl InitialPartitioner for ExactInit {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn partition(&self, g: &Graph, _rng: &mut dyn RngCore) -> Result<Bisection, BisectError> {
        Ok(exact::minimum_bisection(g)?)
    }
}

/// A BFS ball around a random root ([`seed::bfs_balanced`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BfsInit;

impl InitialPartitioner for BfsInit {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn partition(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Bisection, BisectError> {
        Ok(seed::bfs_balanced(g, rng))
    }
}

/// The first half of a depth-first preorder ([`seed::dfs_balanced`]);
/// deterministic, near-optimal on degree-2 graphs (§VI of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfsInit;

impl InitialPartitioner for DfsInit {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn partition(&self, g: &Graph, _rng: &mut dyn RngCore) -> Result<Bisection, BisectError> {
        Ok(seed::dfs_balanced(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_infallible_partitioners_balance() {
        let g = special::grid(6, 6);
        let parts: [&dyn InitialPartitioner; 6] = [
            &RandomInit,
            &WeightBalancedInit,
            &GreedyInit::new(),
            &SpectralInit::new(),
            &BfsInit,
            &DfsInit,
        ];
        for p in parts {
            let mut rng = StdRng::seed_from_u64(7);
            let b = p.partition(&g, &mut rng).expect("infallible on a grid");
            assert!(b.is_balanced(&g), "{}", p.name());
            assert_eq!(b.cut(), b.recompute_cut(&g), "{}", p.name());
        }
    }

    #[test]
    fn exact_init_solves_small_and_rejects_large() {
        let small = special::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let b = ExactInit.partition(&small, &mut rng).expect("16 vertices");
        assert_eq!(b.cut(), 4); // bisection width of the 4x4 grid

        let large = special::grid(8, 8);
        let err = ExactInit.partition(&large, &mut rng).unwrap_err();
        assert!(matches!(err, BisectError::TooLarge { vertices: 64, .. }));
    }

    #[test]
    fn random_init_matches_seed_module_stream() {
        // Bit-identity anchor: the partitioner is a plain passthrough.
        let g = special::grid(5, 4);
        let a = RandomInit
            .partition(&g, &mut StdRng::seed_from_u64(11))
            .unwrap();
        let b = seed::random_balanced(&g, &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
