//! The composable coarsen → partition → refine pipeline.
//!
//! The paper's compaction trick — contract a random maximal matching,
//! bisect the compacted graph, project back, refine (§V) — is one level
//! of what later became the multilevel paradigm. This module expresses
//! the whole family as one architecture with three swappable stages:
//!
//! * a [`CoarsenScheme`] contracts the graph one level at a time
//!   (random maximal matching — the paper's compaction — heavy-edge
//!   matching, or edge-order matching),
//! * an [`InitialPartitioner`] bisects the coarsest graph (random,
//!   weight-balanced, greedy, spectral, or exact), and
//! * a [`Refiner`] (Kernighan-Lin, Fiduccia-Mattheyses, or simulated
//!   annealing) improves the bisection at every level, threading one
//!   [`Workspace`] through the whole cycle so the hot paths stay
//!   allocation-free.
//!
//! A [`Pipeline`] composes the three behind the ordinary
//! [`Bisector`] interface. Descriptors reproduce the paper's
//! algorithms *bit-for-bit* relative to the bespoke pre-pipeline
//! wrappers they replaced (pinned by the golden values in
//! `tests/pipeline_equivalence.rs`):
//!
//! | descriptor | algorithm | table name |
//! |---|---|---|
//! | [`Pipeline::ckl`] | compaction around Kernighan-Lin (§V) | `CKL` |
//! | [`Pipeline::csa`] | compaction around simulated annealing (§V) | `CSA` |
//! | [`Pipeline::compacted`] | compaction around any refiner | `C{r}` |
//! | [`Pipeline::multilevel`] | multilevel V-cycle around any refiner | `ML-{r}` |
//! | [`Pipeline::flat`] | the bare refiner | `{r}` |
//!
//! # Example
//!
//! ```
//! use bisect_core::bisector::{best_of, Bisector};
//! use bisect_core::pipeline::Pipeline;
//! use bisect_gen::special;
//! use rand::SeedableRng;
//!
//! let g = special::grid(10, 10);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1989);
//! let ckl = Pipeline::ckl();
//! assert_eq!(ckl.name(), "CKL");
//! let p = best_of(&ckl, &g, 2, &mut rng);
//! assert!(p.is_balanced(&g));
//! ```
//!
//! Fallible configurations (an exact initial partitioner, a custom
//! coarsest size) surface a typed [`BisectError`] through the `try_*`
//! entry points instead of panicking.

pub mod coarsen;
pub mod engine;
pub mod initial;
pub mod kway;

use std::sync::Arc;

use bisect_graph::Graph;
use rand::RngCore;

use crate::bisector::{Bisector, Refiner};
use crate::error::BisectError;
use crate::kl::KernighanLin;
use crate::partition::Bisection;
use crate::sa::SimulatedAnnealing;
use crate::workspace::Workspace;

pub use coarsen::{
    CoarsenScheme, EdgeOrderMatching, HeavyEdgeMatching, ParallelMatching, RandomMatching,
};
pub use engine::CoarsenDepth;
pub use initial::{
    BfsInit, DfsInit, ExactInit, GreedyInit, InitialPartitioner, RandomInit, SpectralInit,
    WeightBalancedInit,
};
pub use kway::{recursive_partition, KWayPartition};

/// Default coarsest size of [`Pipeline::multilevel`].
pub const DEFAULT_COARSEST_SIZE: usize = 32;

/// A composed coarsen → partition → refine bisection algorithm.
///
/// Cheap to clone (the stages are shared behind [`Arc`]s) and `Sync`,
/// so one pipeline value can drive every worker thread of the parallel
/// experiment engine.
#[derive(Clone)]
pub struct Pipeline {
    coarsener: Arc<dyn CoarsenScheme>,
    depth: CoarsenDepth,
    initial: Arc<dyn InitialPartitioner>,
    refiner: Arc<dyn Refiner + Send + Sync>,
    name: String,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("name", &self.name)
            .field("coarsener", &self.coarsener.name())
            .field("depth", &self.depth)
            .field("initial", &self.initial.name())
            .field("refiner", &self.refiner.name())
            .finish()
    }
}

impl Pipeline {
    /// The paper's **CKL**: one level of random-matching compaction
    /// around Kernighan-Lin.
    pub fn ckl() -> Pipeline {
        Pipeline::compacted(KernighanLin::new())
    }

    /// The paper's **CSA**: one level of random-matching compaction
    /// around simulated annealing with the paper's schedule.
    pub fn csa() -> Pipeline {
        Pipeline::compacted(SimulatedAnnealing::new())
    }

    /// Plain Kernighan-Lin from a random start, as a flat pipeline.
    pub fn kl() -> Pipeline {
        Pipeline::flat(KernighanLin::new())
    }

    /// Plain simulated annealing from a random start, as a flat
    /// pipeline.
    pub fn sa() -> Pipeline {
        Pipeline::flat(SimulatedAnnealing::new())
    }

    /// One level of compaction (§V) around any refiner: random maximal
    /// matching, weight-balanced coarse start, refine coarse then fine.
    /// Named `C{refiner}` after the paper's CKL/CSA convention.
    pub fn compacted<R: Refiner + Send + Sync + 'static>(refiner: R) -> Pipeline {
        let name = format!("C{}", refiner.name());
        Pipeline {
            coarsener: Arc::new(RandomMatching),
            depth: CoarsenDepth::Levels(1),
            initial: Arc::new(WeightBalancedInit),
            refiner: Arc::new(refiner),
            name,
        }
    }

    /// Multilevel (V-cycle) bisection around any refiner, coarsening to
    /// at most [`DEFAULT_COARSEST_SIZE`] vertices. Named `ML-{refiner}`.
    pub fn multilevel<R: Refiner + Send + Sync + 'static>(refiner: R) -> Pipeline {
        Pipeline::multilevel_to(refiner, DEFAULT_COARSEST_SIZE)
            // lint: allow(no-panic) — DEFAULT_COARSEST_SIZE satisfies multilevel_to's check
            .expect("default coarsest size is valid")
    }

    /// As [`Pipeline::multilevel`] with an explicit coarsest size.
    ///
    /// # Errors
    ///
    /// Returns [`BisectError::InvalidConfig`] if `coarsest_size < 2`.
    pub fn multilevel_to<R: Refiner + Send + Sync + 'static>(
        refiner: R,
        coarsest_size: usize,
    ) -> Result<Pipeline, BisectError> {
        let depth = CoarsenDepth::ToSize(coarsest_size).validate()?;
        let name = format!("ML-{}", refiner.name());
        Ok(Pipeline {
            coarsener: Arc::new(RandomMatching),
            depth,
            initial: Arc::new(WeightBalancedInit),
            refiner: Arc::new(refiner),
            name,
        })
    }

    /// A flat pipeline: no coarsening, random balanced start, one
    /// refinement — the bare heuristic of the paper's protocol,
    /// bit-identical to calling the refiner directly. Named after the
    /// refiner.
    pub fn flat<R: Refiner + Send + Sync + 'static>(refiner: R) -> Pipeline {
        let name = refiner.name();
        Pipeline {
            coarsener: Arc::new(RandomMatching),
            depth: CoarsenDepth::Flat,
            initial: Arc::new(RandomInit),
            refiner: Arc::new(refiner),
            name,
        }
    }

    /// Replaces the coarsening scheme (e.g. [`HeavyEdgeMatching`]).
    pub fn with_coarsener<C: CoarsenScheme + 'static>(mut self, coarsener: C) -> Pipeline {
        self.coarsener = Arc::new(coarsener);
        self
    }

    /// Replaces the initial partitioner of the coarsest graph.
    pub fn with_initial<I: InitialPartitioner + 'static>(mut self, initial: I) -> Pipeline {
        self.initial = Arc::new(initial);
        self
    }

    /// Replaces the coarsening depth.
    ///
    /// # Errors
    ///
    /// Returns [`BisectError::InvalidConfig`] for a `ToSize` target
    /// below 2.
    pub fn with_depth(mut self, depth: CoarsenDepth) -> Result<Pipeline, BisectError> {
        self.depth = depth.validate()?;
        Ok(self)
    }

    /// Overrides the display name used in experiment tables.
    pub fn named(mut self, name: impl Into<String>) -> Pipeline {
        self.name = name.into();
        self
    }

    /// The configured coarsening depth.
    pub fn depth(&self) -> CoarsenDepth {
        self.depth
    }

    /// A one-line description of the composed stages, for diagnostics
    /// (e.g. `"random-matching → levels(1) → weight-balanced → KL"`).
    pub fn describe(&self) -> String {
        let depth = match self.depth {
            CoarsenDepth::Flat => "flat".to_string(),
            CoarsenDepth::Levels(k) => format!("levels({k})"),
            CoarsenDepth::ToSize(s) => format!("to-size({s})"),
        };
        format!(
            "{} → {} → {} → {}",
            self.coarsener.name(),
            depth,
            self.initial.name(),
            self.refiner.name()
        )
    }

    /// As [`Bisector::bisect_counted`], surfacing stage errors instead
    /// of panicking. The built-in descriptors never fail; pipelines
    /// with a fallible initial partitioner (e.g. [`ExactInit`]) should
    /// be run through here.
    ///
    /// # Errors
    ///
    /// Propagates the initial partitioner's [`BisectError`].
    pub fn try_bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> Result<(Bisection, u64), BisectError> {
        engine::run(
            self.coarsener.as_ref(),
            self.depth,
            self.initial.as_ref(),
            self.refiner.as_ref(),
            g,
            rng,
            ws,
        )
    }

    /// As [`Bisector::bisect`], surfacing stage errors instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Propagates the initial partitioner's [`BisectError`].
    pub fn try_bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Result<Bisection, BisectError> {
        Ok(self.try_bisect_counted(g, rng, &mut Workspace::new())?.0)
    }

    /// Partitions `g` into `parts` balanced parts by recursive
    /// bisection with this pipeline (see [`kway::recursive_partition`]).
    ///
    /// # Errors
    ///
    /// Returns [`BisectError::InvalidPartCount`] unless `parts` is a
    /// positive power of two, and propagates any stage error.
    pub fn partition_into(
        &self,
        g: &Graph,
        parts: usize,
        rng: &mut dyn RngCore,
    ) -> Result<KWayPartition, BisectError> {
        recursive_partition(self, g, parts, rng)
    }
}

impl Bisector for Pipeline {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn bisect(&self, g: &Graph, rng: &mut dyn RngCore) -> Bisection {
        self.bisect_in(g, rng, &mut Workspace::new())
    }

    fn bisect_in(&self, g: &Graph, rng: &mut dyn RngCore, ws: &mut Workspace) -> Bisection {
        self.bisect_counted(g, rng, ws).0
    }

    fn bisect_counted(
        &self,
        g: &Graph,
        rng: &mut dyn RngCore,
        ws: &mut Workspace,
    ) -> (Bisection, u64) {
        match self.try_bisect_counted(g, rng, ws) {
            Ok(result) => result,
            // lint: allow(no-panic) — documented contract of the infallible facade
            Err(e) => panic!(
                "pipeline `{}` ({}) failed: {e}; use try_bisect for fallible configurations",
                self.name,
                self.describe()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::FiducciaMattheyses;
    use bisect_gen::special;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn descriptor_names_match_the_tables() {
        assert_eq!(Pipeline::ckl().name(), "CKL");
        assert_eq!(Pipeline::csa().name(), "CSA");
        assert_eq!(Pipeline::kl().name(), "KL");
        assert_eq!(Pipeline::sa().name(), "SA");
        assert_eq!(Pipeline::compacted(FiducciaMattheyses::new()).name(), "CFM");
        assert_eq!(Pipeline::multilevel(KernighanLin::new()).name(), "ML-KL");
    }

    #[test]
    fn flat_pipeline_is_bit_identical_to_bare_refiner() {
        let g = special::grid(8, 8);
        let mut ws = Workspace::new();
        let direct =
            KernighanLin::new().bisect_counted(&g, &mut StdRng::seed_from_u64(42), &mut ws);
        let piped = Pipeline::kl().bisect_counted(&g, &mut StdRng::seed_from_u64(42), &mut ws);
        assert_eq!(direct, piped);
    }

    #[test]
    fn compacted_pipeline_balances_and_improves_trees() {
        let g = special::binary_tree(254);
        let mut rng = StdRng::seed_from_u64(1989);
        let kl = crate::bisector::best_of(&Pipeline::kl(), &g, 2, &mut rng);
        let ckl = crate::bisector::best_of(&Pipeline::ckl(), &g, 2, &mut rng);
        assert!(ckl.is_balanced(&g));
        assert!(ckl.cut() <= kl.cut(), "CKL {} > KL {}", ckl.cut(), kl.cut());
    }

    #[test]
    fn multilevel_pipeline_near_optimal_on_grid() {
        let g = special::grid(12, 12);
        let mut rng = StdRng::seed_from_u64(1989);
        let p =
            crate::bisector::best_of(&Pipeline::multilevel(KernighanLin::new()), &g, 2, &mut rng);
        assert!(p.cut() <= 16, "ML-KL cut {} (optimal 12)", p.cut());
    }

    #[test]
    fn heavy_edge_coarsener_slots_in() {
        let g = special::grid(6, 6);
        let mut rng = StdRng::seed_from_u64(4);
        let p = Pipeline::ckl()
            .with_coarsener(HeavyEdgeMatching)
            .bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), p.recompute_cut(&g));
    }

    #[test]
    fn spectral_initial_slots_in() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let p = Pipeline::multilevel(KernighanLin::new())
            .with_initial(SpectralInit::new())
            .bisect(&g, &mut rng);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn exact_initial_errors_are_typed_not_panics() {
        // ToSize(48) leaves a coarsest graph above the exact limit on a
        // large enough input; the typed error must surface via try_*.
        let g = special::grid(12, 12);
        let pipeline = Pipeline::multilevel(KernighanLin::new())
            .with_depth(CoarsenDepth::ToSize(100))
            .unwrap()
            .with_initial(ExactInit);
        let mut rng = StdRng::seed_from_u64(6);
        let err = pipeline.try_bisect(&g, &mut rng).unwrap_err();
        assert!(matches!(err, BisectError::TooLarge { .. }));
    }

    #[test]
    fn exact_initial_on_small_coarsest_succeeds() {
        let g = special::grid(6, 6);
        let pipeline = Pipeline::multilevel(KernighanLin::new())
            .with_depth(CoarsenDepth::ToSize(12))
            .unwrap()
            .with_initial(ExactInit);
        let mut rng = StdRng::seed_from_u64(7);
        let p = pipeline.try_bisect(&g, &mut rng).expect("coarsest <= 12");
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn invalid_coarsest_size_is_a_typed_error() {
        let err = Pipeline::multilevel_to(KernighanLin::new(), 1).unwrap_err();
        assert!(matches!(err, BisectError::InvalidConfig(_)));
        assert!(err.to_string().contains("at least 2"));
    }

    #[test]
    fn kway_partitioning_through_a_pipeline() {
        let g = special::grid(8, 8);
        let mut rng = StdRng::seed_from_u64(3);
        let p = Pipeline::kl().partition_into(&g, 4, &mut rng).unwrap();
        assert_eq!(p.part_sizes(), vec![16, 16, 16, 16]);
        let err = Pipeline::kl().partition_into(&g, 3, &mut rng).unwrap_err();
        assert_eq!(err, BisectError::InvalidPartCount { parts: 3 });
    }

    #[test]
    fn clone_shares_stages_and_is_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pipeline>();
        let a = Pipeline::ckl();
        let b = a.clone();
        let g = special::grid(6, 6);
        let x = a.bisect(&g, &mut StdRng::seed_from_u64(9));
        let y = b.bisect(&g, &mut StdRng::seed_from_u64(9));
        assert_eq!(x, y);
    }

    #[test]
    fn describe_lists_all_stages() {
        let d = Pipeline::ckl().describe();
        assert!(d.contains("random-matching"), "{d}");
        assert!(d.contains("levels(1)"), "{d}");
        assert!(d.contains("weight-balanced"), "{d}");
        assert!(d.contains("KL"), "{d}");
    }

    #[test]
    fn named_overrides_table_name() {
        assert_eq!(Pipeline::ckl().named("CKL-he").name(), "CKL-he");
    }
}
