//! Exact polynomial-time bisection of graphs with maximum degree 2.
//!
//! The paper remarks that degree-2 `Gbreg` instances "must consist only
//! of a collection of chordless cycles. As such the optimal bisection is
//! ≤ 2 … one could solve the problem exactly in time `O(n²)` for these
//! graphs." This module implements that solver for *any* graph of
//! maximum degree 2 (disjoint unions of simple paths and cycles):
//!
//! * cut **0** — some subset of whole components sums to `⌈n/2⌉`
//!   (subset-sum over component sizes);
//! * else cut **1** — fill the remainder with a *prefix* of some path
//!   component (one edge cut);
//! * else cut **2** — fill the remainder with an arc of a cycle (or a
//!   middle segment of a path), always possible.
//!
//! Each subset-sum pass is `O(#components · n)` and at most
//! `#components + 1` passes run — `O(n²)` total, as the paper says.

use bisect_graph::{Graph, VertexId};

use crate::partition::Bisection;

/// Whether every vertex of `g` has degree at most 2 (so the graph is a
/// disjoint union of simple paths, cycles, and isolated vertices).
pub fn is_degree_at_most_two(g: &Graph) -> bool {
    g.vertices().all(|v| g.degree(v) <= 2)
}

/// Computes an *optimal* bisection of a maximum-degree-2 graph.
/// Returns `None` if some vertex has degree greater than 2 or the
/// graph has non-unit edge multiplicities (a contracted multigraph).
///
/// The returned bisection is balanced and its cut is the true bisection
/// width (0, 1, or 2 — it cannot exceed 2 for such graphs when at least
/// one component must be split).
// lint: allow(no-panic) — subset-sum expects: the empty subset reaches
// 0 <= target, and a maximal j* leaves an unused component exceeding r.
pub fn bisect_degree2(g: &Graph) -> Option<Bisection> {
    if !is_degree_at_most_two(g) || !g.is_unit_weighted() {
        return None;
    }
    let n = g.num_vertices();
    let target = n.div_ceil(2);
    let components = trace_components(g);
    let sizes: Vec<usize> = components.iter().map(|c| c.vertices.len()).collect();

    // Cut 0: whole components only.
    if let Some(chosen) = subset_sum(&sizes, None, target) {
        return Some(build(g, &components, &chosen, None));
    }

    // Cut 1: whole components plus a prefix of one excluded path.
    for (skip, comp) in components.iter().enumerate() {
        if comp.is_cycle {
            continue;
        }
        if let Some((chosen, j)) = subset_sum_below(&sizes, Some(skip), target) {
            let r = target - j;
            if r > 0 && r < comp.vertices.len() {
                return Some(build(g, &components, &chosen, Some((skip, r))));
            }
        }
    }

    // Cut 2: whole components plus an arc of any excluded component.
    // The maximal reachable sum j* leaves every unused component larger
    // than the remainder, so this always completes.
    let (chosen, j) = subset_sum_below(&sizes, None, target).expect("0 is always reachable");
    let r = target - j;
    let split = chosen
        .iter()
        .enumerate()
        .position(|(i, &used)| !used && sizes[i] > r)
        .expect("maximality of j* guarantees an oversized unused component");
    Some(build(g, &components, &chosen, Some((split, r))))
}

/// One path or cycle component with its vertices in walk order.
struct Component {
    vertices: Vec<VertexId>,
    is_cycle: bool,
}

/// Traces each component of a max-degree-2 graph into walk order
/// (paths from one endpoint to the other; cycles from an arbitrary
/// start).
fn trace_components(g: &Graph) -> Vec<Component> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    // Paths first: start walks at degree-<2 vertices.
    for start in g.vertices() {
        if seen[start as usize] || g.degree(start) == 2 {
            continue;
        }
        components.push(walk(g, start, &mut seen, false));
    }
    // Remaining unseen vertices all have degree 2: cycles.
    for start in g.vertices() {
        if seen[start as usize] {
            continue;
        }
        components.push(walk(g, start, &mut seen, true));
    }
    components
}

fn walk(g: &Graph, start: VertexId, seen: &mut [bool], is_cycle: bool) -> Component {
    let mut vertices = vec![start];
    seen[start as usize] = true;
    let mut current = start;
    loop {
        let next = g
            .neighbors(current)
            .iter()
            .copied()
            .find(|&u| !seen[u as usize]);
        match next {
            Some(u) => {
                seen[u as usize] = true;
                vertices.push(u);
                current = u;
            }
            None => break,
        }
    }
    Component { vertices, is_cycle }
}

/// 0/1 subset sum with reconstruction: a subset of `sizes` (excluding
/// index `skip`) summing to exactly `target`, as a used-flags vector.
fn subset_sum(sizes: &[usize], skip: Option<usize>, target: usize) -> Option<Vec<bool>> {
    let (reachable, parent) = subset_sum_table(sizes, skip, target);
    reachable[target].then(|| reconstruct(sizes, &parent, target))
}

/// The largest reachable sum `j ≤ target` and a subset achieving it.
fn subset_sum_below(
    sizes: &[usize],
    skip: Option<usize>,
    target: usize,
) -> Option<(Vec<bool>, usize)> {
    let (reachable, parent) = subset_sum_table(sizes, skip, target);
    let j = (0..=target).rev().find(|&j| reachable[j])?;
    Some((reconstruct(sizes, &parent, j), j))
}

/// Standard DP; `parent[j]` records the item that first reached `j`.
fn subset_sum_table(
    sizes: &[usize],
    skip: Option<usize>,
    target: usize,
) -> (Vec<bool>, Vec<usize>) {
    let mut reachable = vec![false; target + 1];
    let mut parent = vec![usize::MAX; target + 1];
    reachable[0] = true;
    for (i, &size) in sizes.iter().enumerate() {
        if Some(i) == skip || size > target {
            continue;
        }
        for j in (size..=target).rev() {
            if !reachable[j] && reachable[j - size] {
                reachable[j] = true;
                parent[j] = i;
            }
        }
    }
    (reachable, parent)
}

fn reconstruct(sizes: &[usize], parent: &[usize], mut j: usize) -> Vec<bool> {
    let mut used = vec![false; sizes.len()];
    while j > 0 {
        let i = parent[j];
        debug_assert_ne!(i, usize::MAX, "reachable sums have parents");
        debug_assert!(!used[i], "0/1 DP uses each item once");
        used[i] = true;
        j -= sizes[i];
    }
    used
}

/// Assembles the side assignment: chosen whole components on side A,
/// plus (optionally) the first `r` walk-order vertices of component
/// `split` — a path prefix (1 cut edge) or cycle arc (2 cut edges).
fn build(
    g: &Graph,
    components: &[Component],
    chosen: &[bool],
    split: Option<(usize, usize)>,
) -> Bisection {
    let mut side = vec![true; g.num_vertices()];
    for (comp, _) in components.iter().zip(chosen).filter(|&(_, &used)| used) {
        for &v in &comp.vertices {
            side[v as usize] = false;
        }
    }
    if let Some((index, r)) = split {
        for &v in components[index].vertices.iter().take(r) {
            side[v as usize] = false;
        }
    }
    // lint: allow(no-panic) — side has exactly num_vertices entries, target per side
    Bisection::from_sides(g, side).expect("side vector covers every vertex")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::minimum_bisection;
    use bisect_gen::special;
    use rand::SeedableRng;

    #[test]
    fn rejects_higher_degree() {
        assert!(bisect_degree2(&special::star(5)).is_none());
        assert!(bisect_degree2(&special::grid(3, 3)).is_none());
        assert!(!is_degree_at_most_two(&special::binary_tree(7)));
    }

    #[test]
    fn rejects_weighted_graphs() {
        let mut b = bisect_graph::GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 2).unwrap();
        assert!(bisect_degree2(&b.build()).is_none());
    }

    #[test]
    fn single_cycle_cut_two() {
        let g = special::cycle(12);
        let p = bisect_degree2(&g).unwrap();
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), 2);
    }

    #[test]
    fn single_path_cut_one() {
        let g = special::path(10);
        let p = bisect_degree2(&g).unwrap();
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), 1);
    }

    #[test]
    fn even_split_of_cycles_cut_zero() {
        let g = special::cycle_collection(4, 5);
        let p = bisect_degree2(&g).unwrap();
        assert_eq!(p.cut(), 0);
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn path_fills_remainder_cut_one() {
        // A 6-cycle plus a 4-path: n = 10, target 5. No whole subset
        // sums to 5; the path prefix of length 5-4=1... 4-path excluded
        // leaves {6}: max j below 5 is 0 -> r=5 too big for the path.
        // Cycle excluded leaves {4}: j=4, r=1 < 6 but that split is the
        // cycle -> cut 2? No: splitting the *path* needs the other
        // subset to reach j with r < 4: exclude path, j from {6} is 0,
        // r=5 ≥ 4. So optimum here is 2 via a cycle arc... verify
        // against brute force instead of guessing.
        let mut b = bisect_graph::GraphBuilder::new(10);
        for i in 0..6u32 {
            b.add_edge(i, (i + 1) % 6).unwrap();
        }
        for i in 6..9u32 {
            b.add_edge(i, i + 1).unwrap();
        }
        let g = b.build();
        let p = bisect_degree2(&g).unwrap();
        let exact = minimum_bisection(&g).unwrap();
        assert_eq!(p.cut(), exact.cut());
        assert!(p.is_balanced(&g));
    }

    #[test]
    fn isolated_vertices_allow_cut_zero() {
        // A 5-cycle plus 5 isolated vertices: isolate side fills half.
        let mut b = bisect_graph::GraphBuilder::new(10);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5).unwrap();
        }
        let g = b.build();
        let p = bisect_degree2(&g).unwrap();
        assert_eq!(p.cut(), 0);
    }

    #[test]
    fn odd_vertex_count() {
        let g = special::path(7);
        let p = bisect_degree2(&g).unwrap();
        assert!(p.is_balanced(&g));
        assert_eq!(p.cut(), 1);
    }

    #[test]
    fn empty_and_tiny() {
        let g = bisect_graph::Graph::empty(0);
        assert_eq!(bisect_degree2(&g).unwrap().cut(), 0);
        let g = bisect_graph::Graph::empty(3);
        assert_eq!(bisect_degree2(&g).unwrap().cut(), 0);
    }

    #[test]
    fn matches_branch_and_bound_on_random_unions() {
        // Random unions of paths and cycles, checked against the
        // exponential exact solver.
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let mut sizes = Vec::new();
            let mut total = 0usize;
            while total < 14 {
                let len = rng.gen_range(1..=6usize);
                let cyc = len >= 3 && rng.gen::<bool>();
                sizes.push((len, cyc));
                total += len;
            }
            let mut b = bisect_graph::GraphBuilder::new(total);
            let mut base = 0u32;
            for &(len, cyc) in &sizes {
                for i in 1..len as u32 {
                    b.add_edge(base + i - 1, base + i).unwrap();
                }
                if cyc {
                    b.add_edge(base + len as u32 - 1, base).unwrap();
                }
                base += len as u32;
            }
            let g = b.build();
            let fast = bisect_degree2(&g).unwrap();
            let slow = minimum_bisection(&g).unwrap();
            assert_eq!(fast.cut(), slow.cut(), "trial {trial}, sizes {sizes:?}");
            assert!(fast.is_balanced(&g));
        }
    }

    #[test]
    fn gbreg_degree2_instances_solved_optimally() {
        let params = bisect_gen::gbreg::GbregParams::new(200, 4, 2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let g = bisect_gen::gbreg::sample(&mut rng, &params).unwrap();
        let p = bisect_degree2(&g).unwrap();
        assert!(
            p.cut() <= 2,
            "paper: optimal bisection of degree-2 Gbreg is <= 2"
        );
    }

    #[test]
    fn large_instance_is_fast() {
        let g = special::cycle_collection(100, 37); // 3700 vertices
        let p = bisect_degree2(&g).unwrap();
        assert!(p.cut() <= 2);
        assert!(p.is_balanced(&g));
    }
}
